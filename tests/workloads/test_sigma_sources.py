"""Tests that the sigma-source choice flows through the workload pipeline."""

import numpy as np
import pytest

from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator


class TestSigmaSourcePropagation:
    def test_uniform_is_the_default(self):
        assert ExperimentConfig().sigma_source == "uniform"

    def test_checkins_source_builds(self):
        config = ExperimentConfig(k=8, n_users=60, sigma_source="checkins")
        instance = WorkloadGenerator(root_seed=4).build(config)
        sigma = instance.activity.matrix
        assert sigma.shape == (60, config.intervals)
        assert 0.0 <= sigma.min() and sigma.max() <= 1.0

    def test_checkins_sigma_has_weekly_period(self):
        """Check-in sigma tiles the weekly grid across candidate intervals."""
        config = ExperimentConfig(k=20, n_users=60, sigma_source="checkins")
        generator = WorkloadGenerator(root_seed=4)
        instance = generator.build(config)
        weekly_slots = generator.snapshot_for(config).config.weekly_slots
        sigma = instance.activity.matrix
        if sigma.shape[1] > weekly_slots:
            np.testing.assert_allclose(
                sigma[:, 0], sigma[:, weekly_slots]
            )

    def test_uniform_sigma_is_not_periodic(self):
        config = ExperimentConfig(k=20, n_users=60, sigma_source="uniform")
        generator = WorkloadGenerator(root_seed=4)
        instance = generator.build(config)
        weekly_slots = generator.snapshot_for(config).config.weekly_slots
        sigma = instance.activity.matrix
        if sigma.shape[1] > weekly_slots:
            assert not np.allclose(sigma[:, 0], sigma[:, weekly_slots])

    def test_solvers_work_under_checkin_sigma(self):
        from repro.algorithms.greedy import GreedyScheduler

        config = ExperimentConfig(k=8, n_users=60, sigma_source="checkins")
        instance = WorkloadGenerator(root_seed=4).build(config)
        result = GreedyScheduler().solve(instance, 8)
        assert result.achieved_k == 8
        assert result.utility > 0
