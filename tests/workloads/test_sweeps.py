"""Tests of the Figure-1 sweep definitions."""

import pytest

from repro.workloads.config import ExperimentConfig
from repro.workloads.sweeps import (
    PAPER_INTERVAL_FACTORS,
    PAPER_K_GRID,
    sweep_intervals,
    sweep_k,
)


class TestPaperGrids:
    def test_k_grid_spans_default_to_max(self):
        assert min(PAPER_K_GRID) == 100
        assert max(PAPER_K_GRID) == 500

    def test_interval_factors_span_fifth_to_triple(self):
        assert min(PAPER_INTERVAL_FACTORS) == pytest.approx(0.2)
        assert max(PAPER_INTERVAL_FACTORS) == pytest.approx(3.0)
        assert 1.5 in PAPER_INTERVAL_FACTORS  # the default 3k/2


class TestSweepK:
    def test_produces_one_config_per_k(self):
        sweep = sweep_k((10, 20, 30))
        assert {x for x, _ in sweep} == {10, 20, 30}

    def test_largest_first_for_pool_sizing(self):
        sweep = sweep_k((10, 30, 20))
        assert [x for x, _ in sweep] == [30, 20, 10]

    def test_configs_keep_paper_derived_sizes(self):
        sweep = dict(sweep_k((10, 20)))
        assert sweep[10].events == 20
        assert sweep[20].intervals == 30

    def test_base_config_propagates(self):
        base = ExperimentConfig(n_users=55)
        sweep = sweep_k((10,), base=base)
        assert sweep[0][1].n_users == 55

    def test_duplicates_collapsed(self):
        assert len(sweep_k((10, 10, 20))) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sweep_k(())


class TestSweepIntervals:
    def test_x_values_are_interval_counts(self):
        sweep = sweep_intervals(k=100, factors=(0.2, 1.0, 3.0))
        assert {x for x, _ in sweep} == {20, 100, 300}

    def test_configs_pin_intervals_and_keep_k(self):
        sweep = dict(sweep_intervals(k=100, factors=(0.5,)))
        config = sweep[50]
        assert config.k == 100
        assert config.intervals == 50
        assert config.events == 200

    def test_default_factors_are_paper_grid(self):
        sweep = sweep_intervals(k=100)
        assert {x for x, _ in sweep} == {20, 50, 100, 150, 200, 300}

    def test_largest_first(self):
        xs = [x for x, _ in sweep_intervals(k=100)]
        assert xs == sorted(xs, reverse=True)

    def test_bad_factors_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sweep_intervals(k=100, factors=(0.0,))
        with pytest.raises(ValueError, match="non-empty"):
            sweep_intervals(k=100, factors=())
