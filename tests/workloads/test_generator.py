"""Tests of the workload generator (config -> SES instance)."""

import numpy as np
import pytest

from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(root_seed=11)


SMALL = ExperimentConfig(k=10, n_users=80)


class TestBuild:
    def test_materializes_paper_shapes(self, generator):
        instance = generator.build(SMALL)
        assert instance.n_users == 80
        assert instance.n_events == 20      # 2k
        assert instance.n_intervals == 15   # 3k/2
        assert instance.theta == 20.0

    def test_snapshot_is_reused_across_builds(self, generator):
        first = generator.snapshot_for(SMALL)
        generator.build(SMALL)
        assert generator.snapshot_for(SMALL) is first

    def test_snapshot_regenerated_when_too_small(self):
        generator = WorkloadGenerator(root_seed=3)
        small_snapshot = generator.snapshot_for(SMALL)
        big = ExperimentConfig(k=40, n_users=80)
        generator.build(big)
        assert generator.snapshot_for(big) is not small_snapshot

    def test_user_restriction_slices_population(self, generator):
        fewer = ExperimentConfig(k=10, n_users=30)
        instance = generator.build(fewer)
        assert instance.n_users == 30
        assert instance.interest.candidate.shape[0] == 30
        assert instance.activity.matrix.shape[0] == 30

    def test_root_seed_reproducibility(self):
        a = WorkloadGenerator(root_seed=21).build(SMALL)
        b = WorkloadGenerator(root_seed=21).build(SMALL)
        np.testing.assert_array_equal(
            a.interest.candidate, b.interest.candidate
        )
        assert [e.name for e in a.events] == [e.name for e in b.events]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(root_seed=1).build(SMALL)
        b = WorkloadGenerator(root_seed=2).build(SMALL)
        assert (a.interest.candidate != b.interest.candidate).any()

    def test_explicit_seed_controls_instance_cut(self, generator):
        a = generator.build(SMALL, seed=7)
        b = generator.build(SMALL, seed=7)
        assert [e.name for e in a.events] == [e.name for e in b.events]

    def test_instances_are_solvable(self, generator):
        from repro.algorithms.greedy import GreedyScheduler

        instance = generator.build(SMALL)
        result = GreedyScheduler().solve(instance, 10)
        assert result.achieved_k == 10
        assert result.utility > 0


class TestSparseBackendBuild:
    def test_backend_flows_through_and_survives_restriction(self):
        from repro.workloads.config import ExperimentConfig
        from repro.workloads.generator import WorkloadGenerator

        config = ExperimentConfig(k=5, n_users=40, interest_backend="sparse")
        instance = WorkloadGenerator(root_seed=11).build(config, seed=2)
        assert instance.interest.backend == "sparse"
        assert instance.n_users == 40

    def test_sparse_and_dense_builds_are_numerically_identical(self):
        import numpy as np

        from repro.workloads.config import ExperimentConfig
        from repro.workloads.generator import WorkloadGenerator

        dense = WorkloadGenerator(root_seed=11).build(
            ExperimentConfig(k=5, n_users=40), seed=2
        )
        sparse = WorkloadGenerator(root_seed=11).build(
            ExperimentConfig(k=5, n_users=40, interest_backend="sparse"), seed=2
        )
        np.testing.assert_array_equal(
            sparse.interest.candidate, dense.interest.candidate
        )
        np.testing.assert_array_equal(
            sparse.interest.competing, dense.interest.competing
        )
        np.testing.assert_array_equal(
            sparse.activity.matrix, dense.activity.matrix
        )
