"""Tests of the experiment configuration (paper Section IV defaults)."""

import pytest

from repro.workloads.config import (
    ExperimentConfig,
    MEETUP_USERS,
    PAPER_DEFAULT_K,
    PAPER_MAX_K,
)


class TestPaperDefaults:
    def test_headline_constants(self):
        assert PAPER_DEFAULT_K == 100
        assert PAPER_MAX_K == 500
        assert MEETUP_USERS == 42_444

    def test_default_k_is_100(self):
        assert ExperimentConfig().k == 100

    def test_default_intervals_is_three_halves_k(self):
        assert ExperimentConfig(k=100).intervals == 150
        assert ExperimentConfig(k=500).intervals == 750

    def test_default_events_is_two_k(self):
        assert ExperimentConfig(k=100).events == 200
        assert ExperimentConfig(k=250).events == 500

    def test_competing_mean_is_meetup_measured(self):
        assert ExperimentConfig().mean_competing == 8.1

    def test_locations_and_resources(self):
        config = ExperimentConfig()
        assert config.n_locations == 25
        assert config.theta == 20.0
        assert config.xi_range == (1.0, pytest.approx(20.0 / 3.0))


class TestOverrides:
    def test_explicit_intervals_win(self):
        assert ExperimentConfig(k=100, n_intervals=37).intervals == 37

    def test_explicit_events_win(self):
        assert ExperimentConfig(k=100, n_events=123).events == 123

    def test_with_k_preserves_derived_defaults(self):
        config = ExperimentConfig(k=100).with_k(200)
        assert config.intervals == 300
        assert config.events == 400

    def test_with_intervals(self):
        config = ExperimentConfig(k=100).with_intervals(20)
        assert config.intervals == 20
        assert config.k == 100

    def test_at_meetup_scale(self):
        assert ExperimentConfig().at_meetup_scale().n_users == MEETUP_USERS


class TestDerivedSizes:
    def test_expected_competing_total(self):
        config = ExperimentConfig(k=100)
        assert config.expected_competing_total == pytest.approx(150 * 8.1)

    def test_required_pool_events_covers_worst_case(self):
        config = ExperimentConfig(k=100)
        worst = config.events + config.intervals * 2 * config.mean_competing
        assert config.required_pool_events >= worst

    def test_label_mentions_sizes(self):
        label = ExperimentConfig(k=100).label()
        assert "k=100" in label
        assert "|T|=150" in label


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError, match="k must be positive"):
            ExperimentConfig(k=0)

    def test_events_below_k_rejected(self):
        with pytest.raises(ValueError, match="at least k"):
            ExperimentConfig(k=100, n_events=50)

    def test_bad_intervals(self):
        with pytest.raises(ValueError, match="n_intervals"):
            ExperimentConfig(n_intervals=0)

    def test_bad_users(self):
        with pytest.raises(ValueError, match="n_users"):
            ExperimentConfig(n_users=0)

    def test_negative_competing_mean(self):
        with pytest.raises(ValueError, match="mean_competing"):
            ExperimentConfig(mean_competing=-1.0)


class TestInterestBackend:
    def test_default_is_dense(self):
        from repro.workloads.config import ExperimentConfig

        assert ExperimentConfig().interest_backend == "dense"

    def test_with_backend_copies(self):
        from repro.workloads.config import ExperimentConfig

        config = ExperimentConfig().with_backend("sparse")
        assert config.interest_backend == "sparse"
        assert ExperimentConfig().interest_backend == "dense"

    def test_invalid_backend_rejected(self):
        import pytest

        from repro.workloads.config import ExperimentConfig

        with pytest.raises(ValueError, match="interest_backend"):
            ExperimentConfig(interest_backend="hologram")
