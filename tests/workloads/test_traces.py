"""Tests of the seeded trace generator (repro.workloads.traces)."""

import pytest

from repro.stream.trace import CancelEvent, RaiseBudget
from repro.workloads.config import ExperimentConfig
from repro.workloads.traces import TraceConfig, TraceGenerator

_CONFIG = ExperimentConfig(k=5, n_users=30, n_events=8, n_intervals=6)


class TestTraceConfig:
    def test_defaults_are_valid(self):
        TraceConfig()

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(n_ops=-1), "n_ops"),
            (dict(arrival_rate=-0.1), "arrival_rate"),
            (
                dict(
                    arrival_rate=0,
                    cancel_rate=0,
                    rival_rate=0,
                    drift_rate=0,
                    budget_rate=0,
                ),
                "at least one",
            ),
            (dict(interest_density=0.0), "interest_density"),
            (dict(interest_density=1.5), "interest_density"),
            (dict(mean_interarrival=0.0), "mean_interarrival"),
            (dict(budget_step=0), "budget_step"),
            (dict(min_live_events=0), "min_live_events"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TraceConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = TraceGenerator(_CONFIG, root_seed=11).generate()
        second = TraceGenerator(_CONFIG, root_seed=11).generate()
        assert first == second

    def test_different_seed_different_trace(self):
        first = TraceGenerator(_CONFIG, root_seed=11).generate()
        second = TraceGenerator(_CONFIG, root_seed=12).generate()
        assert first != second

    def test_serialization_roundtrip_preserves_identity(self):
        from repro.stream.trace import Trace

        trace = TraceGenerator(_CONFIG, root_seed=11).generate()
        assert Trace.from_jsonl(trace.to_jsonl()) == trace


class TestStreamShape:
    def test_requested_length_and_metadata(self):
        trace = TraceGenerator(
            _CONFIG, TraceConfig(n_ops=23), root_seed=4
        ).generate()
        assert len(trace) == 23
        assert trace.n_users == _CONFIG.n_users
        assert trace.initial_k == _CONFIG.k
        assert trace.seed == 4

    def test_generate_length_override(self):
        generator = TraceGenerator(_CONFIG, TraceConfig(n_ops=5), root_seed=4)
        assert len(generator.generate(n_ops=9)) == 9

    def test_times_are_non_decreasing(self):
        trace = TraceGenerator(
            _CONFIG, TraceConfig(n_ops=40), root_seed=1
        ).generate()
        times = [op.time for op in trace]
        assert times == sorted(times)

    def test_cancel_indices_stay_in_live_range(self):
        """Every cancel targets an index valid at its replay position."""
        trace = TraceGenerator(
            _CONFIG,
            TraceConfig(n_ops=60, cancel_rate=3.0, arrival_rate=0.5),
            root_seed=2,
        ).generate()
        n_live = _CONFIG.events
        for op in trace:
            if isinstance(op, CancelEvent):
                assert 0 <= op.event < n_live
                n_live -= 1
            elif op.kind == "arrive":
                n_live += 1
        assert n_live >= 1

    def test_pool_never_drains_below_floor(self):
        config = ExperimentConfig(k=2, n_users=10, n_events=3, n_intervals=3)
        trace = TraceGenerator(
            config,
            TraceConfig(n_ops=30, cancel_rate=10.0, arrival_rate=0.1,
                        rival_rate=0.0, drift_rate=0.0, budget_rate=0.0,
                        min_live_events=2),
            root_seed=3,
        ).generate()
        n_live = config.events
        for op in trace:
            if op.kind == "cancel":
                n_live -= 1
            elif op.kind == "arrive":
                n_live += 1
            assert n_live >= 2

    def test_budget_raises_are_monotone(self):
        trace = TraceGenerator(
            _CONFIG,
            TraceConfig(n_ops=40, budget_rate=3.0),
            root_seed=6,
        ).generate()
        current = _CONFIG.k
        raises = [op for op in trace if isinstance(op, RaiseBudget)]
        assert raises, "expected budget ops at this rate"
        for op in raises:
            assert op.new_k > current
            current = op.new_k

    def test_interest_payloads_are_sparse_and_valid(self):
        config = ExperimentConfig(k=5, n_users=200, n_events=8, n_intervals=6)
        trace = TraceGenerator(
            config, TraceConfig(n_ops=30, interest_density=0.05), root_seed=7
        ).generate()
        payload_ops = [op for op in trace if hasattr(op, "interest")]
        assert payload_ops
        for op in payload_ops:
            users = [user for user, _ in op.interest]
            assert users == sorted(users)
            assert all(0 <= user < config.n_users for user in users)
            assert all(0.0 < value <= 1.0 for _, value in op.interest)
            # sparse regime: far fewer entries than users
            assert len(op.interest) <= config.n_users // 4
