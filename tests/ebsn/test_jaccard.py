"""Tests of the Jaccard interest construction (paper Section IV.A)."""

import numpy as np
import pytest

from repro.ebsn.jaccard import jaccard, jaccard_matrix


class TestScalarJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        # |{a}| / |{a, b, c}|
        assert jaccard({"a", "b"}, {"a", "c"}) == pytest.approx(1 / 3)

    def test_both_empty_is_zero(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty_is_zero(self):
        assert jaccard({"a"}, set()) == 0.0

    def test_symmetry(self):
        left, right = {"a", "b", "c"}, {"b", "c", "d", "e"}
        assert jaccard(left, right) == jaccard(right, left)

    def test_subset(self):
        assert jaccard({"a"}, {"a", "b", "c", "d"}) == pytest.approx(0.25)


class TestJaccardMatrix:
    def test_matches_scalar_on_all_pairs(self):
        rng = np.random.default_rng(3)
        alphabet = [f"tag{i}" for i in range(20)]
        users = [
            frozenset(rng.choice(alphabet, size=rng.integers(1, 8), replace=False))
            for _ in range(12)
        ]
        events = [
            frozenset(rng.choice(alphabet, size=rng.integers(1, 8), replace=False))
            for _ in range(9)
        ]
        matrix = jaccard_matrix(users, events)
        for u, user_tags in enumerate(users):
            for e, event_tags in enumerate(events):
                assert matrix[u, e] == pytest.approx(
                    jaccard(user_tags, event_tags), abs=1e-12
                )

    def test_shape(self):
        matrix = jaccard_matrix([{"a"}] * 3, [{"a"}] * 5)
        assert matrix.shape == (3, 5)

    def test_empty_sides(self):
        assert jaccard_matrix([], [{"a"}]).shape == (0, 1)
        assert jaccard_matrix([{"a"}], []).shape == (1, 0)

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(4)
        alphabet = [f"t{i}" for i in range(15)]
        users = [
            frozenset(rng.choice(alphabet, size=5, replace=False))
            for _ in range(20)
        ]
        matrix = jaccard_matrix(users, users)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0

    def test_self_similarity_is_one(self):
        tagsets = [frozenset({"x", "y"}), frozenset({"z"})]
        matrix = jaccard_matrix(tagsets, tagsets)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_empty_tagsets_row_is_zero(self):
        matrix = jaccard_matrix([frozenset()], [{"a"}, {"b"}])
        np.testing.assert_array_equal(matrix, np.zeros((1, 2)))

    def test_accepts_any_iterable(self):
        matrix = jaccard_matrix([["a", "b"]], [("a",)])
        assert matrix[0, 0] == pytest.approx(0.5)


class TestSparseJaccard:
    def _tagsets(self, seed=0, n=25, k=4):
        rng = np.random.default_rng(seed)
        alphabet = np.array([f"tag{i}" for i in range(30)])
        return [
            frozenset(rng.choice(alphabet, size=k, replace=False))
            for _ in range(n)
        ]

    def test_matches_dense_builder_exactly(self):
        from repro.ebsn.jaccard import jaccard_matrix_sparse

        users = self._tagsets(seed=1)
        events = self._tagsets(seed=2, n=15)
        dense = jaccard_matrix(users, events)
        sparse = jaccard_matrix_sparse(users, events)
        np.testing.assert_array_equal(sparse.toarray(), dense)

    def test_support_is_exactly_the_intersections(self):
        from repro.ebsn.jaccard import jaccard_matrix_sparse

        users = [frozenset({"a", "b"}), frozenset({"c"})]
        events = [frozenset({"a"}), frozenset({"d"})]
        sparse = jaccard_matrix_sparse(users, events)
        assert sparse.nnz == 1
        assert sparse[0, 0] == pytest.approx(0.5)

    def test_empty_inputs(self):
        from repro.ebsn.jaccard import jaccard_matrix_sparse

        assert jaccard_matrix_sparse([], []).shape == (0, 0)
        empty_tags = jaccard_matrix_sparse([frozenset()], [frozenset()])
        assert empty_tags.shape == (1, 1)
        assert empty_tags.nnz == 0
