"""Tests of the dataset statistics (overlap, conflicts, histograms)."""

import pytest

from repro.ebsn.network import EBSNetwork, EBSNEvent, EBSNGroup, EBSNUser
from repro.ebsn.stats import (
    conflicting_pair_fraction,
    events_per_group_histogram,
    mean_overlapping_events,
    membership_histogram,
    summarize,
)


def _network_with_events(events) -> EBSNetwork:
    groups = [EBSNGroup(group_id=0, tags=frozenset())]
    users = [EBSNUser(user_id=0, tags=frozenset(), groups=(0,))]
    return EBSNetwork(groups=groups, users=users, events=list(events), rsvps=[])


def _event(event_id, start, duration=1, venue=0):
    return EBSNEvent(
        event_id=event_id, group_id=0, tags=frozenset(),
        start_slot=start, duration_slots=duration, venue=venue,
    )


class TestMeanOverlap:
    def test_empty_network(self):
        assert mean_overlapping_events(_network_with_events([])) == 0.0

    def test_isolated_events_overlap_only_themselves(self):
        network = _network_with_events([_event(0, 0), _event(1, 5), _event(2, 10)])
        assert mean_overlapping_events(network) == pytest.approx(1.0)

    def test_fully_concurrent_events(self):
        network = _network_with_events([_event(i, 0) for i in range(4)])
        assert mean_overlapping_events(network) == pytest.approx(4.0)

    def test_mixed_case_hand_computed(self):
        # e0: [0,2) overlaps e1 [1,3): each counts the other + itself
        # e2: [5,6) alone
        network = _network_with_events(
            [_event(0, 0, duration=2), _event(1, 1, duration=2), _event(2, 5)]
        )
        assert mean_overlapping_events(network) == pytest.approx((2 + 2 + 1) / 3)

    def test_matches_quadratic_reference(self):
        """Sweep implementation equals the brute-force O(n^2) count."""
        import numpy as np

        rng = np.random.default_rng(8)
        events = [
            _event(i, int(rng.integers(0, 30)), duration=int(rng.integers(1, 4)))
            for i in range(40)
        ]
        network = _network_with_events(events)
        brute = sum(
            sum(1 for other in events if event.overlaps(other))
            for event in events
        ) / len(events)
        assert mean_overlapping_events(network) == pytest.approx(brute)


class TestConflictFraction:
    def test_no_conflicts_across_venues(self):
        network = _network_with_events(
            [_event(0, 0, venue=0), _event(1, 0, venue=1)]
        )
        assert conflicting_pair_fraction(network) == 0.0

    def test_same_venue_same_time_conflicts(self):
        network = _network_with_events(
            [_event(0, 0, venue=0), _event(1, 0, venue=0)]
        )
        assert conflicting_pair_fraction(network) == pytest.approx(1.0)

    def test_fraction_of_total_pairs(self):
        # 3 events -> 3 pairs; exactly one conflicting pair
        network = _network_with_events(
            [_event(0, 0, venue=0), _event(1, 0, venue=0), _event(2, 9, venue=0)]
        )
        assert conflicting_pair_fraction(network) == pytest.approx(1 / 3)

    def test_fewer_than_two_events(self):
        assert conflicting_pair_fraction(_network_with_events([_event(0, 0)])) == 0.0


class TestHistograms:
    def test_membership_histogram(self):
        groups = [EBSNGroup(group_id=g, tags=frozenset()) for g in range(3)]
        users = [
            EBSNUser(user_id=0, tags=frozenset(), groups=(0,)),
            EBSNUser(user_id=1, tags=frozenset(), groups=(0, 1)),
            EBSNUser(user_id=2, tags=frozenset(), groups=(0, 1)),
        ]
        network = EBSNetwork(groups=groups, users=users, events=[], rsvps=[])
        assert membership_histogram(network) == {1: 1, 2: 2}

    def test_events_per_group_histogram_counts_idle_groups(self):
        groups = [EBSNGroup(group_id=g, tags=frozenset()) for g in range(3)]
        events = [_event(0, 0), _event(1, 1)]
        network = EBSNetwork(groups=groups, users=[], events=events, rsvps=[])
        histogram = events_per_group_histogram(network)
        assert histogram == {2: 1, 0: 2}  # group 0 has both; groups 1, 2 idle


class TestSummarize:
    def test_contains_headline_keys(self):
        network = _network_with_events([_event(0, 0), _event(1, 0)])
        summary = summarize(network)
        for key in (
            "n_users", "n_groups", "n_events", "n_rsvps",
            "mean_overlap", "conflict_fraction", "mean_memberships",
        ):
            assert key in summary

    def test_values_match_components(self):
        network = _network_with_events([_event(0, 0), _event(1, 0)])
        summary = summarize(network)
        assert summary["mean_overlap"] == mean_overlapping_events(network)
        assert summary["n_events"] == 2.0
