"""Tests of the EBSN object model and its networkx export."""

import pytest

from repro.ebsn.network import EBSNetwork, EBSNEvent, EBSNGroup, EBSNUser


def _tiny_network() -> EBSNetwork:
    groups = [
        EBSNGroup(group_id=0, tags=frozenset({"music/1"})),
        EBSNGroup(group_id=1, tags=frozenset({"tech/2"})),
    ]
    users = [
        EBSNUser(user_id=0, tags=frozenset({"music/1"}), groups=(0,)),
        EBSNUser(user_id=1, tags=frozenset({"tech/2"}), groups=(0, 1)),
    ]
    events = [
        EBSNEvent(event_id=0, group_id=0, tags=groups[0].tags, start_slot=0),
        EBSNEvent(
            event_id=1, group_id=1, tags=groups[1].tags, start_slot=1,
            duration_slots=2,
        ),
    ]
    return EBSNetwork(
        groups=groups, users=users, events=events, rsvps=[(0, 0), (1, 1)]
    )


class TestEntities:
    def test_event_end_slot(self):
        event = EBSNEvent(event_id=0, group_id=0, tags=frozenset(), start_slot=3,
                          duration_slots=2)
        assert event.end_slot == 5

    def test_event_overlap(self):
        a = EBSNEvent(event_id=0, group_id=0, tags=frozenset(), start_slot=0,
                      duration_slots=2)
        b = EBSNEvent(event_id=1, group_id=0, tags=frozenset(), start_slot=1)
        c = EBSNEvent(event_id=2, group_id=0, tags=frozenset(), start_slot=2)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            EBSNEvent(event_id=0, group_id=0, tags=frozenset(), start_slot=0,
                      duration_slots=0)

    def test_display_names(self):
        assert EBSNGroup(group_id=1, tags=frozenset()).display_name == "group#1"
        assert EBSNUser(user_id=2, tags=frozenset()).display_name == "user#2"
        assert (
            EBSNEvent(event_id=3, group_id=0, tags=frozenset(), start_slot=0)
            .display_name
            == "event#3"
        )


class TestNetwork:
    def test_size_accessors(self):
        network = _tiny_network()
        assert network.n_users == 2
        assert network.n_groups == 2
        assert network.n_events == 2

    def test_events_of_group(self):
        network = _tiny_network()
        assert [e.event_id for e in network.events_of_group(0)] == [0]

    def test_members_of_group(self):
        network = _tiny_network()
        assert [u.user_id for u in network.members_of_group(0)] == [0, 1]
        assert [u.user_id for u in network.members_of_group(1)] == [1]

    def test_validate_accepts_consistent_network(self):
        _tiny_network().validate()

    def test_validate_rejects_dangling_membership(self):
        network = _tiny_network()
        network.users.append(
            EBSNUser(user_id=9, tags=frozenset(), groups=(42,))
        )
        with pytest.raises(ValueError, match="unknown group 42"):
            network.validate()

    def test_validate_rejects_dangling_event_group(self):
        network = _tiny_network()
        network.events.append(
            EBSNEvent(event_id=9, group_id=42, tags=frozenset(), start_slot=0)
        )
        with pytest.raises(ValueError, match="unknown group"):
            network.validate()

    def test_validate_rejects_dangling_rsvp(self):
        network = _tiny_network()
        network.rsvps.append((99, 0))
        with pytest.raises(ValueError, match="unknown user 99"):
            network.validate()


class TestNetworkxExport:
    def test_node_and_edge_counts(self):
        network = _tiny_network()
        graph = network.to_networkx()
        # 2 users + 2 groups + 2 events
        assert graph.number_of_nodes() == 6
        # memberships (3) + organizes (2) + rsvps (2)
        assert graph.number_of_edges() == 7

    def test_edge_kinds(self):
        graph = _tiny_network().to_networkx()
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert kinds == {"member", "organizes", "rsvp"}

    def test_node_attributes_carry_tags(self):
        graph = _tiny_network().to_networkx()
        assert graph.nodes[("user", 0)]["tags"] == frozenset({"music/1"})
        assert graph.nodes[("event", 1)]["start_slot"] == 1
