"""Tests of the clustered tag vocabulary."""

import numpy as np
import pytest

from repro.ebsn.tags import DEFAULT_TOPICS, TagVocabulary


class TestConstruction:
    def test_tag_count(self):
        vocabulary = TagVocabulary(n_tags=50)
        assert vocabulary.n_tags == 50
        assert len(vocabulary.all_tags) == 50

    def test_tags_partitioned_over_topics(self):
        vocabulary = TagVocabulary(n_tags=40)
        collected = set()
        for topic in vocabulary.topics:
            topic_tags = vocabulary.tags_of_topic(topic)
            assert topic_tags  # round-robin guarantees non-empty
            collected.update(topic_tags)
        assert collected == set(vocabulary.all_tags)

    def test_too_few_tags_rejected(self):
        with pytest.raises(ValueError, match="at least one tag per topic"):
            TagVocabulary(n_tags=3)

    def test_empty_topics_rejected(self):
        with pytest.raises(ValueError, match="at least one topic"):
            TagVocabulary(n_tags=10, topics=())

    def test_topic_of_tag_round_trip(self):
        vocabulary = TagVocabulary(n_tags=30)
        for tag in vocabulary.all_tags:
            topic = vocabulary.topic_of_tag(tag)
            assert tag in vocabulary.tags_of_topic(topic)

    def test_unknown_topic_raises(self):
        vocabulary = TagVocabulary(n_tags=30)
        with pytest.raises(KeyError, match="unknown topic"):
            vocabulary.tags_of_topic("underwater-basket-weaving")

    def test_unknown_tag_raises(self):
        vocabulary = TagVocabulary(n_tags=30)
        with pytest.raises(KeyError, match="does not belong"):
            vocabulary.topic_of_tag("nosuchtopic/999")


class TestSampling:
    def test_sample_size_respected(self):
        vocabulary = TagVocabulary(n_tags=100)
        rng = np.random.default_rng(0)
        tags = vocabulary.sample_tagset(rng, size=8)
        assert len(tags) == 8

    def test_focus_concentrates_on_primary_topic(self):
        vocabulary = TagVocabulary(n_tags=200)
        rng = np.random.default_rng(1)
        tags = vocabulary.sample_tagset(
            rng, size=10, primary_topic="music", focus=1.0
        )
        assert all(vocabulary.topic_of_tag(tag) == "music" for tag in tags)

    def test_zero_focus_spreads_over_topics(self):
        vocabulary = TagVocabulary(n_tags=200)
        rng = np.random.default_rng(2)
        tags = vocabulary.sample_tagset(
            rng, size=30, primary_topic="music", focus=0.0
        )
        topics = {vocabulary.topic_of_tag(tag) for tag in tags}
        assert len(topics) > 1

    def test_reproducible_given_seed(self):
        vocabulary = TagVocabulary(n_tags=80)
        a = vocabulary.sample_tagset(np.random.default_rng(5), size=6)
        b = vocabulary.sample_tagset(np.random.default_rng(5), size=6)
        assert a == b

    def test_zero_size(self):
        vocabulary = TagVocabulary(n_tags=20)
        assert vocabulary.sample_tagset(np.random.default_rng(0), size=0) == frozenset()

    def test_invalid_parameters(self):
        vocabulary = TagVocabulary(n_tags=20)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="size"):
            vocabulary.sample_tagset(rng, size=-1)
        with pytest.raises(ValueError, match="focus"):
            vocabulary.sample_tagset(rng, size=1, focus=2.0)

    def test_default_topics_are_strings(self):
        assert all(isinstance(topic, str) for topic in DEFAULT_TOPICS)
