"""Tests of the synthetic Meetup-style generator and its calibration."""

import numpy as np
import pytest

from repro.ebsn.generator import (
    EBSNConfig,
    MEETUP_CA_EVENTS,
    MEETUP_CA_USERS,
    MeetupStyleGenerator,
    horizon_for_target_overlap,
)
from repro.ebsn.stats import mean_overlapping_events


class TestHorizonCalibration:
    def test_formula_monotone_in_events(self):
        low = horizon_for_target_overlap(100, 1.5, 8.1)
        high = horizon_for_target_overlap(1000, 1.5, 8.1)
        assert high > low

    def test_single_event_needs_one_slot(self):
        assert horizon_for_target_overlap(1, 1.0, 8.1) == 1

    def test_target_below_one_rejected(self):
        with pytest.raises(ValueError, match="exceed 1"):
            horizon_for_target_overlap(10, 1.0, 0.9)

    def test_round_trip_accuracy(self):
        """Generated overlap lands near the target it was calibrated to."""
        config = EBSNConfig(n_users=300, n_groups=30, n_events=500)
        snapshot = MeetupStyleGenerator(config).generate(seed=0)
        measured = mean_overlapping_events(snapshot.network)
        assert measured == pytest.approx(config.target_overlap, rel=0.2)


class TestConfig:
    def test_defaults_valid(self):
        config = EBSNConfig()
        assert config.horizon_slots > 0
        assert config.mean_duration == pytest.approx(1.5)

    def test_meetup_california_full_scale(self):
        config = EBSNConfig.meetup_california()
        assert config.n_users == MEETUP_CA_USERS
        assert config.n_events == MEETUP_CA_EVENTS

    def test_meetup_california_scaled(self):
        config = EBSNConfig.meetup_california(scale=0.1)
        assert config.n_users == pytest.approx(MEETUP_CA_USERS * 0.1, rel=0.01)
        assert config.n_events == pytest.approx(MEETUP_CA_EVENTS * 0.1, rel=0.01)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            EBSNConfig.meetup_california(scale=0.0)

    def test_scaled_copy(self):
        config = EBSNConfig(n_users=100, n_groups=10, n_events=50)
        half = config.scaled(0.5)
        assert half.n_users == 50
        assert half.n_events == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            EBSNConfig(n_users=0)
        with pytest.raises(ValueError):
            EBSNConfig(group_tag_count=(5, 2))
        with pytest.raises(ValueError):
            EBSNConfig(rsvp_probability=1.5)
        with pytest.raises(ValueError):
            EBSNConfig(max_duration_slots=0)


class TestGeneratedNetwork:
    @pytest.fixture(scope="class")
    def snapshot(self):
        config = EBSNConfig(n_users=400, n_groups=25, n_events=200)
        return MeetupStyleGenerator(config).generate(seed=42)

    def test_sizes_match_config(self, snapshot):
        assert snapshot.network.n_users == 400
        assert snapshot.network.n_groups == 25
        assert snapshot.network.n_events == 200

    def test_network_is_referentially_consistent(self, snapshot):
        snapshot.network.validate()  # raises on dangling references

    def test_events_carry_group_tags(self, snapshot):
        """Paper: events are tagged with the organizing group's tags."""
        groups = {g.group_id: g for g in snapshot.network.groups}
        for event in snapshot.network.events:
            assert event.tags == groups[event.group_id].tags

    def test_every_user_has_at_least_one_group(self, snapshot):
        assert all(user.groups for user in snapshot.network.users)

    def test_memberships_within_cap(self, snapshot):
        cap = snapshot.config.max_memberships
        assert all(len(user.groups) <= cap for user in snapshot.network.users)

    def test_venues_within_range(self, snapshot):
        assert all(
            0 <= event.venue < snapshot.config.n_venues
            for event in snapshot.network.events
        )

    def test_checkins_cover_population(self, snapshot):
        assert snapshot.checkins.n_users == 400
        assert snapshot.checkins.n_slots == snapshot.config.weekly_slots
        assert snapshot.checkins.total_checkins() > 0

    def test_reproducible_given_seed(self):
        config = EBSNConfig(n_users=50, n_groups=8, n_events=40)
        a = MeetupStyleGenerator(config).generate(seed=9)
        b = MeetupStyleGenerator(config).generate(seed=9)
        assert [u.tags for u in a.network.users] == [
            u.tags for u in b.network.users
        ]
        assert [e.start_slot for e in a.network.events] == [
            e.start_slot for e in b.network.events
        ]
        np.testing.assert_array_equal(a.checkins.counts, b.checkins.counts)

    def test_group_popularity_is_skewed(self, snapshot):
        """Zipf weighting should concentrate events on few groups."""
        from collections import Counter

        per_group = Counter(e.group_id for e in snapshot.network.events)
        counts = sorted(per_group.values(), reverse=True)
        top_share = sum(counts[:5]) / sum(counts)
        assert top_share > 0.3  # top 5 of 25 groups organize >30% of events
