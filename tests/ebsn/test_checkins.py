"""Tests of check-in histories and the sigma estimator."""

import numpy as np
import pytest

from repro.ebsn.checkins import CheckinHistory, simulate_checkins


class TestCheckinHistory:
    def test_record_and_counts(self):
        history = CheckinHistory(n_users=2, n_slots=3, n_weeks=4)
        history.record(0, 1)
        history.record(0, 1, count=2)
        assert history.counts[0, 1] == 3
        assert history.total_checkins() == 3

    def test_counts_read_only(self):
        history = CheckinHistory(n_users=1, n_slots=1, n_weeks=1)
        with pytest.raises(ValueError):
            history.counts[0, 0] = 5

    def test_negative_count_rejected(self):
        history = CheckinHistory(n_users=1, n_slots=1, n_weeks=1)
        with pytest.raises(ValueError, match="non-negative"):
            history.record(0, 0, count=-1)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CheckinHistory(n_users=0, n_slots=3, n_weeks=1)
        with pytest.raises(ValueError):
            CheckinHistory(n_users=1, n_slots=1, n_weeks=0)

    def test_estimate_activity_shape(self):
        history = CheckinHistory(n_users=3, n_slots=5, n_weeks=10)
        model = history.estimate_activity()
        assert model.n_users == 3
        assert model.n_intervals == 5

    def test_estimate_reflects_frequency(self):
        history = CheckinHistory(n_users=1, n_slots=2, n_weeks=10)
        history.record(0, 0, count=9)
        model = history.estimate_activity(smoothing=0.0)
        assert model.sigma(0, 0) == pytest.approx(0.9)
        assert model.sigma(0, 1) == pytest.approx(0.0)


class TestSimulation:
    def test_shapes_and_reproducibility(self):
        propensity = np.full((4, 3), 0.5)
        a = simulate_checkins(propensity, n_weeks=8, seed=3)
        b = simulate_checkins(propensity, n_weeks=8, seed=3)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.n_users == 4
        assert a.n_slots == 3
        assert a.n_weeks == 8

    def test_counts_bounded_by_weeks(self):
        history = simulate_checkins(np.ones((2, 2)), n_weeks=5, seed=0)
        assert (history.counts == 5).all()

    def test_zero_propensity_means_no_checkins(self):
        history = simulate_checkins(np.zeros((3, 3)), n_weeks=10, seed=0)
        assert history.total_checkins() == 0

    def test_estimator_recovers_propensity(self):
        """Consistency: with many weeks the estimate approaches the truth."""
        rng = np.random.default_rng(11)
        propensity = rng.uniform(0.1, 0.9, size=(30, 6))
        history = simulate_checkins(propensity, n_weeks=400, seed=1)
        estimate = history.estimate_activity(smoothing=1.0).matrix
        assert np.abs(estimate - propensity).mean() < 0.05

    def test_invalid_propensity_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            simulate_checkins(np.array([[1.5]]), n_weeks=2)
        with pytest.raises(ValueError, match="2-D"):
            simulate_checkins(np.zeros(3), n_weeks=2)
