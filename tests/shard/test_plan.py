"""ShardPlan: the deterministic user -> block -> shard layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.plan import DEFAULT_BLOCK_USERS, ShardPlan


class TestBlocks:
    def test_blocks_tile_the_user_axis(self):
        plan = ShardPlan(n_users=1000, block_users=128)
        assert plan.n_blocks == 8
        cursor = 0
        for block in range(plan.n_blocks):
            lo, hi = plan.block_bounds(block)
            assert lo == cursor and hi > lo
            cursor = hi
        assert cursor == 1000

    def test_last_block_is_the_remainder(self):
        plan = ShardPlan(n_users=1000, block_users=128)
        assert plan.block_bounds(plan.n_blocks - 1) == (896, 1000)

    def test_block_of_user_matches_bounds(self):
        plan = ShardPlan(n_users=300, block_users=64)
        for user in (0, 63, 64, 299):
            block = plan.block_of_user(user)
            lo, hi = plan.block_bounds(block)
            assert lo <= user < hi

    def test_default_block_size(self):
        assert ShardPlan(n_users=10).block_users == DEFAULT_BLOCK_USERS

    def test_out_of_range_indices_raise(self):
        plan = ShardPlan(n_users=100, block_users=32)
        with pytest.raises(IndexError):
            plan.block_bounds(plan.n_blocks)
        with pytest.raises(IndexError):
            plan.block_of_user(100)
        with pytest.raises(IndexError):
            plan.shard_blocks(plan.n_shards)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_users=0),
            dict(n_users=10, n_shards=0),
            dict(n_users=10, block_users=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShardPlan(**kwargs)


class TestShards:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 20])
    def test_shards_partition_the_blocks(self, n_shards):
        plan = ShardPlan(n_users=1000, n_shards=n_shards, block_users=100)
        covered = [
            block
            for shard in range(n_shards)
            for block in plan.shard_blocks(shard)
        ]
        assert covered == list(range(plan.n_blocks))

    def test_shards_are_contiguous_and_balanced(self):
        plan = ShardPlan(n_users=1000, n_shards=3, block_users=100)
        sizes = [len(plan.shard_blocks(s)) for s in range(3)]
        assert sum(sizes) == plan.n_blocks == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_blocks_leaves_empty_shards(self):
        plan = ShardPlan(n_users=50, n_shards=5, block_users=32)
        assert plan.n_blocks == 2
        sizes = [len(plan.shard_blocks(s)) for s in range(5)]
        assert sorted(sizes, reverse=True) == [1, 1, 0, 0, 0]

    def test_shard_of_user_consistent_with_shard_blocks(self):
        plan = ShardPlan(n_users=500, n_shards=4, block_users=64)
        for user in (0, 63, 64, 255, 499):
            shard = plan.shard_of_user(user)
            assert plan.block_of_user(user) in plan.shard_blocks(shard)

    def test_shard_count_never_changes_block_layout(self):
        narrow = ShardPlan(n_users=777, n_shards=1, block_users=50)
        wide = ShardPlan(n_users=777, n_shards=13, block_users=50)
        assert narrow.n_blocks == wide.n_blocks
        for block in range(narrow.n_blocks):
            assert narrow.block_bounds(block) == wide.block_bounds(block)


class TestBlockStreams:
    def test_one_stream_per_block_deterministic(self):
        plan = ShardPlan(n_users=300, block_users=64, seed=9)
        first = [s.uniform(size=3) for s in plan.block_streams()]
        second = [s.uniform(size=3) for s in plan.block_streams()]
        assert len(first) == plan.n_blocks
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_streams_independent_of_shard_count(self):
        draw = lambda plan: [s.uniform(size=4) for s in plan.block_streams()]
        p1 = draw(ShardPlan(n_users=300, n_shards=1, block_users=64, seed=5))
        p7 = draw(ShardPlan(n_users=300, n_shards=7, block_users=64, seed=5))
        for a, b in zip(p1, p7):
            np.testing.assert_array_equal(a, b)

    def test_seed_changes_streams(self):
        a = ShardPlan(n_users=100, block_users=64, seed=1).block_streams()
        b = ShardPlan(n_users=100, block_users=64, seed=2).block_streams()
        assert not np.array_equal(a[0].uniform(size=4), b[0].uniform(size=4))


class TestBlockSlices:
    def test_rows_partition_into_block_windows(self):
        plan = ShardPlan(n_users=200, block_users=50)
        rows = np.array([0, 3, 49, 50, 120, 121, 199])
        slices = plan.block_slices(rows)
        assert slices == [(0, 0, 3), (1, 3, 4), (2, 4, 6), (3, 6, 7)]
        for block, start, stop in slices:
            lo, hi = plan.block_bounds(block)
            assert np.all((rows[start:stop] >= lo) & (rows[start:stop] < hi))

    def test_empty_rows(self):
        assert ShardPlan(n_users=10, block_users=4).block_slices(
            np.zeros(0, dtype=np.intp)
        ) == []

    def test_blocks_without_rows_are_omitted(self):
        plan = ShardPlan(n_users=200, block_users=50)
        assert plan.block_slices(np.array([175])) == [(3, 0, 1)]
