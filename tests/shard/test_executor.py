"""ShardExecutor: serial / thread / fork-process dispatch equivalence."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.shard.executor import (
    EXECUTOR_KINDS,
    ShardExecutor,
    fork_available,
)


def make_thunks(n=6, size=32):
    rngs = [np.random.default_rng(1000 + i) for i in range(n)]
    return [lambda rng=rng: rng.standard_normal(size) for rng in rngs]


class TestConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            ShardExecutor(workers=2, kind="gpu")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            ShardExecutor(workers=0)

    def test_single_worker_collapses_to_serial(self):
        for kind in EXECUTOR_KINDS:
            assert ShardExecutor(workers=1, kind=kind).kind == "serial"
        assert ShardExecutor().kind == "serial"

    def test_kind_and_workers_exposed(self):
        executor = ShardExecutor(workers=3, kind="thread")
        assert executor.kind == "thread"
        assert executor.workers == 3
        assert "thread" in repr(executor)


class TestMapEquivalence:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_parallel_matches_serial_in_order(self, kind):
        if kind == "process" and not fork_available():
            pytest.skip("fork start method unavailable")
        serial = ShardExecutor(workers=1).map(make_thunks())
        parallel = ShardExecutor(workers=3, kind=kind).map(make_thunks())
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a, b)

    def test_single_thunk_runs_inline(self):
        executor = ShardExecutor(workers=4, kind="thread")
        main = threading.get_ident()
        assert executor.map([lambda: threading.get_ident()]) == [main]

    def test_thread_map_actually_uses_the_pool(self):
        executor = ShardExecutor(workers=2, kind="thread")
        main = threading.get_ident()
        idents = executor.map([threading.get_ident for _ in range(4)])
        assert all(ident != main for ident in idents)

    def test_empty_thunks(self):
        assert ShardExecutor(workers=3, kind="thread").map([]) == []

    def test_fork_children_see_parent_state(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        payload = np.arange(17.0)  # inherited by fork, not pickled in
        executor = ShardExecutor(workers=2, kind="process")
        results = executor.map([lambda: payload * 2, lambda: payload + 1])
        np.testing.assert_array_equal(results[0], payload * 2)
        np.testing.assert_array_equal(results[1], payload + 1)

    def test_thread_pools_are_shared_per_worker_count(self):
        from repro.shard.executor import _shared_thread_pool

        assert _shared_thread_pool(2) is _shared_thread_pool(2)
        assert _shared_thread_pool(2) is not _shared_thread_pool(3)
