"""synthesize_sharded_instance: block-wise synthesis without densifying."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineSpec
from repro.workloads.generator import synthesize_sharded_instance

pytest.importorskip("scipy")

SHAPE = dict(n_events=9, n_intervals=4, density=0.05)


class TestDeterminism:
    def test_independent_of_shard_count(self):
        a = synthesize_sharded_instance(
            3000, shards=1, block_users=256, seed=3, **SHAPE
        )
        b = synthesize_sharded_instance(
            3000, shards=7, block_users=256, seed=3, **SHAPE
        )
        assert np.array_equal(a.interest.candidate, b.interest.candidate)
        assert np.array_equal(a.interest.competing, b.interest.competing)
        assert np.array_equal(a.activity.matrix, b.activity.matrix)
        assert a.events == b.events
        assert a.competing == b.competing

    def test_seed_changes_everything(self):
        a = synthesize_sharded_instance(500, block_users=128, seed=1, **SHAPE)
        b = synthesize_sharded_instance(500, block_users=128, seed=2, **SHAPE)
        assert not np.array_equal(a.interest.candidate, b.interest.candidate)
        assert not np.array_equal(a.activity.matrix, b.activity.matrix)

    def test_same_seed_reproduces(self):
        a = synthesize_sharded_instance(500, block_users=128, seed=4, **SHAPE)
        b = synthesize_sharded_instance(500, block_users=128, seed=4, **SHAPE)
        assert np.array_equal(a.interest.candidate, b.interest.candidate)


class TestShape:
    def test_instance_is_valid_and_sharded(self):
        inst = synthesize_sharded_instance(
            700, shards=3, block_users=128, seed=0, **SHAPE
        )
        assert inst.n_users == 700
        assert inst.n_events == SHAPE["n_events"]
        assert inst.n_intervals == SHAPE["n_intervals"]
        assert inst.interest.backend == "sharded"
        assert inst.interest.plan.n_blocks == 6

    def test_density_controls_nnz(self):
        inst = synthesize_sharded_instance(
            2000, block_users=512, seed=0, n_events=10, n_intervals=3,
            density=0.02,
        )
        expected = 2000 * 10 * 0.02
        assert 0.5 * expected < inst.interest.nnz_candidate() < 2 * expected

    def test_density_validation(self):
        with pytest.raises(ValueError, match="density"):
            synthesize_sharded_instance(100, density=0.0)
        with pytest.raises(ValueError, match="density"):
            synthesize_sharded_instance(100, density=1.5)

    def test_competing_round_robin_over_intervals(self):
        inst = synthesize_sharded_instance(
            300, block_users=128, seed=0, n_events=4, n_intervals=3,
            competing_per_interval=2, density=0.05,
        )
        assert len(inst.competing) == 6
        intervals = [rival.interval for rival in inst.competing]
        assert sorted(intervals) == [0, 0, 1, 1, 2, 2]

    def test_xi_capped_by_theta(self):
        inst = synthesize_sharded_instance(
            200, block_users=128, seed=0, n_events=6, n_intervals=3,
            density=0.05, theta=2.0, xi_range=(1.0, 5.0),
        )
        assert all(e.required_resources <= 2.0 for e in inst.events)


class TestStorage:
    def test_memmap_storage(self, tmp_path):
        inst = synthesize_sharded_instance(
            600, shards=2, block_users=256, storage="memmap32",
            directory=tmp_path, seed=6, **SHAPE,
        )
        assert inst.interest.storage == "memmap32"
        ref = synthesize_sharded_instance(
            600, shards=2, block_users=256, seed=6, **SHAPE
        )
        np.testing.assert_allclose(
            inst.interest.candidate, ref.interest.candidate, atol=1e-6
        )

    def test_synthesized_instance_solves_with_parity(self):
        inst = synthesize_sharded_instance(
            800, shards=2, block_users=256, seed=9, **SHAPE
        )
        flat = inst.interest.to_interest("sparse")
        from repro.core.instance import SESInstance

        flat_inst = SESInstance(
            users=inst.users,
            intervals=inst.intervals,
            events=inst.events,
            competing=inst.competing,
            interest=flat,
            activity=inst.activity,
            organizer=inst.organizer,
        )
        shard_engine = EngineSpec(kind="sparse", shards=3).build(inst)
        flat_engine = EngineSpec(kind="sparse").build(flat_inst)
        np.testing.assert_allclose(
            shard_engine.scores_for_rows([0, 1, 2, 3], list(range(9))),
            flat_engine.scores_for_rows([0, 1, 2, 3], list(range(9))),
            rtol=1e-9,
            atol=1e-12,
        )
