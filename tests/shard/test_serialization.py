"""Sharded-instance serialization: directory format + flat fallbacks."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance_npz,
    load_sharded_instance,
    save_instance_npz,
    save_sharded_instance,
)
from repro.workloads.generator import synthesize_sharded_instance

from tests.conftest import make_random_instance

pytest.importorskip("scipy")


@pytest.fixture(scope="module")
def instance():
    return synthesize_sharded_instance(
        900, n_events=8, n_intervals=3, density=0.05, shards=2,
        block_users=256, seed=13,
    )


class TestFlatFallbacks:
    def test_json_dict_flattens_to_sparse(self, instance):
        back = instance_from_dict(instance_to_dict(instance))
        assert back.interest.backend == "sparse"
        np.testing.assert_array_equal(
            back.interest.candidate, instance.interest.candidate
        )

    def test_npz_round_trip_flattens_to_sparse(self, instance, tmp_path):
        path = tmp_path / "inst.npz"
        save_instance_npz(instance, path)
        back = load_instance_npz(path)
        assert back.interest.backend == "sparse"
        np.testing.assert_array_equal(
            back.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_array_equal(
            back.activity.matrix, instance.activity.matrix
        )


class TestDirectoryFormat:
    def test_csc_round_trip_is_exact(self, instance, tmp_path):
        save_sharded_instance(instance, tmp_path / "d")
        back = load_sharded_instance(tmp_path / "d")
        assert back.interest.backend == "sharded"
        assert back.interest.storage == "csc"
        assert back.interest.plan == instance.interest.plan
        np.testing.assert_array_equal(
            back.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_array_equal(
            back.interest.competing, instance.interest.competing
        )
        np.testing.assert_array_equal(
            back.activity.matrix, instance.activity.matrix
        )
        assert back.n_users == instance.n_users
        assert back.events == instance.events

    @pytest.mark.parametrize("storage", ["dense32", "memmap32"])
    def test_float32_storages_round_trip(self, instance, tmp_path, storage):
        directory = tmp_path / "src" if storage == "memmap32" else None
        converted = instance.interest.with_storage(storage, directory=directory)
        from repro.core.instance import SESInstance

        inst32 = SESInstance(
            users=instance.users,
            intervals=instance.intervals,
            events=instance.events,
            competing=instance.competing,
            interest=converted,
            activity=instance.activity,
            organizer=instance.organizer,
        )
        save_sharded_instance(inst32, tmp_path / "d32")
        back = load_sharded_instance(tmp_path / "d32")
        assert back.interest.storage == storage
        if storage == "memmap32":
            assert type(back.interest.candidate_block(0)).__name__ == "memmap"
        else:
            block = back.interest.candidate_block(0)
            assert block.dtype == np.float32 and not block.flags.writeable
        np.testing.assert_allclose(
            back.interest.candidate, instance.interest.candidate, atol=1e-6
        )

    def test_default_users_stored_as_count(self, instance, tmp_path):
        save_sharded_instance(instance, tmp_path / "d")
        manifest = json.loads((tmp_path / "d" / "manifest.json").read_text())
        assert manifest["metadata"]["users"] == {"count": 900}
        assert manifest["plan"]["block_users"] == 256

    def test_named_users_stored_in_full(self, tmp_path):
        from repro.core.instance import SESInstance
        from repro.core.entities import User
        from repro.shard.interest import ShardedInterest
        from repro.shard.plan import ShardPlan

        base = make_random_instance(n_users=20, seed=2)
        users = tuple(
            User(index=u.index, name=f"user-{u.index}") for u in base.users
        )
        interest = ShardedInterest.from_interest(
            base.interest, ShardPlan(n_users=20, block_users=8), "csc"
        )
        named = SESInstance(
            users=users,
            intervals=base.intervals,
            events=base.events,
            competing=base.competing,
            interest=interest,
            activity=base.activity,
            organizer=base.organizer,
        )
        save_sharded_instance(named, tmp_path / "named")
        manifest = json.loads(
            (tmp_path / "named" / "manifest.json").read_text()
        )
        assert isinstance(manifest["metadata"]["users"], list)
        back = load_sharded_instance(tmp_path / "named")
        assert back.users[3].name == "user-3"

    def test_requires_sharded_interest(self, tmp_path):
        flat = make_random_instance(seed=1)
        with pytest.raises(ValueError, match="ShardedInterest"):
            save_sharded_instance(flat, tmp_path / "flat")

    def test_version_mismatch_rejected(self, instance, tmp_path):
        save_sharded_instance(instance, tmp_path / "d")
        manifest_path = tmp_path / "d" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_sharded_instance(tmp_path / "d")
