"""ShardedEngine differential suite: P-independence and flat parity.

The two contracts under test, per the shard design:

* **bit-identical across P** — with ``block_users`` fixed, every query
  returns the *same bits* for any shard count and executor kind, because
  partials always merge in ascending global block order;
* **parity with the unsharded engine** — 1e-9 relative on float64 block
  storage (regrouped float sums), 1e-6 absolute on float32 storages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineSpec, SparseEngine, VectorizedEngine
from repro.core.instance import SESInstance
from repro.core.scoreplane import ScorePlane
from repro.shard.engine import ShardedEngine, localize_delta
from repro.shard.executor import ShardExecutor, fork_available
from repro.shard.interest import ShardedInterest
from repro.shard.plan import ShardPlan

from tests.conftest import make_random_instance

pytest.importorskip("scipy")

SHARD_COUNTS = (1, 2, 7)
BLOCK_USERS = 16


def sharded(instance, kind="sparse", shards=1, **kwargs):
    kwargs.setdefault("block_users", BLOCK_USERS)
    return ShardedEngine(instance, kind=kind, shards=shards, **kwargs)


@pytest.fixture(scope="module", params=["dense", "sparse"])
def instance(request) -> SESInstance:
    return make_random_instance(
        n_users=73,
        n_events=8,
        n_intervals=5,
        n_competing=6,
        seed=31,
        interest_backend=request.param,
    )


class TestBitIdenticalAcrossP:
    def test_scores_for_rows_bitwise_equal(self, instance):
        intervals, events = [0, 2, 4], list(range(8))
        baseline = sharded(instance, shards=1).scores_for_rows(
            intervals, events
        )
        for shards in SHARD_COUNTS[1:]:
            other = sharded(instance, shards=shards).scores_for_rows(
                intervals, events
            )
            assert np.array_equal(baseline, other)

    def test_all_query_surfaces_bitwise_equal(self, instance):
        engines = [sharded(instance, shards=p) for p in SHARD_COUNTS]
        for engine in engines:
            engine.assign(0, 1)
            engine.assign(3, 2)
        base = engines[0]
        for other in engines[1:]:
            assert base.score(2, 1) == other.score(2, 1)
            assert base.omega(0) == other.omega(0)
            assert base.total_utility() == other.total_utility()
            assert base.interval_utility(1) == other.interval_utility(1)
            assert base.removal_loss(0) == other.removal_loss(0)
            np.testing.assert_array_equal(
                base.removal_losses([0, 3]), other.removal_losses([0, 3])
            )
            np.testing.assert_array_equal(
                base.scores_for_event(5, [0, 1, 2]),
                other.scores_for_event(5, [0, 1, 2]),
            )
            np.testing.assert_array_equal(
                base.scores_excluding_each(2, 1, [0]),
                other.scores_excluding_each(2, 1, [0]),
            )

    @pytest.mark.parametrize("executor_kind", ["serial", "thread", "process"])
    def test_executor_kind_never_changes_bits(self, instance, executor_kind):
        if executor_kind == "process" and not fork_available():
            pytest.skip("fork start method unavailable")
        baseline = sharded(instance, shards=3).scores_for_rows(
            [0, 1], list(range(8))
        )
        engine = sharded(
            instance,
            shards=3,
            executor=ShardExecutor(workers=3, kind=executor_kind),
        )
        other = engine.scores_for_rows([0, 1], list(range(8)))
        assert np.array_equal(baseline, other)


class TestFlatParity:
    def test_single_block_is_bit_identical_to_flat(self, instance):
        """One block == one unmodified sub-engine over all rows."""
        flat = SparseEngine(instance)
        wide = ShardedEngine(
            instance, kind="sparse", shards=4, block_users=1000
        )
        for engine in (flat, wide):
            engine.assign(1, 0)
        intervals = [0, 1, 2, 3, 4]
        events = [e for e in range(8) if e != 1]
        assert np.array_equal(
            flat.scores_for_rows(intervals, events),
            wide.scores_for_rows(intervals, events),
        )
        assert flat.total_utility() == wide.total_utility()

    @pytest.mark.parametrize("kind", ["sparse", "vectorized"])
    def test_multi_block_parity_1e9(self, instance, kind):
        flat_cls = SparseEngine if kind == "sparse" else VectorizedEngine
        flat = flat_cls(instance)
        shard = sharded(instance, kind=kind, shards=3)
        for engine in (flat, shard):
            engine.assign(0, 2)
            engine.assign(5, 1)
        free = [e for e in range(8) if e not in (0, 5)]
        np.testing.assert_allclose(
            flat.scores_for_rows([0, 1, 2, 3, 4], free),
            shard.scores_for_rows([0, 1, 2, 3, 4], free),
            rtol=1e-9,
            atol=1e-12,
        )
        assert flat.total_utility() == pytest.approx(
            shard.total_utility(), rel=1e-9
        )
        assert flat.omega(5) == pytest.approx(shard.omega(5), rel=1e-9)
        np.testing.assert_allclose(
            flat.removal_losses([0, 5]),
            shard.removal_losses([0, 5]),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_what_if_cycle_parity(self, instance):
        flat = SparseEngine(instance)
        shard = sharded(instance, shards=2)
        for engine in (flat, shard):
            engine.assign(0, 0)
            engine.assign(1, 0)
            engine.unassign(0)
        assert flat.total_utility() == pytest.approx(
            shard.total_utility(), rel=1e-9
        )
        assert flat.score(0, 0) == pytest.approx(shard.score(0, 0), rel=1e-9)
        shard.reset()
        flat.reset()
        assert shard.total_utility() == flat.total_utility() == 0.0


class TestShardedInterestBacked:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        flat_instance = make_random_instance(
            n_users=80, n_events=7, n_intervals=4, seed=8,
            interest_backend="sparse",
        )
        plan = ShardPlan(n_users=80, n_shards=2, block_users=BLOCK_USERS)
        directory = tmp_path_factory.mktemp("blocks")
        interest = ShardedInterest.from_interest(
            flat_instance.interest, plan, "memmap32", directory=directory
        )
        sharded_instance = SESInstance(
            users=flat_instance.users,
            intervals=flat_instance.intervals,
            events=flat_instance.events,
            competing=flat_instance.competing,
            interest=interest,
            activity=flat_instance.activity,
            organizer=flat_instance.organizer,
        )
        return flat_instance, sharded_instance

    def test_engine_adopts_the_interest_plan(self, pair):
        _, inst = pair
        engine = ShardedEngine(inst, kind="sparse", shards=5)
        assert engine.plan.block_users == BLOCK_USERS
        assert engine.plan.n_shards == 5

    def test_block_users_conflict_rejected(self, pair):
        _, inst = pair
        with pytest.raises(ValueError, match="cannot override"):
            ShardedEngine(inst, kind="sparse", block_users=BLOCK_USERS + 1)

    @pytest.mark.parametrize("kind", ["sparse", "vectorized"])
    def test_memmap_parity_1e6(self, pair, kind):
        flat_instance, inst = pair
        flat = SparseEngine(flat_instance)
        shard = ShardedEngine(inst, kind=kind, shards=3)
        for engine in (flat, shard):
            engine.assign(2, 1)
        free = [e for e in range(7) if e != 2]
        np.testing.assert_allclose(
            flat.scores_for_rows([0, 1, 2, 3], free),
            shard.scores_for_rows([0, 1, 2, 3], free),
            atol=1e-6,
        )
        assert flat.total_utility() == pytest.approx(
            shard.total_utility(), abs=1e-4
        )

    def test_bit_identical_across_p_on_memmap(self, pair):
        _, inst = pair
        results = [
            ShardedEngine(inst, kind="sparse", shards=p).scores_for_rows(
                [0, 1, 2, 3], list(range(7))
            )
            for p in SHARD_COUNTS
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestEngineSpecIntegration:
    def test_spec_builds_sharded_engine(self, instance):
        spec = EngineSpec(kind="sparse", shards=3, block_users=BLOCK_USERS)
        engine = spec.build(instance)
        assert isinstance(engine, ShardedEngine)
        assert engine.plan.n_shards == 3
        assert engine.kind == "sparse"

    def test_workers_without_shards_rejected(self):
        with pytest.raises(ValueError, match="sharding parameters"):
            EngineSpec(kind="sparse", workers=4)
        with pytest.raises(ValueError, match="sharding parameters"):
            EngineSpec(kind="sparse", block_users=64)

    def test_reference_kind_cannot_shard(self):
        with pytest.raises(ValueError):
            EngineSpec(kind="reference", shards=2)

    def test_sharded_engine_rejects_reference_kind(self, instance):
        with pytest.raises(ValueError, match="cannot shard"):
            ShardedEngine(instance, kind="reference")

    def test_plain_spec_unchanged(self, instance):
        assert isinstance(EngineSpec(kind="sparse").build(instance), SparseEngine)

    def test_spec_equality_distinguishes_sharding(self):
        assert EngineSpec(kind="sparse") != EngineSpec(kind="sparse", shards=2)
        assert EngineSpec(kind="sparse", shards=2) == EngineSpec(
            kind="sparse", shards=2
        )


class TestPlaneFastPath:
    def test_cold_fill_is_one_fanout(self, instance):
        engine = sharded(instance, shards=3)
        plane = ScorePlane(engine)
        plane.ensure()
        stats = engine.stats()
        assert stats["fanouts"] == 1
        assert stats["merged_partials"] == engine.plan.n_blocks
        assert stats["blocks"] == engine.plan.n_blocks
        assert stats["shards"] == 3

    def test_plane_matches_flat_fill(self, instance):
        flat_plane = ScorePlane(SparseEngine(instance))
        shard_plane = ScorePlane(sharded(instance, shards=2))
        np.testing.assert_allclose(
            flat_plane.ensure(), shard_plane.ensure(), rtol=1e-9, atol=1e-12
        )

    def test_dirty_refresh_is_one_more_fanout(self, instance):
        engine = sharded(instance, shards=2)
        plane = ScorePlane(engine)
        plane.ensure()
        plane.mark_dirty(1)
        plane.mark_dirty(3)
        plane.ensure()
        assert engine.stats()["fanouts"] == 2

    def test_clone_shares_layout_but_not_counters(self, instance):
        engine = sharded(instance, shards=2)
        engine.assign(0, 1)
        ScorePlane(engine).ensure()
        clone = engine.clone()
        assert clone.stats()["fanouts"] == 0
        assert clone.plan == engine.plan
        assert clone.schedule.as_mapping() == engine.schedule.as_mapping()
        assert clone.total_utility() == engine.total_utility()
        # divergence after cloning stays private
        clone.assign(4, 0)
        assert 4 not in engine.schedule.as_mapping()

    def test_score_geometry_tracks_blocks(self, instance):
        narrow = sharded(instance, shards=1).score_geometry()
        wide = sharded(instance, shards=3).score_geometry()
        assert narrow == wide  # geometry depends on blocks, not P
        other = ShardedEngine(
            instance, kind="sparse", block_users=BLOCK_USERS * 2
        ).score_geometry()
        assert narrow != other


class TestLocalizeDelta:
    def test_unknown_delta_type_rejected(self):
        class Rogue:
            pass

        with pytest.raises(TypeError, match="unknown live delta"):
            localize_delta(Rogue(), 0, 10)
