"""Sharded primaries behind the serving PlanePool's single-writer lock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineSpec
from repro.core.entities import CompetingEvent
from repro.core.live import LiveInstance
from repro.serve.pool import PlanePool
from repro.shard.engine import ShardedEngine

from tests.conftest import make_random_instance

pytest.importorskip("scipy")

FLAT = EngineSpec(kind="sparse")
SHARDED = EngineSpec(kind="sparse", shards=2, block_users=16)


@pytest.fixture
def pool():
    instance = make_random_instance(
        n_users=50, n_events=6, n_intervals=4, seed=12,
        interest_backend="sparse",
    )
    return PlanePool(LiveInstance(instance))


class TestShardedPrimaries:
    def test_replica_matrix_matches_flat_spec(self, pool):
        with pool.lease(FLAT) as flat, pool.lease(SHARDED) as shard:
            np.testing.assert_allclose(
                flat.plane.ensure(),
                shard.plane.ensure(),
                rtol=1e-9,
                atol=1e-12,
            )
            assert isinstance(shard.plane.engine, ShardedEngine)

    def test_write_keeps_sharded_primary_warm(self, pool):
        with pool.lease(SHARDED) as replica:
            before = replica.plane.ensure().copy()

        def mutate(live):
            rng = np.random.default_rng(3)
            column = rng.uniform(0, 1, live.n_users)
            return live.add_competing(
                CompetingEvent(index=live.n_competing, interval=1), column
            )

        pool.write(mutate)
        with pool.lease(FLAT) as flat, pool.lease(SHARDED) as shard:
            after_flat = flat.plane.ensure()
            after_shard = shard.plane.ensure()
        np.testing.assert_allclose(
            after_flat, after_shard, rtol=1e-9, atol=1e-12
        )
        assert not np.array_equal(before, after_shard)

    def test_replicas_fork_without_cold_cells(self, pool):
        for _ in range(3):
            with pool.lease(SHARDED):
                pass
        assert pool.stats().replica_cold_cells == 0

    def test_generation_invalidation_applies_to_sharded(self, pool):
        replica = pool.acquire(SHARDED)
        generation = replica.generation
        pool.release(replica)
        pool.write(
            lambda live: live.add_competing(
                CompetingEvent(index=live.n_competing, interval=0),
                np.zeros(live.n_users),
            )
        )
        fresh = pool.acquire(SHARDED)
        assert fresh.generation == generation + 1
        assert not fresh.pool_hit
        pool.release(fresh)


class TestPrimaryStats:
    def test_keys_and_shard_counters(self, pool):
        with pool.lease(FLAT), pool.lease(SHARDED):
            pass
        stats = pool.primary_stats()
        assert set(stats) == {"sparse", "sparse@2"}
        assert "fanouts" not in stats["sparse"]
        sharded = stats["sparse@2"]
        assert sharded["fanouts"] == 1  # one cold fill, one fan-out
        assert sharded["shards"] == 2
        assert sharded["merged_partials"] >= sharded["blocks"]
        assert sharded["cells_filled"] > 0

    def test_empty_before_any_lease(self, pool):
        assert pool.primary_stats() == {}
