"""Live-delta replays and golden traces through the sharded engine.

Replays full delta streams (arrivals, removals, drift, rivals) against
sharded engines at P in {1, 2, 7} and checks three things: trajectories
are bit-identical across P, they match the unsharded engine to 1e-9, and
the committed golden traces replay exactly on the single-block layout
with zero hot-path freezes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import EngineSpec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.live import LiveInstance
from repro.core.scoreplane import ScorePlane
from repro.stream import StreamDriver, Trace

from tests.conftest import make_random_instance
from tests.stream.golden.regenerate import CASES, build_case

pytest.importorskip("scipy")

GOLDEN_DIR = Path(__file__).parents[1] / "stream" / "golden"
SHARD_COUNTS = (1, 2, 7)
BLOCK_USERS = 16


def delta_script(live: LiveInstance, seed: int):
    """Apply one of each structural op; yield the deltas in order."""
    rng = np.random.default_rng(seed)
    n_users = live.n_users
    column = rng.uniform(0, 1, n_users) * (rng.random(n_users) < 0.4)
    yield live.add_event(
        CandidateEvent(
            index=live.n_events, location=0, required_resources=1.0
        ),
        column,
    )
    drift = rng.uniform(0, 1, n_users) * (rng.random(n_users) < 0.4)
    yield live.replace_event_interest(1, drift)
    rival = rng.uniform(0, 1, n_users) * (rng.random(n_users) < 0.4)
    yield live.add_competing(
        CompetingEvent(index=live.n_competing, interval=1), rival
    )
    yield live.remove_event(0)


@pytest.mark.parametrize("backend", ["dense", "sparse"])
class TestDeltaStreamParity:
    def trajectory(self, backend, spec_kwargs, seed=17):
        instance = make_random_instance(
            n_users=60, n_events=6, n_intervals=4, seed=seed,
            interest_backend=backend,
        )
        live = LiveInstance(instance)
        spec = EngineSpec(kind="sparse", **spec_kwargs)
        engine = spec.build(live)
        engine.assign(1, 0)
        engine.assign(2, 1)
        plane = ScorePlane(engine, auto_reset=False)
        plane.ensure()
        snapshots = [plane.ensure().copy()]
        utilities = [engine.total_utility()]
        for delta in delta_script(live, seed):
            plane.apply_delta(delta)
            snapshots.append(plane.ensure().copy())
            utilities.append(engine.total_utility())
        return snapshots, utilities, live.freezes

    def test_bit_identical_across_p(self, backend):
        base_snaps, base_utils, _ = self.trajectory(
            backend, dict(shards=1, block_users=BLOCK_USERS)
        )
        for shards in SHARD_COUNTS[1:]:
            snaps, utils, _ = self.trajectory(
                backend, dict(shards=shards, block_users=BLOCK_USERS)
            )
            assert utils == base_utils
            for a, b in zip(base_snaps, snaps):
                assert np.array_equal(a, b)

    def test_matches_unsharded_to_1e9(self, backend):
        flat_snaps, flat_utils, flat_freezes = self.trajectory(backend, {})
        snaps, utils, freezes = self.trajectory(
            backend, dict(shards=3, block_users=BLOCK_USERS)
        )
        assert utils == pytest.approx(flat_utils, rel=1e-9, abs=1e-12)
        for a, b in zip(flat_snaps, snaps):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)
        assert freezes == flat_freezes == 0

    def test_single_block_replay_is_bit_identical_to_unsharded(self, backend):
        flat_snaps, flat_utils, _ = self.trajectory(backend, {})
        snaps, utils, _ = self.trajectory(
            backend, dict(shards=2, block_users=1000)
        )
        assert utils == flat_utils
        for a, b in zip(flat_snaps, snaps):
            assert np.array_equal(a, b)


class TestGoldenReplaysSharded:
    """The committed golden traces replayed through sharded engines."""

    with (GOLDEN_DIR / "expected.json").open() as handle:
        EXPECTED = json.load(handle)

    def replay(self, name: str, shards: int, block_users: int):
        instance, _, flat_spec = build_case(name)
        trace = Trace.load(GOLDEN_DIR / f"{name}.jsonl")
        spec = EngineSpec(
            kind=flat_spec.kind, shards=shards, block_users=block_users
        )
        driver = StreamDriver(instance, policy="incremental", engine=spec)
        return driver.run(trace)

    @pytest.mark.parametrize(
        "name",
        [n for n in CASES if CASES[n][0] == "sparse"],
    )
    def test_single_block_matches_golden_exactly(self, name):
        result = self.replay(name, shards=2, block_users=10**6)
        expected = self.EXPECTED[name]["policies"]["incremental"]
        assert list(result.utilities) == expected["utilities"]
        assert result.final_utility == expected["final_utility"]
        assert result.final_k == expected["final_k"]
        assert result.freezes == 0

    @pytest.mark.parametrize(
        "name",
        [n for n in CASES if CASES[n][0] == "sparse"],
    )
    def test_multi_block_replay_p_independent_and_close(self, name):
        results = [
            self.replay(name, shards=p, block_users=BLOCK_USERS)
            for p in SHARD_COUNTS
        ]
        for other in results[1:]:
            assert list(results[0].utilities) == list(other.utilities)
            assert results[0].final_schedule == other.final_schedule
        expected = self.EXPECTED[name]["policies"]["incremental"]
        assert list(results[0].utilities) == pytest.approx(
            expected["utilities"], rel=1e-9
        )
        assert all(result.freezes == 0 for result in results)

    def test_stream_result_records_sharding(self):
        name = next(n for n in CASES if CASES[n][0] == "sparse")
        payload = self.replay(name, shards=2, block_users=BLOCK_USERS).as_dict()
        assert payload["shards"] == 2
        assert payload["workers"] is None
