"""ShardedInterest: block storage behind the flat accessor protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix, slice_entries
from repro.shard.interest import SHARD_STORAGES, ShardedInterest
from repro.shard.plan import ShardPlan

pytest.importorskip("scipy")

N_USERS, N_EVENTS, N_COMPETING = 97, 7, 5


@pytest.fixture(scope="module")
def flat() -> InterestMatrix:
    rng = np.random.default_rng(21)
    candidate = rng.uniform(0, 1, (N_USERS, N_EVENTS))
    candidate *= rng.random(candidate.shape) < 0.3
    competing = rng.uniform(0, 1, (N_USERS, N_COMPETING))
    competing *= rng.random(competing.shape) < 0.3
    return InterestMatrix.from_arrays(candidate, competing, backend="sparse")


@pytest.fixture(scope="module")
def plan() -> ShardPlan:
    return ShardPlan(n_users=N_USERS, n_shards=3, block_users=16)


def tolerance(storage: str) -> float:
    return 0.0 if storage == "csc" else 1e-6


def build(flat, plan, storage, tmp_path=None):
    directory = tmp_path if storage == "memmap32" else None
    return ShardedInterest.from_interest(
        flat, plan, storage, directory=directory
    )


class TestSliceEntries:
    def test_window_is_localized(self):
        rows = np.array([2, 5, 9, 14, 30], dtype=np.intp)
        values = np.array([0.2, 0.5, 0.9, 0.4, 0.3])
        local, vals = slice_entries(rows, values, 5, 15)
        np.testing.assert_array_equal(local, [0, 4, 9])
        np.testing.assert_array_equal(vals, [0.5, 0.9, 0.4])

    def test_empty_window(self):
        rows = np.array([2, 5], dtype=np.intp)
        local, vals = slice_entries(rows, np.array([0.2, 0.5]), 10, 20)
        assert local.size == 0 and vals.size == 0


@pytest.mark.parametrize("storage", SHARD_STORAGES)
class TestAccessorProtocolParity:
    def test_shape_and_backend(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        assert sharded.backend == "sharded"
        assert sharded.storage == storage
        assert (sharded.n_users, sharded.n_events, sharded.n_competing) == (
            N_USERS,
            N_EVENTS,
            N_COMPETING,
        )

    def test_dense_matrices_match(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        atol = tolerance(storage)
        np.testing.assert_allclose(sharded.candidate, flat.candidate, atol=atol)
        np.testing.assert_allclose(sharded.competing, flat.competing, atol=atol)

    def test_column_entries_match(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        atol = tolerance(storage)
        for event in range(N_EVENTS):
            rows, values = sharded.event_column_entries(event)
            frows, fvalues = flat.event_column_entries(event)
            np.testing.assert_array_equal(rows, frows)
            np.testing.assert_allclose(values, fvalues, atol=atol)
            assert values.dtype == np.float64  # float64 at the gather boundary
            np.testing.assert_allclose(
                sharded.event_column(event), flat.event_column(event), atol=atol
            )

    def test_competing_mass_entries_match(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        rivals = [0, 2, 4]
        rows, values = sharded.competing_mass_entries(rivals)
        frows, fvalues = flat.competing_mass_entries(rivals)
        np.testing.assert_array_equal(rows, frows)
        np.testing.assert_allclose(values, fvalues, atol=tolerance(storage))
        assert sharded.competing_mass_entries([])[0].size == 0

    def test_pointwise_mu(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        atol = tolerance(storage)
        for user in (0, 15, 16, 96):
            for event in range(N_EVENTS):
                assert sharded.mu_event(user, event) == pytest.approx(
                    flat.mu_event(user, event), abs=atol
                )
            assert sharded.mu_competing(user, 1) == pytest.approx(
                flat.mu_competing(user, 1), abs=atol
            )

    def test_sparse_and_coo_views(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        atol = tolerance(storage)
        np.testing.assert_allclose(
            sharded.candidate_sparse.toarray(), flat.candidate, atol=atol
        )
        rows, cols, values = sharded.candidate_coo()
        dense = np.zeros((N_USERS, N_EVENTS))
        dense[rows, cols] = values
        np.testing.assert_allclose(dense, flat.candidate, atol=atol)

    def test_statistics(self, flat, plan, storage, tmp_path):
        sharded = build(flat, plan, storage, tmp_path)
        assert sharded.nnz_candidate() == flat.nnz_candidate()
        assert sharded.sparsity() == pytest.approx(flat.sparsity())
        assert sharded.mean_positive_interest() == pytest.approx(
            flat.mean_positive_interest(), abs=1e-6
        )


class TestConstruction:
    def test_unknown_storage_rejected(self, flat, plan):
        with pytest.raises(ValueError, match="unknown shard storage"):
            ShardedInterest.from_interest(flat, plan, "csr")

    def test_memmap_requires_directory(self, flat, plan):
        with pytest.raises(ValueError, match="requires a directory"):
            ShardedInterest.from_interest(flat, plan, "memmap32")

    def test_plan_user_mismatch_rejected(self, flat):
        with pytest.raises(InstanceValidationError, match="plan covers"):
            ShardedInterest.from_interest(
                flat, ShardPlan(n_users=N_USERS + 1, block_users=16), "csc"
            )

    def test_wrong_block_count_rejected(self, flat, plan):
        sharded = build(flat, plan, "csc")
        blocks = [sharded.candidate_block(i) for i in range(plan.n_blocks)]
        with pytest.raises(InstanceValidationError, match="candidate blocks"):
            ShardedInterest(plan, blocks[:-1], blocks, "csc")

    def test_wrong_block_shape_rejected(self, flat, plan):
        sharded = build(flat, plan, "csc")
        candidate = [sharded.candidate_block(i) for i in range(plan.n_blocks)]
        competing = [sharded.competing_block(i) for i in range(plan.n_blocks)]
        candidate[0] = candidate[0][:5]
        with pytest.raises(InstanceValidationError, match="has shape"):
            ShardedInterest(plan, candidate, competing, "csc")

    def test_out_of_range_values_rejected(self, plan):
        bad = np.full((16, 2), 1.5)
        blocks = [
            np.zeros((hi - lo, 2))
            for b in range(plan.n_blocks)
            for lo, hi in [plan.block_bounds(b)]
        ]
        candidate = list(blocks)
        candidate[0] = bad
        with pytest.raises(InstanceValidationError, match=r"\[0, 1\]"):
            ShardedInterest(plan, candidate, blocks, "dense32")

    def test_nan_rejected(self, plan):
        blocks = [
            np.zeros((hi - lo, 2))
            for b in range(plan.n_blocks)
            for lo, hi in [plan.block_bounds(b)]
        ]
        candidate = list(blocks)
        candidate[0] = np.full((16, 2), np.nan)
        with pytest.raises(InstanceValidationError, match="NaN"):
            ShardedInterest(plan, candidate, blocks, "dense32")

    def test_generic_duck_source_matches_sparse_source(self, flat, plan):
        """A dense-backed matrix reshards through the entries fallback."""
        dense_flat = flat.to_backend("dense")
        from_entries = ShardedInterest.from_interest(dense_flat, plan, "csc")
        from_sparse = ShardedInterest.from_interest(flat, plan, "csc")
        np.testing.assert_array_equal(
            from_entries.candidate, from_sparse.candidate
        )
        np.testing.assert_array_equal(
            from_entries.competing, from_sparse.competing
        )


class TestConversion:
    def test_with_storage_round_trip(self, flat, plan, tmp_path):
        csc = build(flat, plan, "csc")
        assert csc.with_storage("csc") is csc
        chain = csc.with_storage("dense32").with_storage(
            "memmap32", directory=tmp_path
        )
        assert chain.storage == "memmap32"
        assert type(chain.candidate_block(0)).__name__ == "memmap"
        np.testing.assert_allclose(chain.candidate, flat.candidate, atol=1e-6)

    def test_to_interest_backends(self, flat, plan):
        sharded = build(flat, plan, "csc")
        back_sparse = sharded.to_interest("sparse")
        assert back_sparse.backend == "sparse"
        np.testing.assert_array_equal(back_sparse.candidate, flat.candidate)
        back_dense = sharded.to_interest("dense")
        assert back_dense.backend == "dense"
        np.testing.assert_array_equal(back_dense.candidate, flat.candidate)

    def test_dense32_blocks_are_readonly_fortran(self, flat, plan):
        sharded = build(flat, plan, "dense32")
        block = sharded.candidate_block(0)
        assert block.dtype == np.float32
        assert block.flags.f_contiguous
        assert not block.flags.writeable
