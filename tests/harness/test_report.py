"""Tests of the text figure rendering."""

from repro.harness.report import format_ascii_chart, format_figure, format_table
from repro.harness.results import SweepRow, SweepTable


def _table():
    table = SweepTable(x_label="k", title="Fig demo")
    for x, method, utility, time in [
        (10, "GRD", 50.0, 0.2),
        (10, "RAND", 20.0, 0.01),
        (20, "GRD", 90.0, 0.5),
        (20, "RAND", 30.0, 0.02),
    ]:
        table.add(
            SweepRow(
                x=x, method=method, utility=utility, runtime_seconds=time,
                achieved_k=x, requested_k=x,
            )
        )
    return table


class TestFormatTable:
    def test_contains_header_and_values(self):
        text = format_table(_table())
        assert "GRD" in text and "RAND" in text
        assert "50.00" in text and "90.00" in text

    def test_time_mode_uses_milliseconds(self):
        text = format_table(_table(), value="time")
        assert "200.0ms" in text

    def test_missing_cells_render_dash(self):
        table = SweepTable(x_label="k")
        table.add(
            SweepRow(x=1, method="GRD", utility=1.0, runtime_seconds=0.1,
                     achieved_k=1, requested_k=1)
        )
        table.add(
            SweepRow(x=2, method="TOP", utility=2.0, runtime_seconds=0.1,
                     achieved_k=2, requested_k=2)
        )
        assert "—" in format_table(table)


class TestAsciiChart:
    def test_bars_scale_with_values(self):
        text = format_ascii_chart(_table())
        lines = [line for line in text.splitlines() if "GRD" in line]
        # the k=20 GRD bar (90.0, the max) must be the longest
        assert lines[1].count("#") > lines[0].count("#")

    def test_every_series_point_rendered(self):
        text = format_ascii_chart(_table())
        assert len(text.splitlines()) == 4

    def test_zero_utility_renders_empty_bar(self):
        table = SweepTable(x_label="k")
        table.add(
            SweepRow(x=1, method="GRD", utility=0.0, runtime_seconds=0.0,
                     achieved_k=0, requested_k=1)
        )
        text = format_ascii_chart(table)
        assert "#" not in text


class TestFormatFigure:
    def test_includes_title_table_and_chart(self):
        text = format_figure(_table())
        assert "== Fig demo ==" in text
        assert "#" in text
        assert "GRD" in text
