"""Tests of the sweep runner on miniature grids."""

import pytest

from repro.harness.runner import paper_methods, run_point, run_sweep
from repro.workloads.config import ExperimentConfig
from repro.workloads.sweeps import sweep_intervals, sweep_k

from tests.conftest import make_random_instance

TINY_BASE = ExperimentConfig(n_users=60)


class TestPaperMethods:
    def test_contains_the_three_paper_methods(self):
        methods = paper_methods(seed=0)
        assert set(methods) == {"GRD", "TOP", "RAND"}

    def test_engine_spec_propagates(self):
        methods = paper_methods(seed=0, engine="reference")
        assert all(m.engine_kind == "reference" for m in methods.values())


class TestRunPoint:
    def test_returns_result_per_method(self):
        instance = make_random_instance(seed=300)
        results = run_point(instance, 3, paper_methods(seed=1))
        assert set(results) == {"GRD", "TOP", "RAND"}
        assert all(r.achieved_k == 3 for r in results.values())

    def test_grd_wins_or_ties_on_utility(self):
        instance = make_random_instance(seed=301, n_users=25)
        results = run_point(instance, 4, paper_methods(seed=2))
        assert results["GRD"].utility >= results["TOP"].utility - 1e-9
        assert results["GRD"].utility >= results["RAND"].utility - 1e-9


class TestRunSweep:
    def test_table_covers_grid_times_methods(self):
        sweep = sweep_k((5, 10), base=TINY_BASE)
        table = run_sweep(sweep, x_label="k", root_seed=0)
        assert table.x_values() == (5.0, 10.0)
        assert len(table.rows) == 2 * 3

    def test_interval_sweep_runs(self):
        sweep = sweep_intervals(k=5, factors=(1.0, 2.0), base=TINY_BASE)
        table = run_sweep(sweep, x_label="|T|", root_seed=0)
        assert table.x_values() == (5.0, 10.0)

    def test_progress_callback_called_per_point(self):
        lines = []
        sweep = sweep_k((5, 10), base=TINY_BASE)
        run_sweep(sweep, x_label="k", root_seed=0, progress=lines.append)
        assert len(lines) == 2

    def test_reproducible_given_root_seed(self):
        sweep = sweep_k((5,), base=TINY_BASE)
        a = run_sweep(sweep, x_label="k", root_seed=3)
        b = run_sweep(sweep, x_label="k", root_seed=3)
        assert [(r.method, r.utility) for r in a.rows] == [
            (r.method, r.utility) for r in b.rows
        ]

    def test_custom_method_factory(self):
        from repro.algorithms.greedy import GreedyScheduler

        sweep = sweep_k((5,), base=TINY_BASE)
        table = run_sweep(
            sweep,
            x_label="k",
            root_seed=0,
            method_factory=lambda: {"ONLY": GreedyScheduler()},
        )
        assert table.methods() == ("ONLY",)

    def test_rows_carry_solver_stats(self):
        sweep = sweep_k((5,), base=TINY_BASE)
        table = run_sweep(sweep, x_label="k", root_seed=0)
        grd_row = next(r for r in table.rows if r.method == "GRD")
        assert grd_row.extra["initial_scores"] > 0
