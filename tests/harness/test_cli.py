"""Tests of the ses-repro CLI (figure/dataset/solve/demo)."""

import json

import pytest

from repro.data.serialization import save_instance
from repro.harness.cli import build_parser, main

from tests.conftest import make_random_instance


class TestParser:
    def test_figure_panels_accepted(self):
        parser = build_parser()
        for panel in ("1a", "1b", "1c", "1d"):
            args = parser.parse_args(["figure", panel])
            assert args.panel == panel

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "2z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_requires_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "file.json"])


class TestDatasetCommand:
    def test_prints_summary_json(self, capsys):
        exit_code = main(
            ["dataset", "--users", "80", "--events", "60", "--groups", "8"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_users"] == 80.0
        assert "mean_overlap" in payload


class TestSolveCommand:
    @pytest.fixture
    def instance_file(self, tmp_path):
        instance = make_random_instance(seed=310)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        return path

    def test_solves_and_prints_schedule(self, instance_file, capsys):
        exit_code = main(["solve", str(instance_file), "-k", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "GRD" in output
        assert "->" in output

    def test_json_output_parses(self, instance_file, capsys):
        exit_code = main(["solve", str(instance_file), "-k", "2", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["assignments"]) == 2

    def test_alternative_solver(self, instance_file, capsys):
        exit_code = main(
            ["solve", str(instance_file), "-k", "2", "--solver", "rand"]
        )
        assert exit_code == 0
        assert "RAND" in capsys.readouterr().out


class TestSolversCommand:
    def test_lists_every_registered_solver(self, capsys):
        from repro.api import solver_registry

        assert main(["solvers"]) == 0
        output = capsys.readouterr().out
        for name in solver_registry.names():
            assert name in output

    def test_prints_kind_column(self, capsys):
        assert main(["solvers"]) == 0
        output = capsys.readouterr().out
        for kind in ("batch", "refiner", "online"):
            assert kind in output

    def test_kind_filter_online(self, capsys):
        assert main(["solvers", "--kind", "online"]) == 0
        output = capsys.readouterr().out
        assert "incremental" in output
        assert "grd " not in output  # batch solvers filtered out

    def test_kind_filter_batch_excludes_online(self, capsys):
        assert main(["solvers", "--kind", "batch"]) == 0
        output = capsys.readouterr().out
        assert "grd" in output
        assert "incremental" not in output

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solvers", "--kind", "mystery"])


class TestStreamCommand:
    _SMALL = ["--ops", "6", "--users", "60", "-k", "4", "--seed", "3"]

    def test_replays_all_policies_by_default(self, capsys):
        assert main(["stream", *self._SMALL]) == 0
        output = capsys.readouterr().out
        for policy in ("incremental", "periodic-rebuild", "hybrid"):
            assert policy in output
        assert "mean-op" in output

    def test_single_policy_selection(self, capsys):
        assert main(["stream", *self._SMALL, "--policy", "incremental"]) == 0
        output = capsys.readouterr().out
        assert "incremental" in output
        assert "periodic-rebuild" not in output

    def test_save_and_replay_trace(self, tmp_path, capsys):
        import re

        def utilities(text):
            return re.findall(r"final-utility=\S+", text)

        path = tmp_path / "trace.jsonl"
        assert main(["stream", *self._SMALL, "--save-trace", str(path)]) == 0
        assert path.exists()
        first = capsys.readouterr().out
        assert main(["stream", *self._SMALL, "--trace", str(path)]) == 0
        # replaying the saved trace reproduces the generated outcomes
        # exactly (only wall-clock latencies may differ between runs)
        replayed = utilities(capsys.readouterr().out)
        assert replayed and replayed == utilities(first)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--policy", "eager"])


class TestDemoCommand:
    def test_demo_runs_and_compares_methods(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        for method in ("GRD", "TOP", "RAND", "SA"):
            assert method in output


class TestFigureCommand:
    def test_quick_figure_1a(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        exit_code = main(
            [
                "figure", "1a", "--quick", "--users", "60",
                "--seed", "1", "--csv", str(csv_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fig 1a" in output
        assert "GRD" in output
        assert csv_path.exists()

    def test_quick_figure_1b(self, capsys):
        exit_code = main(["figure", "1b", "--quick", "--users", "50"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fig 1b" in output
        assert "ms" in output  # time axis rendering

    def test_quick_figure_1c(self, capsys):
        exit_code = main(["figure", "1c", "--quick", "--users", "50"])
        assert exit_code == 0
        assert "Fig 1c" in capsys.readouterr().out

    def test_quick_figure_1d(self, capsys):
        exit_code = main(["figure", "1d", "--quick", "--users", "50"])
        assert exit_code == 0
        assert "Fig 1d" in capsys.readouterr().out

    def test_solve_report_mode(self, tmp_path, capsys):
        from repro.data.serialization import save_instance

        from tests.conftest import make_random_instance

        instance = make_random_instance(seed=311)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        exit_code = main(["solve", str(path), "-k", "3", "--report"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "attend" in output
        assert "interval" in output


class TestExplainLocks:
    @pytest.fixture
    def instance_file(self, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(make_random_instance(seed=312), path)
        return path

    def test_feasible_locks_exit_zero(self, instance_file, capsys):
        exit_code = main(
            ["gaps", str(instance_file), "-k", "3", "--pin", "0:0",
             "--explain-locks"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "verdict: feasible" in output
        assert "gap report" not in output  # no solve happened

    def test_infeasible_locks_exit_nonzero(self, instance_file, capsys):
        exit_code = main(
            ["gaps", str(instance_file), "-k", "3", "--pin", "99:0",
             "--explain-locks"]
        )
        assert exit_code == 1
        assert "out-of-range" in capsys.readouterr().out

    def test_no_locks_is_trivially_feasible(self, instance_file, capsys):
        exit_code = main(
            ["gaps", str(instance_file), "-k", "3", "--explain-locks"]
        )
        assert exit_code == 0
        assert "verdict: feasible" in capsys.readouterr().out
