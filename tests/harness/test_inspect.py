"""Tests of the schedule inspection report."""

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule
from repro.harness.inspect import ScheduleReport

from tests.conftest import make_random_instance


@pytest.fixture
def solved():
    instance = make_random_instance(seed=500, n_events=6, n_intervals=3)
    result = GreedyScheduler().solve(instance, 4)
    return instance, result.schedule, result.utility


class TestScheduleReport:
    def test_total_utility_matches_objective(self, solved):
        instance, schedule, utility = solved
        report = ScheduleReport(instance, schedule)
        assert report.total_utility == pytest.approx(utility, abs=1e-9)

    def test_one_event_report_per_assignment(self, solved):
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        assert len(report.events) == len(schedule)
        assert {r.event for r in report.events} == schedule.scheduled_events()

    def test_one_interval_report_per_used_interval(self, solved):
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        assert {r.interval for r in report.intervals} == schedule.used_intervals()

    def test_event_attendance_matches_expected_attendance(self, solved):
        from repro.core.attendance import expected_attendance

        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        for event_report in report.events:
            assert event_report.expected_attendance == pytest.approx(
                expected_attendance(instance, schedule, event_report.event),
                abs=1e-9,
            )

    def test_solo_attendance_dominates_shared(self, solved):
        """An event never does better with siblings than alone."""
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        for event_report in report.events:
            assert (
                event_report.solo_attendance
                >= event_report.expected_attendance - 1e-9
            )
            assert event_report.cannibalization >= 0.0

    def test_lone_event_has_zero_cannibalization(self):
        instance = make_random_instance(seed=501)
        schedule = Schedule(instance, [Assignment(0, 0)])
        report = ScheduleReport(instance, schedule)
        assert report.events[0].cannibalization == pytest.approx(0.0, abs=1e-12)

    def test_interval_resources_and_utilization(self, solved):
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        for interval_report in report.intervals:
            expected_load = sum(
                instance.events[e].required_resources
                for e in schedule.events_at(interval_report.interval)
            )
            assert interval_report.resources_used == pytest.approx(expected_load)
            assert 0.0 <= interval_report.utilization <= 1.0 + 1e-9

    def test_interval_utility_sums_to_total(self, solved):
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        assert sum(r.utility for r in report.intervals) == pytest.approx(
            total_utility(instance, schedule), abs=1e-9
        )

    def test_competing_counts(self, solved):
        instance, schedule, _ = solved
        report = ScheduleReport(instance, schedule)
        for interval_report in report.intervals:
            assert interval_report.n_competing == len(
                instance.competing_by_interval[interval_report.interval]
            )

    def test_format_contains_headline_numbers(self, solved):
        instance, schedule, utility = solved
        text = ScheduleReport(instance, schedule).format()
        assert f"{utility:.2f}" in text
        assert "interval" in text
        assert "attend" in text

    def test_empty_schedule(self):
        instance = make_random_instance(seed=502)
        report = ScheduleReport(instance, Schedule(instance))
        assert report.total_utility == 0.0
        assert report.events == ()
        assert report.total_cannibalization() == 0.0
