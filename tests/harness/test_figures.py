"""Tests of the one-call figure generation module."""

import pytest

from repro.harness.figures import (
    FIGURE_SPECS,
    figure_value_axis,
    generate_figure,
)


class TestSpecs:
    def test_all_four_panels_defined(self):
        assert set(FIGURE_SPECS) == {"1a", "1b", "1c", "1d"}

    def test_value_axis(self):
        assert figure_value_axis("1a") == "utility"
        assert figure_value_axis("1b") == "time"
        assert figure_value_axis("1c") == "utility"
        assert figure_value_axis("1d") == "time"

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError, match="unknown panel"):
            figure_value_axis("9z")
        with pytest.raises(ValueError, match="unknown panel"):
            generate_figure("9z")


class TestGeneration:
    @pytest.fixture(scope="class")
    def quick_1a(self):
        return generate_figure("1a", n_users=60, seed=1, quick=True)

    def test_quick_k_panel_grid(self, quick_1a):
        assert quick_1a.x_values() == (20.0, 40.0, 60.0)
        assert set(quick_1a.methods()) == {"GRD", "TOP", "RAND"}

    def test_title_carried(self, quick_1a):
        assert "Fig 1a" in quick_1a.title

    def test_quick_interval_panel_grid(self):
        table = generate_figure("1c", n_users=60, seed=1, quick=True)
        # quick mode: k=20 with factors 0.5/1.5/3.0 -> |T| in {10, 30, 60}
        assert table.x_values() == (10.0, 30.0, 60.0)

    def test_progress_callback(self):
        lines = []
        generate_figure("1d", n_users=50, seed=0, quick=True,
                        progress=lines.append)
        assert len(lines) == 3

    def test_reproducible(self):
        a = generate_figure("1a", n_users=50, seed=5, quick=True)
        b = generate_figure("1a", n_users=50, seed=5, quick=True)
        assert [(r.method, r.utility) for r in a.rows] == [
            (r.method, r.utility) for r in b.rows
        ]

    def test_grd_wins_even_in_quick_mode(self, quick_1a):
        for x in quick_1a.x_values():
            assert quick_1a.winner_at(x) == "GRD"
