"""Tests of the repeated-trials statistics harness."""

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.harness.trials import TrialStats, run_trials
from repro.workloads.config import ExperimentConfig


class TestTrialStats:
    def test_mean_and_std(self):
        stats = TrialStats(
            method="X", utilities=(10.0, 12.0, 14.0), runtimes=(0.1, 0.1, 0.1)
        )
        assert stats.mean_utility == pytest.approx(12.0)
        assert stats.std_utility == pytest.approx(2.0)
        assert stats.n_trials == 3

    def test_single_trial_has_zero_spread(self):
        stats = TrialStats(method="X", utilities=(5.0,), runtimes=(0.1,))
        assert stats.std_utility == 0.0
        assert stats.confidence_halfwidth() == 0.0

    def test_confidence_halfwidth_shrinks_with_trials(self):
        narrow = TrialStats(
            method="X", utilities=(10.0, 12.0) * 8, runtimes=(0.1,) * 16
        )
        wide = TrialStats(
            method="X", utilities=(10.0, 12.0), runtimes=(0.1, 0.1)
        )
        assert narrow.confidence_halfwidth() < wide.confidence_halfwidth()

    def test_summary_mentions_method_and_mean(self):
        stats = TrialStats(method="GRD", utilities=(10.0,), runtimes=(0.2,))
        text = stats.summary()
        assert "GRD" in text
        assert "10.00" in text


class TestRunTrials:
    @pytest.fixture(scope="class")
    def trial_results(self):
        config = ExperimentConfig(k=6, n_users=60)
        return run_trials(
            config,
            method_factory=lambda seed: {
                "GRD": GreedyScheduler(),
                "RAND": RandomScheduler(seed=seed),
            },
            n_trials=4,
            root_seed=3,
        )

    def test_one_stats_per_method(self, trial_results):
        assert set(trial_results) == {"GRD", "RAND"}

    def test_each_method_has_all_trials(self, trial_results):
        assert all(s.n_trials == 4 for s in trial_results.values())

    def test_grd_beats_rand_on_average(self, trial_results):
        assert (
            trial_results["GRD"].mean_utility
            > trial_results["RAND"].mean_utility
        )

    def test_utilities_vary_across_draws(self, trial_results):
        """Different trial seeds must yield genuinely different instances."""
        assert trial_results["GRD"].std_utility > 0.0

    def test_reproducible_given_root_seed(self):
        config = ExperimentConfig(k=5, n_users=50)
        factory = lambda seed: {"GRD": GreedyScheduler()}  # noqa: E731
        a = run_trials(config, factory, n_trials=2, root_seed=9)
        b = run_trials(config, factory, n_trials=2, root_seed=9)
        assert a["GRD"].utilities == b["GRD"].utilities

    def test_bad_trial_count_rejected(self):
        with pytest.raises(ValueError, match="n_trials"):
            run_trials(
                ExperimentConfig(k=5, n_users=50),
                lambda seed: {"GRD": GreedyScheduler()},
                n_trials=0,
            )
