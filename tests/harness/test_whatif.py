"""Tests of the what-if capacity analysis."""

import pytest

from repro.harness.whatif import (
    WhatIfCurve,
    competition_cost,
    sweep_locations,
    sweep_theta,
)

from tests.conftest import make_random_instance


@pytest.fixture
def instance():
    return make_random_instance(
        seed=510, n_users=15, n_events=8, n_intervals=3,
        n_locations=4, theta=6.0, xi_range=(1.0, 3.0),
    )


class TestWhatIfCurve:
    def test_marginal_differences(self):
        curve = WhatIfCurve(
            knob="theta", values=(1.0, 2.0, 3.0), utilities=(10.0, 14.0, 15.0)
        )
        assert curve.marginal() == (4.0, 1.0)

    def test_best_point(self):
        curve = WhatIfCurve(
            knob="x", values=(1.0, 2.0, 3.0), utilities=(5.0, 9.0, 7.0)
        )
        assert curve.best() == (2.0, 9.0)


class TestSweepTheta:
    def test_more_staff_never_hurts(self, instance):
        curve = sweep_theta(instance, k=5, thetas=(3.0, 6.0, 12.0, 50.0))
        assert all(
            a <= b + 1e-9
            for a, b in zip(curve.utilities, curve.utilities[1:])
        )

    def test_theta_below_max_xi_rejected(self, instance):
        with pytest.raises(ValueError, match="below the largest"):
            sweep_theta(instance, k=5, thetas=(0.5,))

    def test_empty_grid_rejected(self, instance):
        with pytest.raises(ValueError, match="non-empty"):
            sweep_theta(instance, k=5, thetas=())

    def test_curve_shape(self, instance):
        curve = sweep_theta(instance, k=5, thetas=(4.0, 8.0))
        assert curve.knob == "theta"
        assert curve.values == (4.0, 8.0)
        assert len(curve.utilities) == 2


class TestSweepLocations:
    def test_more_venues_never_hurt(self, instance):
        curve = sweep_locations(instance, k=5, location_counts=(1, 2, 4))
        assert all(
            a <= b + 1e-9
            for a, b in zip(curve.utilities, curve.utilities[1:])
        )

    def test_single_venue_forces_spreading(self, instance):
        """With one venue, at most one event per interval is possible."""
        from repro.algorithms.greedy import GreedyScheduler
        from repro.harness.whatif import _with_locations

        folded = _with_locations(instance, 1)
        result = GreedyScheduler().solve(folded, 5)
        for interval in result.schedule.used_intervals():
            assert len(result.schedule.events_at(interval)) == 1

    def test_bad_counts_rejected(self, instance):
        with pytest.raises(ValueError, match="positive"):
            sweep_locations(instance, k=5, location_counts=(0,))
        with pytest.raises(ValueError, match="non-empty"):
            sweep_locations(instance, k=5, location_counts=())


class TestCompetitionCost:
    def test_removing_a_rival_never_hurts(self, instance):
        for rival in range(instance.n_competing):
            assert competition_cost(instance, k=5, competing_index=rival) >= -1e-9

    def test_unknown_rival_rejected(self, instance):
        with pytest.raises(IndexError, match="out of range"):
            competition_cost(instance, k=5, competing_index=99)

    def test_popular_rival_costs_more_than_ignored_one(self):
        """A rival everyone loves must cost at least as much as one nobody knows."""
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            CompetingEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            TimeInterval,
            User,
        )

        n_users = 10
        users = [User(index=i) for i in range(n_users)]
        intervals = [TimeInterval(index=0)]
        events = [
            CandidateEvent(index=0, location=0, required_resources=1.0),
            CandidateEvent(index=1, location=1, required_resources=1.0),
        ]
        competing = [
            CompetingEvent(index=0, interval=0, name="superstar-rival"),
            CompetingEvent(index=1, interval=0, name="unknown-rival"),
        ]
        rng = np.random.default_rng(0)
        interest = InterestMatrix.from_arrays(
            rng.uniform(0.3, 0.9, (n_users, 2)),
            np.column_stack([np.full(n_users, 0.95), np.zeros(n_users)]),
        )
        instance = SESInstance(
            users, intervals, events, competing, interest,
            ActivityModel.constant(n_users, 1, 0.8), Organizer(resources=10.0),
        )
        star_cost = competition_cost(instance, k=2, competing_index=0)
        unknown_cost = competition_cost(instance, k=2, competing_index=1)
        assert star_cost > unknown_cost
        assert unknown_cost == pytest.approx(0.0, abs=1e-9)
