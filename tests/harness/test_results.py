"""Tests of sweep result tables."""

import pytest

from repro.harness.results import SweepRow, SweepTable


def _row(x, method, utility, time=0.1):
    return SweepRow(
        x=x, method=method, utility=utility, runtime_seconds=time,
        achieved_k=int(x), requested_k=int(x),
    )


@pytest.fixture
def table():
    table = SweepTable(x_label="k", title="demo sweep")
    table.add(_row(10, "GRD", 100.0, 0.5))
    table.add(_row(10, "TOP", 60.0, 0.3))
    table.add(_row(20, "GRD", 180.0, 1.0))
    table.add(_row(20, "TOP", 90.0, 0.6))
    return table


class TestAccessors:
    def test_methods_in_first_appearance_order(self, table):
        assert table.methods() == ("GRD", "TOP")

    def test_x_values_sorted(self, table):
        assert table.x_values() == (10.0, 20.0)

    def test_series_utility(self, table):
        xs, ys = table.series("GRD")
        assert xs == [10.0, 20.0]
        assert ys == [100.0, 180.0]

    def test_series_time(self, table):
        xs, ys = table.series("TOP", value="time")
        assert ys == [0.3, 0.6]

    def test_series_unknown_method(self, table):
        with pytest.raises(KeyError, match="RAND"):
            table.series("RAND")

    def test_series_bad_value(self, table):
        with pytest.raises(ValueError, match="utility"):
            table.series("GRD", value="memory")

    def test_winner_at(self, table):
        assert table.winner_at(10) == "GRD"
        assert table.winner_at(10, value="time") == "TOP"

    def test_winner_at_unknown_x(self, table):
        with pytest.raises(KeyError):
            table.winner_at(99)


class TestRendering:
    def test_markdown_contains_all_cells(self, table):
        text = table.to_markdown()
        assert "| k | GRD | TOP |" in text
        assert "100.00" in text
        assert "90.00" in text

    def test_markdown_time_mode(self, table):
        text = table.to_markdown(value="time")
        assert "500.0ms" in text

    def test_markdown_missing_cell_dash(self):
        table = SweepTable(x_label="k")
        table.add(_row(10, "GRD", 1.0))
        table.add(_row(20, "TOP", 2.0))
        assert "—" in table.to_markdown()

    def test_csv_round_trip(self, table, tmp_path):
        import csv

        path = tmp_path / "rows.csv"
        table.to_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["method"] == "GRD"
        assert float(rows[0]["utility"]) == 100.0
