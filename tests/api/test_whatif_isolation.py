"""What-if sweeps never read planes cached for the unmodified instance.

``ScheduleSession.plane_for`` caches warm :class:`ScorePlane` matrices
keyed to the *session's* instance; ``what_if_theta`` /
``what_if_locations`` solve *modified copies* of that instance.  If a
what-if solve ever warm-started from the session's cached plane, its
scores would belong to the wrong theta / location layout and the curve
would silently lie.  These regression tests lock in the isolation on
both interest backends: sweeps computed through a warm, heavily-cached
session are bit-identical to sweeps computed cold on a fresh solver,
and running them leaves the session's cached planes untouched.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import solver_registry
from repro.api import ScheduleSession, SolveRequest
from repro.harness import whatif

from tests.conftest import make_random_instance

BACKENDS = ("dense", "sparse")
K = 3
THETAS = (8.0, 10.0, 14.0)
LOCATION_COUNTS = (1, 2, 3)


def build_case(backend: str):
    if backend == "sparse":
        pytest.importorskip("scipy")
    instance = make_random_instance(seed=606, interest_backend=backend)
    engine = "sparse" if backend == "sparse" else "vectorized"
    return instance, engine


def warm_session(instance, engine):
    """A session whose plane cache is hot and whose engines are reused."""
    session = ScheduleSession(instance, default_engine=engine)
    session.solve(SolveRequest(k=K, solver="grd"))
    session.solve(SolveRequest(k=K + 1, solver="top"))
    assert session.plane_for(None).cells_filled > 0
    return session


class TestWhatIfIsolation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_theta_sweep_matches_cold_computation(self, backend):
        instance, engine = build_case(backend)
        session = warm_session(instance, engine)
        warm = session.what_if_theta(K, THETAS)
        cold = whatif.sweep_theta(
            instance, K, THETAS, solver=solver_registry.create("grd", engine=engine)
        )
        assert warm.utilities == cold.utilities

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_location_sweep_matches_cold_computation(self, backend):
        instance, engine = build_case(backend)
        session = warm_session(instance, engine)
        warm = session.what_if_locations(K, LOCATION_COUNTS)
        cold = whatif.sweep_locations(
            instance,
            K,
            LOCATION_COUNTS,
            solver=solver_registry.create("grd", engine=engine),
        )
        assert warm.utilities == cold.utilities

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sweeps_leave_cached_planes_untouched(self, backend):
        """The dual hazard: a what-if must neither read the session plane
        nor write modified-instance scores back into it."""
        instance, engine = build_case(backend)
        session = warm_session(instance, engine)
        plane = session.plane_for(None)
        before = (plane.cells_filled, plane.cells_refreshed)
        matrix_before = plane.ensure().copy()

        session.what_if_theta(K, THETAS)
        session.what_if_locations(K, LOCATION_COUNTS)
        session.competition_cost(K, 0)

        assert (plane.cells_filled, plane.cells_refreshed) == before
        assert (plane.ensure() == matrix_before).all()

    def test_interleaved_whatifs_do_not_perturb_later_solves(self):
        """Solve, sweep, solve again: the second solve must be bit-identical
        to the first (same request, same cached plane)."""
        instance, engine = build_case("dense")
        session = ScheduleSession(instance, default_engine=engine)
        request = SolveRequest(k=K, solver="grd")
        first = session.solve(request)
        session.what_if_theta(K, THETAS)
        session.what_if_locations(K, LOCATION_COUNTS)
        second = session.solve(request)
        assert second.schedule == first.schedule
        assert second.utility == first.utility
