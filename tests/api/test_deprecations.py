"""Back-compat shims: old stringly-typed entry points still work, but warn."""

import pytest

from repro.algorithms import (
    GreedyScheduler,
    IncrementalScheduler,
    LocalSearchRefiner,
    RandomScheduler,
)
from repro.algorithms.base import SolverStats
from repro.api import EngineSpec
from repro.core.engine import ReferenceEngine, VectorizedEngine, make_engine
from repro.harness.runner import paper_methods

from tests.conftest import make_random_instance


class TestMakeEngineShim:
    def test_string_kind_warns_but_works(self):
        instance = make_random_instance(seed=500)
        with pytest.deprecated_call():
            engine = make_engine(instance, "vectorized")
        assert isinstance(engine, VectorizedEngine)

    def test_spec_does_not_warn(self, recwarn):
        instance = make_random_instance(seed=500)
        engine = make_engine(instance, EngineSpec("reference"))
        assert isinstance(engine, ReferenceEngine)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_default_does_not_warn(self, recwarn):
        instance = make_random_instance(seed=500)
        assert isinstance(make_engine(instance), VectorizedEngine)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestSchedulerShim:
    def test_engine_kind_keyword_warns_but_works(self):
        with pytest.deprecated_call():
            solver = GreedyScheduler(engine_kind="reference")
        assert solver.engine_kind == "reference"
        assert solver.engine_spec == EngineSpec("reference")

    def test_old_and_new_solves_agree(self):
        instance = make_random_instance(seed=501)
        with pytest.deprecated_call():
            old = GreedyScheduler(engine_kind="reference").solve(instance, 3)
        new = GreedyScheduler(engine=EngineSpec("reference")).solve(instance, 3)
        assert old.utility == new.utility
        assert old.schedule == new.schedule

    def test_both_arguments_rejected(self):
        with pytest.raises(TypeError, match="not both"), pytest.deprecated_call():
            GreedyScheduler(engine=EngineSpec(), engine_kind="sparse")

    def test_subclass_keyword_warns(self):
        with pytest.deprecated_call():
            RandomScheduler(engine_kind="vectorized", seed=1)
        with pytest.deprecated_call():
            LocalSearchRefiner(engine_kind="vectorized")

    def test_warning_attributed_to_caller_not_library(self):
        """The shim walks out of repro.* frames, so the warning lands on
        the user's line even through subclass __init__ chains — otherwise
        Python's default filter would silently drop it in scripts."""
        import warnings

        from repro.algorithms import AnnealingScheduler

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            AnnealingScheduler(engine_kind="reference", seed=0)
        assert len(caught) == 1
        assert caught[0].filename == __file__

    def test_incremental_keyword_warns(self):
        instance = make_random_instance(seed=502)
        with pytest.deprecated_call():
            live = IncrementalScheduler(instance, k=2, engine_kind="vectorized")
        assert len(live.schedule) == 2

    def test_plain_construction_does_not_warn(self, recwarn):
        GreedyScheduler()
        RandomScheduler(seed=1)
        GreedyScheduler(engine="sparse")
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_injected_engine_must_match_instance(self):
        a = make_random_instance(seed=503)
        b = make_random_instance(seed=504)
        engine = EngineSpec().build(b)
        with pytest.raises(ValueError, match="different instance"):
            GreedyScheduler().solve(a, 2, engine=engine)


class TestPaperMethodsShim:
    def test_engine_kind_keyword_warns(self):
        with pytest.deprecated_call():
            methods = paper_methods(seed=0, engine_kind="reference")
        assert all(m.engine_kind == "reference" for m in methods.values())


class TestSolverStatsFields:
    def test_as_dict_mirrors_every_dataclass_field(self):
        """as_dict derives from dataclasses.fields — a newly added counter
        can no longer silently drop from benchmark output."""
        import dataclasses

        stats = SolverStats(initial_scores=1, moves_accepted=2)
        payload = stats.as_dict()
        assert set(payload) == {
            f.name for f in dataclasses.fields(SolverStats)
        }
        assert payload["initial_scores"] == 1
        assert payload["moves_accepted"] == 2
