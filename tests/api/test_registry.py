"""Registry completeness and capability-aware construction."""

import pkgutil

import pytest

import repro.algorithms
from repro.algorithms import (
    AnnealingScheduler,
    GreedyScheduler,
    IncrementalScheduler,
    LocalSearchRefiner,
    RandomScheduler,
)
from repro.api import EngineSpec, SolverRegistry, register_solver, solver_registry
from repro.harness.cli import build_parser

from tests.conftest import make_random_instance

#: modules in repro.algorithms that are infrastructure, not solvers
_NON_SOLVER_MODULES = {"base", "registry"}


class TestCompleteness:
    def test_every_solver_module_registers(self):
        """Each algorithm module must contribute at least one registry entry
        — a new solver file that forgets the decorator fails here."""
        modules = {
            module.name
            for module in pkgutil.iter_modules(repro.algorithms.__path__)
            if module.name not in _NON_SOLVER_MODULES
        }
        registered = {info.module.rsplit(".", 1)[-1] for info in solver_registry}
        missing = modules - registered
        assert not missing, f"unregistered solver modules: {sorted(missing)}"

    def test_all_ten_solvers_present(self):
        assert set(solver_registry.names()) == {
            "beam",
            "exact",
            "grasp",
            "grd",
            "grd-heap",
            "incremental",
            "ls",
            "rand",
            "sa",
            "top",
        }

    def test_one_shot_excludes_refiner_and_online(self):
        one_shot = set(solver_registry.one_shot_names())
        assert "ls" not in one_shot
        assert "incremental" not in one_shot
        assert {"grd", "grd-heap", "top", "rand", "sa", "beam", "grasp", "exact"} <= (
            one_shot
        )

    def test_cli_choices_derive_from_registry(self):
        """Every one-shot registry name is a valid --solver choice."""
        parser = build_parser()
        for name in solver_registry.one_shot_names():
            args = parser.parse_args(["solve", "f.json", "-k", "1", "--solver", name])
            assert args.solver == name

    def test_capability_flags(self):
        assert solver_registry.get("rand").seeded
        assert not solver_registry.get("grd").seeded
        assert solver_registry.get("ls").kind == "refiner"
        assert solver_registry.get("incremental").kind == "online"
        assert solver_registry.get("sa").anytime
        assert not solver_registry.get("ls").strict_capable


class TestLookup:
    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown solver"):
            solver_registry.get("quantum")

    def test_contains_and_len(self):
        assert "grd" in solver_registry
        assert "quantum" not in solver_registry
        assert len(solver_registry) == 10

    def test_duplicate_name_rejected(self):
        registry = SolverRegistry()

        @register_solver(name="dup", registry=registry)
        class First:
            name = "DUP"

        with pytest.raises(ValueError, match="already registered"):

            @register_solver(name="dup", registry=registry)
            class Second:
                name = "DUP2"


class TestCreate:
    def test_creates_correct_class_with_engine(self):
        solver = solver_registry.create("grd", engine=EngineSpec("reference"))
        assert isinstance(solver, GreedyScheduler)
        assert solver.engine_spec == EngineSpec("reference")

    def test_seed_applied_to_seeded_solver(self):
        a = solver_registry.create("rand", seed=5)
        b = solver_registry.create("rand", seed=5)
        assert isinstance(a, RandomScheduler)
        instance = make_random_instance(seed=9)
        assert a.solve(instance, 3).schedule == b.solve(instance, 3).schedule

    def test_seed_rejected_for_deterministic_solver(self):
        with pytest.raises(ValueError, match="deterministic"):
            solver_registry.create("grd", seed=1)

    def test_default_params_overridable(self):
        solver = solver_registry.create("sa", seed=1, steps=7)
        assert solver._steps == 7

    def test_refiner_constructible(self):
        refiner = solver_registry.create("ls", seed=2, max_rounds=3)
        assert isinstance(refiner, LocalSearchRefiner)

    def test_online_solver_not_creatable(self):
        with pytest.raises(ValueError, match="online maintainer"):
            solver_registry.create("incremental")
        # ... but direct construction with the new typed argument works
        instance = make_random_instance(seed=10)
        live = IncrementalScheduler(instance, k=2, engine=EngineSpec())
        assert len(live.schedule) == 2

    def test_strict_rejected_when_not_capable(self):
        with pytest.raises(ValueError, match="strict"):
            solver_registry.create("ls", strict=True)

    def test_strict_forwarded(self):
        solver = solver_registry.create("sa", strict=True, seed=0)
        assert isinstance(solver, AnnealingScheduler)
        assert solver._strict
