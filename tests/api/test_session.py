"""ScheduleSession: request/response contract, engine caching, parity.

The load-bearing property is *session-reuse parity*: N requests served
through one session (sharing a cached, reset-between-requests engine)
must be bit-identical to N independent one-shot solves.  If reset() ever
leaked state between requests, serving would silently corrupt results —
so the parity tests cover deterministic and seeded solvers, multiple
engine specs and interleaved ks.
"""

import pytest

import repro.core.engine as engine_module
from repro.api import (
    EngineSpec,
    ScheduleSession,
    SolveRequest,
    SolveResponse,
    solve_once,
    solver_registry,
)
from repro.core.engine import SparseEngine, VectorizedEngine

from tests.conftest import make_random_instance


@pytest.fixture
def instance():
    return make_random_instance(seed=400)


class TestRequest:
    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SolveRequest(k=-1)

    def test_engine_string_coerced_to_spec(self):
        request = SolveRequest(k=2, engine="sparse")
        assert request.engine == EngineSpec("sparse")

    def test_params_snapshot_at_construction(self):
        knobs = {"steps": 100}
        request = SolveRequest(k=2, solver="sa", seed=1, params=knobs)
        knobs["steps"] = 999
        assert request.params["steps"] == 100

    def test_replace(self):
        request = SolveRequest(k=2)
        assert request.replace(k=5).k == 5
        assert request.k == 2


class TestSessionServing:
    def test_three_requests_parity_with_one_engine_build(self, instance):
        """The acceptance criterion: 3 different (solver, k) requests over
        one session match 3 independent one-shot solves bit-for-bit while
        the engine spec is constructed exactly once."""
        session = ScheduleSession(instance)
        requests = [
            SolveRequest(k=2, solver="grd"),
            SolveRequest(k=3, solver="top"),
            SolveRequest(k=4, solver="grd-heap"),
        ]
        responses = session.solve_many(requests)

        for request, response in zip(requests, responses):
            one_shot = solver_registry.create(request.solver).solve(
                instance, request.k
            )
            assert response.utility == one_shot.utility
            assert response.schedule == one_shot.schedule

        assert session.engines_built == 1
        assert session.requests_served == 3
        assert [r.reused_engine for r in responses] == [False, True, True]

    def test_engine_constructions_counted_at_the_source(self, instance, monkeypatch):
        """Belt and braces: count actual engine-class constructions, not
        just the session's own bookkeeping."""
        built = []
        original = EngineSpec.build

        def counting_build(self, inst):
            built.append(self)
            return original(self, inst)

        monkeypatch.setattr(engine_module.EngineSpec, "build", counting_build)
        session = ScheduleSession(instance)
        for k in (2, 3, 4):
            session.solve(k=k, solver="grd")
        assert built == [EngineSpec()]

    def test_seeded_solver_parity(self, instance):
        session = ScheduleSession(instance)
        served = session.solve(k=3, solver="rand", seed=11)
        one_shot = solver_registry.create("rand", seed=11).solve(instance, 3)
        assert served.schedule == one_shot.schedule
        assert served.utility == one_shot.utility

    def test_sa_parity_through_session(self, instance):
        request = SolveRequest(k=3, solver="sa", seed=5, params={"steps": 60})
        served = ScheduleSession(instance).solve(request)
        one_shot = solver_registry.create("sa", seed=5, steps=60).solve(instance, 3)
        assert served.utility == one_shot.utility
        assert served.schedule == one_shot.schedule

    def test_distinct_specs_get_distinct_engines(self, instance):
        session = ScheduleSession(instance)
        session.solve(k=2, engine="vectorized")
        session.solve(k=2, engine="reference")
        session.solve(k=2, engine="vectorized")
        assert session.engines_built == 2

    def test_repeated_identical_requests_are_identical(self, instance):
        session = ScheduleSession(instance)
        first = session.solve(k=3, solver="grd")
        second = session.solve(k=3, solver="grd")
        assert first.utility == second.utility
        assert first.schedule == second.schedule

    def test_default_engine_used_and_overridable(self, instance):
        session = ScheduleSession(instance, default_engine="sparse")
        assert isinstance(session.engine_for(), SparseEngine)
        assert isinstance(session.engine_for(EngineSpec()), VectorizedEngine)

    def test_request_and_kwargs_are_exclusive(self, instance):
        session = ScheduleSession(instance)
        with pytest.raises(TypeError, match="not both"):
            session.solve(SolveRequest(k=2), k=3)

    def test_unknown_solver_rejected(self, instance):
        with pytest.raises(ValueError, match="unknown solver"):
            ScheduleSession(instance).solve(k=2, solver="quantum")

    def test_non_one_shot_solver_rejected_clearly(self, instance):
        session = ScheduleSession(instance)
        with pytest.raises(ValueError, match="refiner"):
            session.solve(k=2, solver="ls")
        with pytest.raises(ValueError, match="online"):
            session.solve(k=2, solver="incremental")

    def test_backend_only_spec_variants_are_isolated(self, instance):
        """Two specs differing only in backend must not share an engine
        (or the warm plane wrapping it): the cache key is the full spec,
        so no spec can ever observe another spec's plane state."""
        session = ScheduleSession(instance, default_engine=EngineSpec("sparse"))
        first = session.solve(k=2)
        variant_spec = EngineSpec(kind="sparse", backend="sparse")
        second = session.solve(k=2, engine=variant_spec)
        assert session.engines_built == 2
        assert not second.reused_engine
        assert session.engine_for() is not session.engine_for(variant_spec)
        assert session.plane_for() is not session.plane_for(variant_spec)
        # isolation never costs parity: both serve identical results
        assert first.utility == second.utility
        assert first.schedule == second.schedule
        # and same-spec requests still hit the cache
        third = session.solve(k=2, engine=variant_spec)
        assert session.engines_built == 2
        assert third.reused_engine

    def test_response_carries_request_and_spec(self, instance):
        request = SolveRequest(k=2, label="baseline")
        response = ScheduleSession(instance).solve(request)
        assert isinstance(response, SolveResponse)
        assert response.request is request
        assert response.engine == EngineSpec()
        assert response.label == "baseline"
        assert "[baseline]" in response.summary()

    def test_solve_once_matches_session(self, instance):
        assert (
            solve_once(instance, k=3).utility
            == ScheduleSession(instance).solve(k=3).utility
        )


class TestSessionScorePlane:
    """The session's per-spec warm ScorePlane: filled once, reused, exact."""

    def test_plane_cached_per_spec_kind(self, instance):
        session = ScheduleSession(instance)
        plane = session.plane_for()
        assert session.plane_for() is plane
        assert session.plane_for(EngineSpec(kind="sparse")) is not plane
        # the plane wraps the session's cached engine, not a private one
        assert plane.engine is session.engine_for()

    def test_initial_sweep_paid_once_across_requests(self, instance):
        """GRD, TOP and heap-GRD all warm-start from the same plane: the
        full |T| x |E| initial sweep happens exactly once per spec."""
        session = ScheduleSession(instance)
        first = session.solve(k=3, solver="grd")
        cells = instance.n_intervals * instance.n_events
        assert first.result.stats.initial_scores == cells
        for solver in ("grd", "top", "grd-heap", "beam"):
            warm = session.solve(k=3, solver=solver)
            assert warm.result.stats.initial_scores == 0
        plane = session.plane_for()
        assert plane.fills == 1
        assert plane.cells_filled == cells
        assert plane.cells_refreshed == 0  # immutable instance: never dirty

    def test_warm_requests_stay_bit_identical(self, instance):
        """Parity must survive many interleaved warm solves."""
        session = ScheduleSession(instance)
        for k in (2, 4, 3, 5, 2):
            for solver in ("grd", "grd-heap", "top"):
                served = session.solve(k=k, solver=solver)
                one_shot = solver_registry.create(solver).solve(instance, k)
                assert served.schedule == one_shot.schedule
                assert served.utility == one_shot.utility


class TestSessionAnalysis:
    def test_report(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=3)
        text = session.report(response.schedule).format()
        assert "attend" in text

    def test_what_if_theta(self, instance):
        session = ScheduleSession(instance)
        theta = instance.organizer.resources
        curve = session.what_if_theta(2, [theta, theta + 5.0])
        assert len(curve.utilities) == 2
        assert curve.utilities[1] >= curve.utilities[0] - 1e-9

    def test_competition_cost_non_negative(self, instance):
        cost = ScheduleSession(instance).competition_cost(2, 0)
        assert cost >= -1e-9

    def test_from_config_aligns_backend(self):
        from repro.workloads.config import ExperimentConfig

        session = ScheduleSession.from_config(
            ExperimentConfig(k=4, n_users=40),
            root_seed=3,
            default_engine=EngineSpec(kind="sparse"),
        )
        assert session.instance.interest.backend == "sparse"
        response = session.solve(k=4)
        assert response.result.achieved_k <= 4

    def test_from_file_round_trip(self, instance, tmp_path):
        from repro.data.serialization import save_instance

        path = tmp_path / "instance.json"
        save_instance(instance, path)
        session = ScheduleSession.from_file(path)
        served = session.solve(k=3)
        direct = solve_once(instance, k=3)
        assert served.utility == pytest.approx(direct.utility, abs=1e-12)


class TestSessionStreaming:
    """session.stream(): the facade entry into the streaming subsystem."""

    def _trace(self, instance, n_ops=8, seed=5):
        from repro.workloads.config import ExperimentConfig
        from repro.workloads.traces import TraceConfig, TraceGenerator

        config = ExperimentConfig(
            k=3,
            n_users=instance.n_users,
            n_events=instance.n_events,
            n_intervals=instance.n_intervals,
        )
        return TraceGenerator(
            config, TraceConfig(n_ops=n_ops), root_seed=seed
        ).generate()

    def test_stream_matches_direct_driver(self, instance):
        from repro.stream import StreamDriver

        trace = self._trace(instance)
        session = ScheduleSession(instance)
        served = session.stream(trace, policy="incremental")
        direct = StreamDriver(instance, policy="incremental").run(trace)
        assert served.op_log == direct.op_log
        assert served.utilities == direct.utilities
        assert served.final_schedule == direct.final_schedule

    def test_stream_leaves_session_state_untouched(self, instance):
        trace = self._trace(instance)
        session = ScheduleSession(instance)
        before = session.solve(k=3)
        session.stream(trace)  # replays mutate only rebuilt copies
        assert session.instance is instance
        after = session.solve(k=3)
        assert after.utility == before.utility
        assert after.schedule.as_mapping() == before.schedule.as_mapping()

    def test_stream_counts_as_served_request(self, instance):
        session = ScheduleSession(instance)
        session.stream(self._trace(instance))
        assert session.requests_served == 1

    def test_stream_forwards_policy_params(self, instance):
        trace = self._trace(instance)
        session = ScheduleSession(instance)
        result = session.stream(
            trace, policy="periodic-rebuild", rebuild_every=4
        )
        assert "every=4" in result.policy

    def test_stream_uses_session_default_engine(self, instance):
        trace = self._trace(instance)
        session = ScheduleSession(instance, default_engine="sparse")
        result = session.stream(trace)
        assert result.engine == EngineSpec(kind="sparse")
