"""Gap reports: warm-plane gains, zero extra evaluations, status taxonomy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ScheduleSession, SolveRequest
from repro.core.engine import EngineSpec
from repro.core.scoreplane import ScorePlane
from repro.interactive import LockSet, build_gap_report
from repro.serve import ServingSession

from tests.conftest import make_random_instance


@pytest.fixture
def instance():
    return make_random_instance(seed=321)


class TestAcceptance:
    def test_gains_match_warm_plane_with_zero_extra_evaluations(self, instance):
        """The acceptance criterion: every reported gain equals the warm
        ScorePlane entry to 1e-9, and building the report fills or
        refreshes zero cells on a warm session."""
        session = ScheduleSession(instance)
        response = session.solve(SolveRequest(k=3, solver="grd"))

        plane = session.plane_for(None)
        spent_before = plane.cells_filled + plane.cells_refreshed
        matrix = np.array(plane.ensure(), copy=True)

        report = session.gap_report(response)

        assert report.cells_spent == 0
        assert plane.cells_filled + plane.cells_refreshed == spent_before
        scheduled = dict(report.schedule)
        assert len(report.gaps) == instance.n_events - len(scheduled)
        for gap in report.gaps:
            assert gap.event not in scheduled
            for cell in gap.cells:
                assert abs(cell.gain - matrix[cell.interval, gap.event]) < 1e-9

    def test_cold_plane_pays_once_then_reports_are_free(self, instance):
        plane = ScorePlane(EngineSpec().build(instance))
        cold = build_gap_report(instance, {}, 3, plane)
        assert cold.cells_spent == instance.n_events * instance.n_intervals
        warm = build_gap_report(instance, {}, 3, plane)
        assert warm.cells_spent == 0


class TestStatuses:
    def test_budget_room_means_open(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=2, solver="grd")
        # ask against a larger budget: every feasible cell is "open"
        report = session.gap_report(response.schedule, k=instance.n_events)
        assert not report.at_budget
        statuses = {c.status for g in report.gaps for c in g.cells}
        assert statuses <= {"open", "blocked"}
        assert "open" in statuses

    def test_at_budget_splits_displace_and_dominated(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=2, solver="rand", seed=9)
        report = session.gap_report(response)
        assert report.at_budget
        assert report.weakest is not None
        weakest_gain = report.weakest[2]
        for gap in report.gaps:
            for cell in gap.cells:
                if cell.status == "displace":
                    assert cell.gain > weakest_gain
                elif cell.status == "dominated":
                    assert cell.gain <= weakest_gain + 1e-9

    def test_forbidden_cells_labelled_and_never_fillable(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=2, solver="grd")
        free_event = next(
            e
            for e in range(instance.n_events)
            if e not in response.schedule.as_mapping()
        )
        locks = LockSet().forbid(0, free_event)
        report = session.gap_report(response.schedule, k=2, locks=locks)
        cell = next(
            c
            for c in report.gap_for(free_event).cells
            if c.interval == 0
        )
        assert cell.status == "forbidden"
        assert not cell.fillable

    def test_blocked_cells_carry_an_explanation(self):
        # 1 location + tight theta: conflicts genuinely bind
        instance = make_random_instance(seed=13, n_locations=1, theta=5.0)
        session = ScheduleSession(instance)
        response = session.solve(k=instance.n_events, solver="grd")
        report = session.gap_report(response)
        blocked = [
            c for g in report.gaps for c in g.cells if c.status == "blocked"
        ]
        assert blocked
        assert all(c.detail for c in blocked)


class TestShape:
    def test_limit_keeps_top_gaps_by_best_gain(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=2, solver="grd")
        full = session.gap_report(response)
        cut = session.gap_report(response, limit=2)
        assert [g.event for g in cut.gaps] == [g.event for g in full.gaps[:2]]
        gains = [g.best_gain for g in full.gaps]
        assert gains == sorted(gains, reverse=True)

    def test_gap_for_unknown_event_raises(self, instance):
        session = ScheduleSession(instance)
        report = session.gap_report(session.solve(k=2, solver="grd"))
        scheduled_event = report.schedule[0][0]
        with pytest.raises(KeyError, match="not among"):
            report.gap_for(scheduled_event)

    def test_bare_schedule_requires_k(self, instance):
        session = ScheduleSession(instance)
        response = session.solve(k=2, solver="grd")
        with pytest.raises(TypeError, match="k is required"):
            session.gap_report(response.schedule)

    def test_describe_smoke(self, instance):
        session = ScheduleSession(instance)
        report = session.gap_report(session.solve(k=2, solver="grd"))
        text = report.describe()
        assert "gap report:" in text
        assert f"2/2 placed" in text
        for gap in report.gaps:
            assert f"e{gap.event}" in text

    def test_validation(self, instance):
        plane = ScorePlane(EngineSpec().build(instance))
        with pytest.raises(ValueError, match="k must be non-negative"):
            build_gap_report(instance, {}, -1, plane)
        with pytest.raises(ValueError, match="limit must be non-negative"):
            build_gap_report(instance, {}, 2, plane, limit=-1)


class TestServing:
    def test_report_is_stamped_with_the_pool_generation(self, instance):
        session = ServingSession(instance)
        served = session.solve(k=2, solver="grd")
        report = session.gap_report(served)
        assert report.version == session.version
        # generation moves with a live mutation; reports must say so
        session.cancel_event(instance.n_events - 1)
        bumped = session.gap_report(
            {0: 0}, k=2
        )
        assert bumped.version == session.version > report.version

    def test_served_response_k_and_locks_are_reused(self, instance):
        session = ServingSession(instance)
        locks = LockSet().forbid(0, 0)
        served = session.solve(k=2, solver="grd", locks=locks)
        report = session.gap_report(served)
        assert report.k == 2
        mapping = dict(report.schedule)
        if 0 not in mapping:
            cell = next(
                c for c in report.gap_for(0).cells if c.interval == 0
            )
            assert cell.status == "forbidden"

    def test_gap_report_counts_as_served_request(self, instance):
        session = ServingSession(instance)
        served = session.solve(k=2, solver="grd")
        before = session.requests_served
        session.gap_report(served)
        assert session.requests_served == before + 1
