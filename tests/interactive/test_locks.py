"""LockSet: canonicalization, validation, renumbering, serialization."""

from __future__ import annotations

import pytest

from repro.core.errors import LockError
from repro.core.schedule import Assignment, Schedule
from repro.interactive import LockSet

from tests.conftest import make_random_instance


class TestConstruction:
    def test_pins_sorted_and_deduplicated(self):
        locks = LockSet(pins=((2, 5), (0, 1), (2, 5)))
        assert locks.pins == ((0, 1), (2, 5))

    def test_same_pin_twice_is_fine_but_conflicting_pins_raise(self):
        assert LockSet(pins=((1, 3), (1, 3))).pins == ((1, 3),)
        with pytest.raises(LockError, match="pinned to both"):
            LockSet(pins=((0, 3), (1, 3)))

    def test_pin_and_forbid_on_same_cell_raise(self):
        with pytest.raises(LockError, match="both pinned and forbidden"):
            LockSet(pins=((1, 2),), forbids=frozenset({(1, 2)}))

    @pytest.mark.parametrize(
        "junk", [((1,),), ((1, 2, 3),), (("a", 2),), ((1.5, 2),), ((-1, 2),), ((1, -2),)]
    )
    def test_junk_cells_rejected(self, junk):
        with pytest.raises(LockError):
            LockSet(pins=junk)

    def test_chainable_builders_return_new_frozen_values(self):
        base = LockSet()
        locked = base.pin(2, 7).forbid(0, 3).forbid(1, 3)
        assert base.is_empty
        assert locked.pins == ((2, 7),)
        assert locked.forbids == frozenset({(0, 3), (1, 3)})
        # frozen + hashable: usable as dict keys / cached
        assert hash(locked) == hash(LockSet(pins=((2, 7),), forbids={(0, 3), (1, 3)}))

    def test_probes(self):
        locks = LockSet(pins=((2, 7), (0, 1))).forbid(3, 4)
        assert locks.pinned_events == frozenset({1, 7})
        assert locks.pin_mapping() == {1: 0, 7: 2}
        assert locks.pinned_interval(7) == 2
        assert locks.pinned_interval(99) is None
        assert locks.is_forbidden(3, 4)
        assert not locks.is_forbidden(4, 3)
        assert locks.pinned_assignments() == (
            Assignment(event=1, interval=0),
            Assignment(event=7, interval=2),
        )


class TestValidateFor:
    def test_in_range_locks_pass(self):
        instance = make_random_instance(seed=5)
        LockSet().pin(0, 0).forbid(
            instance.n_intervals - 1, instance.n_events - 1
        ).validate_for(instance)

    def test_out_of_range_event_and_interval_rejected(self):
        instance = make_random_instance(seed=5)
        with pytest.raises(LockError, match="events"):
            LockSet().pin(0, instance.n_events).validate_for(instance)
        with pytest.raises(LockError, match="intervals"):
            LockSet().forbid(instance.n_intervals, 0).validate_for(instance)


class TestCheckSchedule:
    def test_honoring_schedule_passes(self):
        locks = LockSet().pin(1, 0).forbid(0, 1)
        locks.check_schedule({0: 1, 1: 2})
        instance = make_random_instance(seed=5)
        schedule = Schedule(instance, (Assignment(event=0, interval=1),))
        locks.check_schedule(schedule)

    def test_unscheduled_pin_rejected(self):
        with pytest.raises(LockError, match="unscheduled"):
            LockSet().pin(1, 0).check_schedule({2: 1})

    def test_moved_pin_rejected(self):
        with pytest.raises(LockError, match="at interval 3"):
            LockSet().pin(1, 0).check_schedule({0: 3})

    def test_forbidden_cell_rejected(self):
        with pytest.raises(LockError, match="forbidden"):
            LockSet().forbid(2, 4).check_schedule({4: 2})


class TestShiftedForRemoval:
    def test_locks_on_removed_event_drop_and_higher_shift(self):
        locks = LockSet(pins=((0, 1), (2, 5)), forbids={(1, 3), (1, 7)})
        shifted = locks.shifted_for_removal(3)
        assert shifted.pins == ((0, 1), (2, 4))
        assert shifted.forbids == frozenset({(1, 6)})

    def test_lower_events_untouched(self):
        locks = LockSet(pins=((2, 0),), forbids={(0, 1)})
        assert locks.shifted_for_removal(5) == locks


class TestSerialization:
    def test_round_trip(self):
        locks = LockSet(pins=((2, 7), (0, 1)), forbids={(3, 4)})
        assert LockSet.from_dict(locks.to_dict()) == locks

    def test_coerce(self):
        assert LockSet.coerce(None) is None
        # the bit-identity mechanism: an empty lock set IS the unlocked path
        assert LockSet.coerce(LockSet()) is None
        assert LockSet.coerce({"pins": [[1, 2]]}) == LockSet(pins=((1, 2),))
        with pytest.raises(LockError, match="must be a LockSet"):
            LockSet.coerce([("not", "locks")])

    def test_describe(self):
        assert LockSet().describe() == "pins[-] forbids[-]"
        locks = LockSet(pins=((1, 2),), forbids={(0, 4)})
        assert locks.describe() == "pins[e2@t1] forbids[e4@t0]"
