"""Lock differential suite: locks never perturb what they do not bind.

The acceptance contract for organizer locks, enforced across every
registry solver on dense AND sparse interest backends:

* ``locks=LockSet()`` (empty) is bit-identical to ``locks=None`` — the
  empty set collapses to the unlocked code path via ``LockSet.coerce``;
* a *non-binding* forbid (a cell the unlocked solve never chose) leaves
  deterministic solvers bit-identical;
* pinning the full unlocked solution returns it bit-identically;
* whatever the solver, pins are always present in the result and
  forbidden cells never appear.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.incremental import IncrementalScheduler
from repro.algorithms.registry import solver_registry
from repro.api import ScheduleSession
from repro.interactive import LockSet

from tests.conftest import make_random_instance

#: One-shot solvers whose unlocked run is deterministic given the seed
#: argument is unused (no RNG draws at all).
DETERMINISTIC = ("beam", "exact", "grd", "grd-heap", "top")
SEEDED = ("grasp", "rand", "sa")
ONE_SHOT = DETERMINISTIC + SEEDED

BACKENDS = ("dense", "sparse")
K = 3


def build_case(backend: str):
    if backend == "sparse":
        pytest.importorskip("scipy")
    instance = make_random_instance(seed=777, interest_backend=backend)
    engine = "sparse" if backend == "sparse" else "vectorized"
    return instance, engine


def solve(name: str, instance, engine, *, locks=None, seed=11):
    seeded = solver_registry.get(name).seeded
    solver = solver_registry.create(
        name, engine=engine, seed=seed if seeded else None
    )
    return solver.solve(instance, K, locks=locks)


class TestEmptyLocksAreTheUnlockedPath:
    """``LockSet()`` must take the exact unlocked code path, byte for byte."""

    @pytest.mark.parametrize("name", ONE_SHOT)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_shot_solvers(self, name, backend):
        instance, engine = build_case(backend)
        unlocked = solve(name, instance, engine, locks=None)
        empty = solve(name, instance, engine, locks=LockSet())
        assert empty.schedule == unlocked.schedule
        assert empty.utility == unlocked.utility

    def test_local_search_refiner(self):
        instance, engine = build_case("dense")
        start = solve("grd", instance, engine).schedule
        refiner = solver_registry.create("ls", engine=engine, seed=11)
        unlocked = refiner.refine(instance, start, locks=None)
        refiner = solver_registry.create("ls", engine=engine, seed=11)
        empty = refiner.refine(instance, start, locks=LockSet())
        assert empty.schedule == unlocked.schedule
        assert empty.utility == unlocked.utility

    def test_incremental_scheduler(self):
        instance, _ = build_case("dense")
        unlocked = IncrementalScheduler(instance, K)
        empty = IncrementalScheduler(instance, K, locks=LockSet())
        assert empty.locks is None  # coerced onto the unlocked path
        assert empty.schedule == unlocked.schedule
        assert empty.utility() == unlocked.utility()


class TestNonBindingForbids:
    """Forbidding a cell the solver never wanted must change nothing."""

    @pytest.mark.parametrize("name", DETERMINISTIC)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worst_cell_forbid_is_invisible(self, name, backend):
        instance, engine = build_case(backend)
        unlocked = solve(name, instance, engine)
        chosen = set(unlocked.schedule.as_mapping().items())

        # the globally worst-scoring baseline cell: no solver path ever
        # prefers it, so forbidding it must be a no-op
        session = ScheduleSession(instance, default_engine=engine)
        matrix = session.plane_for(None).ensure()
        flat_order = np.argsort(matrix, axis=None)
        worst = None
        for flat in flat_order:
            interval, event = np.unravel_index(int(flat), matrix.shape)
            if (event, interval) not in chosen:
                worst = (int(interval), int(event))
                break
        assert worst is not None

        locked = solve(name, instance, engine, locks=LockSet().forbid(*worst))
        assert locked.schedule == unlocked.schedule
        assert locked.utility == unlocked.utility


class TestFullyPinned:
    @pytest.mark.parametrize("name", ONE_SHOT)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pinning_the_whole_solution_returns_it(self, name, backend):
        instance, engine = build_case(backend)
        unlocked = solve("grd", instance, engine)
        pins = tuple(
            (interval, event)
            for event, interval in sorted(unlocked.schedule.as_mapping().items())
        )
        locks = LockSet(pins=pins)
        locked = solve(name, instance, engine, locks=locks)
        assert locked.schedule.as_mapping() == unlocked.schedule.as_mapping()


class TestLockInvariants:
    """Pins always present, forbids never violated — every solver, any seed."""

    @pytest.mark.parametrize("name", ONE_SHOT)
    @pytest.mark.parametrize("seed", (0, 7))
    def test_pins_present_and_forbids_absent(self, name, seed):
        instance, engine = build_case("dense")
        # pin one assignment the greedy draft proves feasible, forbid the
        # unlocked winner's other cells to force the solver to move
        draft = sorted(solve("grd", instance, engine).schedule.as_mapping().items())
        (pin_event, pin_interval) = draft[0]
        forbids = {(interval, event) for event, interval in draft[1:]}
        locks = LockSet(pins=((pin_interval, pin_event),), forbids=forbids)

        result = solve(name, instance, engine, locks=locks, seed=seed)
        mapping = result.schedule.as_mapping()
        assert mapping.get(pin_event) == pin_interval
        for interval, event in forbids:
            assert mapping.get(event) != interval
        # check_schedule is the same predicate the solvers self-verify with
        locks.check_schedule(result.schedule)

    def test_refiner_never_moves_a_pin_or_lands_on_a_forbid(self):
        instance, engine = build_case("dense")
        start = solve("grd", instance, engine).schedule
        draft = sorted(start.as_mapping().items())
        (pin_event, pin_interval) = draft[0]
        locks = LockSet(pins=((pin_interval, pin_event),))
        refiner = solver_registry.create("ls", engine=engine, seed=3)
        refined = refiner.refine(instance, start, locks=locks)
        assert refined.schedule.as_mapping().get(pin_event) == pin_interval
        locks.check_schedule(refined.schedule)

    def test_incremental_honors_locks_through_maintenance(self):
        instance, engine = build_case("dense")
        draft = sorted(
            solve("grd", instance, engine).schedule.as_mapping().items()
        )
        (pin_event, pin_interval) = draft[0]
        locks = LockSet(pins=((pin_interval, pin_event),)).forbid(
            draft[1][1], draft[1][0]
        )
        inc = IncrementalScheduler(instance, K, locks=locks)
        locks.check_schedule(inc.schedule)

        # interest churn triggers repair; locks must survive it
        rng = np.random.default_rng(4)
        for event in (draft[1][0], pin_event):
            inc.update_event_interest(
                event, rng.uniform(0, 1, instance.n_users)
            )
            locks.check_schedule(inc.schedule)
