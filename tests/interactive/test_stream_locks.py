"""Organizer locks under live change streams, across maintenance policies.

The streaming contract: locks handed to :class:`StreamDriver` (or
``ScheduleSession.stream``) bind every intermediate and final schedule,
whatever maintenance policy absorbs the ops — incremental repair,
periodic batch rebuilds, or the hybrid.  Cancels renumber the event axis,
and the locks renumber with it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.incremental import IncrementalScheduler
from repro.api import ScheduleSession
from repro.core.errors import LockError
from repro.interactive import LockSet
from repro.stream import POLICY_NAMES, StreamDriver, Trace
from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    DriftInterest,
    RaiseBudget,
)

from tests.conftest import make_random_instance

K = 3


@pytest.fixture
def instance():
    return make_random_instance(seed=99, n_events=8, n_intervals=5)


def churn_trace(instance, *, with_cancel_below=None):
    """A small but varied trace; optionally cancels one low event index."""
    rng = np.random.default_rng(5)

    def entries():
        return tuple(
            (int(u), float(rng.uniform(0.2, 1.0)))
            for u in rng.choice(instance.n_users, size=4, replace=False)
        )

    ops = [
        DriftInterest(time=0.0, event=2, interest=entries()),
        ArriveCandidate(
            time=1.0, location=0, required_resources=1.5, interest=entries()
        ),
        AnnounceRival(time=2.0, interval=1, interest=entries()),
        RaiseBudget(time=3.0, new_k=K + 1),
        DriftInterest(time=4.0, event=5, interest=entries()),
    ]
    if with_cancel_below is not None:
        ops.insert(2, CancelEvent(time=1.5, event=with_cancel_below))
    return Trace(
        ops=tuple(ops),
        n_users=instance.n_users,
        initial_k=K,
        n_events=instance.n_events,
        n_intervals=instance.n_intervals,
    )


def feasible_locks(instance):
    """Pin one greedy-proven assignment; forbid another draft cell."""
    from repro.algorithms.registry import solver_registry

    draft = sorted(
        solver_registry.create("grd").solve(instance, K)
        .schedule.as_mapping().items()
    )
    (pin_event, pin_interval) = draft[0]
    (other_event, other_interval) = draft[1]
    return LockSet(
        pins=((pin_interval, pin_event),),
        forbids=frozenset({(other_interval, other_event)}),
    )


class TestLocksSurviveStreams:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_final_schedule_honors_locks_under_every_policy(
        self, instance, policy
    ):
        locks = feasible_locks(instance)
        driver = StreamDriver(instance, k=K, policy=policy, locks=locks)
        result = driver.run(churn_trace(instance))
        locks.check_schedule(result.final_schedule)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_intermediate_schedule_honors_locks(self, instance, policy):
        """Belt and braces: replay the ops by hand through the policy's
        own scheduler and check after every op, not just at the end."""
        locks = feasible_locks(instance)
        from repro.stream import make_policy

        maintenance = make_policy(policy)
        maintenance.bind(instance, K, locks=locks)
        for op in churn_trace(instance).ops:
            maintenance.apply(op)
            maintenance.scheduler.locks.check_schedule(
                maintenance.scheduler.schedule
            )

    def test_session_stream_threads_locks(self, instance):
        locks = feasible_locks(instance)
        session = ScheduleSession(instance)
        result = session.stream(
            churn_trace(instance), "incremental", k=K, locks=locks
        )
        locks.check_schedule(result.final_schedule)


class TestCancelRenumbering:
    def test_cancel_below_pin_shifts_the_pin_down(self, instance):
        locks = feasible_locks(instance)
        (pin_interval, pin_event) = locks.pins[0]
        assert pin_event > 0, "test needs a pinned event above index 0"

        inc = IncrementalScheduler(instance, K, locks=locks)
        inc.cancel_event(0)
        shifted = inc.locks
        assert shifted.pins == ((pin_interval, pin_event - 1),)
        shifted.check_schedule(inc.schedule)

    def test_cancelling_the_pinned_event_releases_the_pin(self, instance):
        locks = feasible_locks(instance)
        (pin_interval, pin_event) = locks.pins[0]
        inc = IncrementalScheduler(instance, K, locks=locks)
        inc.cancel_event(pin_event)
        remaining = inc.locks
        assert remaining is None or pin_event not in {
            e for _, e in remaining.pins
        }

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_streamed_cancel_keeps_renumbered_locks_binding(
        self, instance, policy
    ):
        locks = feasible_locks(instance)
        (pin_interval, pin_event) = locks.pins[0]
        assert pin_event > 0
        driver = StreamDriver(instance, k=K, policy=policy, locks=locks)
        result = driver.run(churn_trace(instance, with_cancel_below=0))
        # the pin followed the renumbering: event index shifted down one
        assert result.final_schedule.get(pin_event - 1) == pin_interval


class TestLockValidation:
    def test_over_pinned_budget_rejected_up_front(self, instance):
        draft = sorted(
            ScheduleSession(instance)
            .solve(k=K, solver="grd")
            .schedule.as_mapping()
            .items()
        )
        locks = LockSet(
            pins=tuple((t, e) for e, t in draft) + ((0, 7),)
        )
        with pytest.raises(LockError, match="pinned but the budget"):
            IncrementalScheduler(instance, K, locks=locks)

    def test_out_of_range_locks_rejected(self, instance):
        with pytest.raises(LockError, match="events"):
            IncrementalScheduler(
                instance, K, locks=LockSet().pin(0, instance.n_events)
            )
