"""LockSet.explain: dry-run pin feasibility classification."""

from __future__ import annotations

import pytest

from repro.interactive.locks import LockReport, LockSet, PinProbe

from tests.conftest import make_random_instance


@pytest.fixture()
def instance():
    return make_random_instance(seed=42)


def _events_sharing_location(instance):
    by_location: dict[int, list[int]] = {}
    for event in instance.events:
        by_location.setdefault(event.location, []).append(event.index)
    return next(v for v in by_location.values() if len(v) >= 2)


class TestExplain:
    def test_feasible_pins(self, instance):
        report = LockSet().pin(0, 0).pin(1, 1).explain(instance, k=4)
        assert isinstance(report, LockReport)
        assert report.feasible
        assert all(p.ok for p in report.probes)
        assert "verdict: feasible" in report.describe()

    def test_empty_locks_are_feasible(self, instance):
        assert LockSet().explain(instance).feasible

    def test_out_of_range_pin(self, instance):
        report = LockSet().pin(99, 0).explain(instance)
        assert not report.feasible
        assert report.probes[0].status == "out-of-range"

    def test_out_of_range_forbid(self, instance):
        report = LockSet().forbid(0, 99).explain(instance)
        assert not report.feasible
        assert report.forbids_out_of_range == ((0, 99),)
        # forbids never produce probes — they are range-checked only
        assert report.probes == ()

    def test_location_conflict(self, instance):
        first, second = _events_sharing_location(instance)[:2]
        report = LockSet().pin(0, first).pin(0, second).explain(instance)
        assert not report.feasible
        statuses = {p.event: p.status for p in report.probes}
        assert "location-conflict" in statuses.values()
        assert "location" in report.describe()

    def test_over_capacity(self):
        tight = make_random_instance(
            seed=5, theta=1.5, xi_range=(1.0, 1.4), n_locations=6
        )
        base = tight.events[0]
        other = next(
            e.index for e in tight.events if e.location != base.location
        )
        report = LockSet().pin(0, base.index).pin(0, other).explain(tight)
        assert not report.feasible
        assert any(p.status == "over-capacity" for p in report.probes)
        failing = next(p for p in report.probes if not p.ok)
        assert "resources" in failing.detail

    def test_budget_overflow(self, instance):
        report = LockSet().pin(0, 0).pin(1, 1).explain(instance, k=1)
        assert not report.feasible
        assert all(p.ok for p in report.probes)  # pins fine, budget is not
        assert "exceed k=1" in report.describe()

    def test_explain_never_mutates(self, instance):
        locks = LockSet().pin(0, 0)
        first = locks.explain(instance)
        second = locks.explain(instance)
        assert first == second

    def test_probe_value_semantics(self):
        probe = PinProbe(interval=1, event=2, status="ok")
        assert probe.ok
        assert not PinProbe(interval=1, event=2, status="over-capacity").ok
