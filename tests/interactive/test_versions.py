"""Schedule versions: store semantics, diffs, session and serving APIs."""

from __future__ import annotations

import pytest

from repro.api import ScheduleSession
from repro.interactive import ScheduleVersion, VersionStore, diff_versions
from repro.serve import ServingSession

from tests.conftest import make_random_instance


@pytest.fixture
def instance():
    return make_random_instance(seed=321)


def version(name, assignments, utility, sequence=0, **kw):
    return ScheduleVersion(
        name=name,
        assignments=tuple(sorted(assignments.items())),
        utility=utility,
        k=kw.pop("k", 3),
        solver=kw.pop("solver", "grd"),
        sequence=sequence,
        **kw,
    )


class TestVersionStore:
    def test_save_get_names_in_save_order(self):
        store = VersionStore()
        store.save("draft", {0: 1}, 1.0, k=2, solver="grd")
        store.save("alt", {0: 2}, 1.5, k=2, solver="top")
        assert store.names() == ("draft", "alt")
        assert store.get("draft").assignments == ((0, 1),)
        assert store.latest().name == "alt"
        assert "draft" in store and "nope" not in store
        assert len(store) == 2

    def test_duplicate_name_needs_overwrite_and_keeps_sequence(self):
        store = VersionStore()
        store.save("v1", {0: 1}, 1.0, k=2, solver="grd")
        store.save("v2", {0: 2}, 2.0, k=2, solver="grd")
        with pytest.raises(ValueError, match="already exists"):
            store.save("v1", {1: 0}, 3.0, k=2, solver="grd")
        replaced = store.save(
            "v1", {1: 0}, 3.0, k=2, solver="grd", overwrite=True
        )
        assert replaced.sequence == 0
        assert store.names() == ("v1", "v2")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            VersionStore().save("", {}, 0.0, k=1, solver="grd")

    def test_unknown_name_lists_known(self):
        store = VersionStore()
        store.save("only", {}, 0.0, k=1, solver="grd")
        with pytest.raises(KeyError, match="known: only"):
            store.get("missing")
        with pytest.raises(KeyError, match="none saved"):
            VersionStore().get("missing")

    def test_diff_defaults_to_latest(self):
        store = VersionStore()
        store.save("a", {0: 1}, 1.0, k=2, solver="grd")
        store.save("b", {0: 1, 2: 0}, 1.8, k=2, solver="grd")
        diff = store.diff("a")
        assert diff.target == "b"
        assert diff.added == ((2, 0),)
        assert store.changes_since("a") == diff


class TestDiff:
    def test_added_removed_moved_unchanged(self):
        base = version("a", {0: 1, 1: 2, 2: 0}, 1.0)
        target = version("b", {0: 1, 1: 3, 4: 2}, 1.6, sequence=1)
        diff = diff_versions(base, target)
        assert diff.added == ((4, 2),)
        assert diff.removed == ((2, 0),)
        assert diff.moved == ((1, 2, 3),)
        assert diff.unchanged == 1
        assert diff.utility_delta == pytest.approx(0.6)
        assert not diff.is_empty
        text = diff.describe()
        assert "+e4@t2" in text and "-e2@t0" in text and "e1: t2->t3" in text

    def test_identical_versions_diff_empty(self):
        base = version("a", {0: 1}, 1.0)
        diff = diff_versions(base, version("b", {0: 1}, 1.0, sequence=1))
        assert diff.is_empty
        assert "no assignment changes" in diff.describe()

    def test_snapshot_is_immutable_and_describes_itself(self):
        snap = version("v3", {0: 1}, 1.25, stamp=4)
        with pytest.raises(AttributeError):
            snap.utility = 9.0
        assert snap.mapping() == {0: 1}
        text = snap.describe()
        assert "v3" in text and "stamp=4" in text


class TestSessionVersions:
    def test_save_diff_round_trip(self, instance):
        session = ScheduleSession(instance)
        first = session.solve(k=2, solver="grd")
        second = session.solve(k=3, solver="grd")
        session.save_version("draft", first)
        session.save_version("more", second)
        assert session.versions() == ("draft", "more")
        assert session.version("draft").solver == first.solver
        assert session.version("draft").k == 2

        diff = session.diff_versions("draft")
        assert diff.target == "more"
        assert diff.utility_delta == pytest.approx(
            second.utility - first.utility
        )
        # the snapshot matches the response it came from
        assert dict(session.version("more").assignments) == (
            second.schedule.as_mapping()
        )

    def test_saved_version_survives_later_solves(self, instance):
        session = ScheduleSession(instance)
        session.save_version("pin", session.solve(k=2, solver="grd"))
        before = session.version("pin")
        session.solve(k=4, solver="top")
        assert session.version("pin") == before


class TestServingVersions:
    def test_versions_stamped_with_pool_generation(self, instance):
        session = ServingSession(instance)
        served = session.solve(k=2, solver="grd")
        session.save_version("v0", served)
        assert session.schedule_version("v0").stamp == served.version

        session.cancel_event(instance.n_events - 1)
        bumped = session.solve(k=2, solver="grd")
        session.save_version("v1", bumped)
        assert session.schedule_version("v1").stamp == session.version
        assert session.schedule_version("v1").stamp > (
            session.schedule_version("v0").stamp
        )
        assert session.versions() == ("v0", "v1")
        diff = session.diff_versions("v0", "v1")
        assert diff.utility_delta == pytest.approx(
            bumped.utility - served.utility
        )
