"""Tests of the solver scaffolding: results, stats, strictness, clamping."""

import pytest

from repro.algorithms.base import ScheduleResult, Scheduler, SolverStats
from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.core.errors import ScheduleSizeError
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


class TestSolverStats:
    def test_counters_start_at_zero(self):
        stats = SolverStats()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_as_dict_round_trips_every_field(self):
        stats = SolverStats(initial_scores=3, pops=2, iterations=1)
        payload = stats.as_dict()
        assert payload["initial_scores"] == 3
        assert payload["pops"] == 2
        assert payload["iterations"] == 1


class TestScheduleResult:
    def test_summary_mentions_solver_and_utility(self):
        instance = make_random_instance(seed=70)
        result = GreedyScheduler().solve(instance, 2)
        text = result.summary()
        assert "GRD" in text
        assert "utility=" in text

    def test_complete_flag(self):
        instance = make_random_instance(seed=71)
        result = GreedyScheduler().solve(instance, 2)
        assert result.complete
        assert result.achieved_k == 2


class TestSolveContract:
    def test_negative_k_rejected(self):
        instance = make_random_instance(seed=72)
        with pytest.raises(ValueError, match="non-negative"):
            GreedyScheduler().solve(instance, -1)

    def test_k_zero_returns_empty_schedule(self):
        instance = make_random_instance(seed=73)
        result = GreedyScheduler().solve(instance, 0)
        assert len(result.schedule) == 0
        assert result.utility == pytest.approx(0.0)

    def test_k_clamped_to_event_count(self):
        instance = make_random_instance(seed=74, n_events=3)
        result = GreedyScheduler().solve(instance, 50)
        assert result.requested_k == 3

    def test_every_result_is_feasible(self):
        instance = make_random_instance(seed=75)
        for solver in (GreedyScheduler(), RandomScheduler(seed=1)):
            result = solver.solve(instance, 4)
            assert is_schedule_feasible(instance, result.schedule)

    def test_strict_mode_raises_when_k_unreachable(self, tight_instance):
        # 1 location x 2 intervals and theta=2 per interval with xi=2:
        # at most one event per interval -> at most 2 assignments, not 4
        solver = GreedyScheduler(strict=True)
        with pytest.raises(ScheduleSizeError, match="placed only"):
            solver.solve(tight_instance, 4)

    def test_non_strict_mode_returns_partial(self, tight_instance):
        result = GreedyScheduler().solve(tight_instance, 4)
        assert result.achieved_k == 2
        assert not result.complete

    def test_runtime_is_measured(self):
        instance = make_random_instance(seed=76)
        result = GreedyScheduler().solve(instance, 3)
        assert result.runtime_seconds > 0.0

    def test_engine_spec_is_respected(self):
        instance = make_random_instance(seed=77)
        vectorized = GreedyScheduler(engine="vectorized").solve(instance, 3)
        reference = GreedyScheduler(engine="reference").solve(instance, 3)
        assert vectorized.utility == pytest.approx(reference.utility, abs=1e-9)
        assert vectorized.schedule == reference.schedule
