"""Tests of GRD (Algorithm 1): selection semantics and invariants."""

import numpy as np
import pytest

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.core.engine import make_engine
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


class TestSelectionSemantics:
    def test_first_pick_is_global_argmax(self):
        """GRD's first selection is the single best assignment anywhere."""
        instance = make_random_instance(seed=80)
        engine = make_engine(instance)
        best = -1.0
        for interval in range(instance.n_intervals):
            scores = engine.scores_for_interval(interval, range(instance.n_events))
            best = max(best, float(scores.max()))
        result = GreedyScheduler().solve(instance, 1)
        assert result.utility == pytest.approx(best, abs=1e-9)

    def test_greedy_trace_is_marginally_optimal(self):
        """Each accepted assignment has the max score among valid ones.

        Replays GRD's schedule in selection order (which the Schedule
        preserves per interval) against a fresh engine and checks the
        greedy invariant at every step.
        """
        instance = make_random_instance(seed=81, n_events=8, n_intervals=3)
        result = GreedyScheduler().solve(instance, 5)
        # recover GRD's selection order: replay by repeatedly finding which
        # remaining scheduled assignment currently has the best score
        engine = make_engine(instance)
        from repro.core.feasibility import FeasibilityChecker

        checker = FeasibilityChecker(instance)
        pending = dict(result.schedule.as_mapping())
        while pending:
            # best score over ALL currently-valid assignments
            best_everywhere = -np.inf
            for interval in range(instance.n_intervals):
                events = [
                    e for e in range(instance.n_events)
                    if not engine.schedule.contains_event(e)
                    and checker.is_valid(Assignment(e, interval))
                ]
                if events:
                    scores = engine.scores_for_interval(interval, events)
                    best_everywhere = max(best_everywhere, float(scores.max()))
            # the next greedy pick must match it (up to ties)
            step_scores = {
                event: engine.score(event, interval)
                for event, interval in pending.items()
            }
            chosen = max(step_scores, key=step_scores.get)
            assert step_scores[chosen] == pytest.approx(
                best_everywhere, abs=1e-9
            )
            interval = pending.pop(chosen)
            checker.apply(Assignment(chosen, interval))
            engine.assign(chosen, interval)

    def test_schedules_exactly_k_when_capacity_allows(self):
        instance = make_random_instance(seed=82)
        for k in (1, 2, 4):
            assert GreedyScheduler().solve(instance, k).achieved_k == k

    def test_stops_when_no_valid_assignment_remains(self, tight_instance):
        result = GreedyScheduler().solve(tight_instance, 4)
        assert result.achieved_k == 2  # one location, 2 intervals, theta binds
        assert is_schedule_feasible(tight_instance, result.schedule)


class TestUtilityQuality:
    def test_utility_equals_schedule_reevaluation(self):
        """Reported utility must equal Omega of the reported schedule."""
        instance = make_random_instance(seed=83)
        result = GreedyScheduler().solve(instance, 4)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )

    def test_matches_exact_optimum_on_single_pick(self):
        """k=1 greedy IS optimal (it takes the argmax assignment)."""
        instance = make_random_instance(seed=84, n_events=5, n_intervals=3)
        greedy = GreedyScheduler().solve(instance, 1)
        exact = ExhaustiveScheduler().solve(instance, 1)
        assert greedy.utility == pytest.approx(exact.utility, abs=1e-9)

    def test_within_half_of_optimum_on_small_instances(self):
        """Empirical quality floor on tiny instances.

        Greedy on a monotone objective with these constraints should stay
        well above 1/2 of optimum; we assert the 1/2 floor as a regression
        tripwire (not a proven bound for SES).
        """
        for seed in range(6):
            instance = make_random_instance(
                seed=seed, n_events=5, n_intervals=3, n_users=8
            )
            greedy = GreedyScheduler().solve(instance, 3)
            exact = ExhaustiveScheduler().solve(instance, 3)
            assert greedy.utility >= 0.5 * exact.utility - 1e-9

    def test_monotone_utility_in_k(self):
        """More budget never hurts GRD (scores are non-negative)."""
        instance = make_random_instance(seed=85)
        utilities = [
            GreedyScheduler().solve(instance, k).utility for k in (1, 2, 3, 4, 5)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(utilities, utilities[1:]))


class TestStats:
    def test_initial_scores_cover_all_pairs(self):
        instance = make_random_instance(seed=86)
        result = GreedyScheduler().solve(instance, 3)
        assert (
            result.stats.initial_scores
            == instance.n_events * instance.n_intervals
        )

    def test_pops_equal_iterations(self):
        """Matrix GRD pops only valid entries: pops == accepted picks."""
        instance = make_random_instance(seed=87)
        result = GreedyScheduler().solve(instance, 3)
        assert result.stats.pops == result.stats.iterations == 3

    def test_updates_happen_after_each_pick_except_last(self):
        instance = make_random_instance(seed=88)
        result = GreedyScheduler().solve(instance, 3)
        assert result.stats.score_updates > 0


class TestDeterminism:
    def test_same_instance_same_schedule(self):
        instance = make_random_instance(seed=89)
        a = GreedyScheduler().solve(instance, 4)
        b = GreedyScheduler().solve(instance, 4)
        assert a.schedule == b.schedule
        assert a.utility == b.utility
