"""Tests of the TOP baseline: ranking semantics and known weaknesses."""

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.top import TopKScheduler
from repro.core.engine import make_engine
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


class TestRankingSemantics:
    def test_first_pick_matches_grd_first_pick(self):
        """With no updates yet, TOP's and GRD's first selection coincide."""
        instance = make_random_instance(seed=100)
        top = TopKScheduler().solve(instance, 1)
        grd = GreedyScheduler().solve(instance, 1)
        assert top.utility == pytest.approx(grd.utility, abs=1e-9)

    def test_selects_by_initial_scores_only(self):
        """TOP's picks all appear in the top slice of the initial ranking.

        Every selected assignment must have an initial score at least as
        large as some unselected *valid* alternative that was skipped only
        because TOP had already filled k — i.e. TOP never dips below the
        ranking frontier.
        """
        instance = make_random_instance(seed=101)
        k = 3
        result = TopKScheduler().solve(instance, k)
        engine = make_engine(instance)
        initial = np.empty((instance.n_intervals, instance.n_events))
        for interval in range(instance.n_intervals):
            initial[interval] = engine.scores_for_interval(
                interval, range(instance.n_events)
            )
        chosen_scores = sorted(
            (
                initial[interval, event]
                for event, interval in result.schedule.as_mapping().items()
            ),
            reverse=True,
        )
        # the k chosen entries each rank within the top (k + collisions)
        # of the full matrix; at minimum the best chosen one is the global max
        assert chosen_scores[0] == pytest.approx(float(initial.max()), abs=1e-9)

    def test_never_schedules_same_event_twice(self):
        instance = make_random_instance(seed=102)
        result = TopKScheduler().solve(instance, 5)
        mapping = result.schedule.as_mapping()
        assert len(mapping) == len(set(mapping))

    def test_feasibility_respected(self, tight_instance):
        result = TopKScheduler().solve(tight_instance, 4)
        assert is_schedule_feasible(tight_instance, result.schedule)
        assert result.achieved_k == 2

    def test_no_score_updates_ever(self):
        """TOP is TOP precisely because it never recomputes scores."""
        instance = make_random_instance(seed=103)
        result = TopKScheduler().solve(instance, 4)
        assert result.stats.score_updates == 0

    def test_deterministic(self):
        instance = make_random_instance(seed=104)
        assert (
            TopKScheduler().solve(instance, 4).schedule
            == TopKScheduler().solve(instance, 4).schedule
        )


class TestKnownWeakness:
    def test_grd_beats_top_when_cannibalization_matters(self):
        """Build an instance where stacking is clearly bad; GRD must win.

        One interval is strictly better for every event's initial score
        (higher sigma), so TOP crams its picks there; GRD notices the
        shrinking marginal gains and spreads.
        """
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            TimeInterval,
            User,
        )

        n_users, n_events, n_intervals = 20, 6, 3
        rng = np.random.default_rng(7)
        users = [User(index=i) for i in range(n_users)]
        intervals = [TimeInterval(index=t) for t in range(n_intervals)]
        events = [
            CandidateEvent(index=e, location=e, required_resources=1.0)
            for e in range(n_events)
        ]
        interest = InterestMatrix.from_arrays(
            rng.uniform(0.4, 1.0, (n_users, n_events))
        )
        sigma = np.column_stack(
            [np.full(n_users, 0.95), np.full(n_users, 0.9), np.full(n_users, 0.85)]
        )
        instance = SESInstance(
            users, intervals, events, [], interest,
            ActivityModel(sigma), Organizer(resources=100.0),
        )
        grd = GreedyScheduler().solve(instance, 4)
        top = TopKScheduler().solve(instance, 4)
        assert grd.utility > top.utility
