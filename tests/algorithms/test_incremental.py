"""Tests of the incremental/online SES scheduler."""

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.incremental import IncrementalScheduler
from repro.core.errors import UnknownEntityError
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


@pytest.fixture
def scheduler():
    instance = make_random_instance(seed=400, n_events=6, n_intervals=4)
    return IncrementalScheduler(instance, k=4)


class TestInitialState:
    def test_initial_fill_matches_greedy_utility(self):
        instance = make_random_instance(seed=401)
        incremental = IncrementalScheduler(instance, k=4)
        greedy = GreedyScheduler().solve(instance, 4)
        assert incremental.utility() == pytest.approx(greedy.utility, abs=1e-9)

    def test_initial_schedule_feasible(self, scheduler):
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)
        assert len(scheduler.schedule) == 4

    def test_negative_k_rejected(self):
        instance = make_random_instance(seed=402)
        with pytest.raises(ValueError, match="non-negative"):
            IncrementalScheduler(instance, k=-1)


class TestEventArrival:
    def test_irresistible_arrival_gets_scheduled(self, scheduler):
        """An event everyone loves must displace something."""
        before = scheduler.utility()
        index = scheduler.add_candidate_event(
            location=99,  # fresh location: no conflicts
            required_resources=0.5,
            interest_column=np.ones(scheduler.instance.n_users),
            name="superstar",
        )
        assert scheduler.schedule.contains_event(index)
        assert scheduler.utility() > before
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_worthless_arrival_changes_nothing(self, scheduler):
        before_mapping = scheduler.schedule.as_mapping()
        before_utility = scheduler.utility()
        index = scheduler.add_candidate_event(
            location=99,
            required_resources=0.5,
            interest_column=np.zeros(scheduler.instance.n_users),
            name="dud",
        )
        assert not scheduler.schedule.contains_event(index)
        assert scheduler.schedule.as_mapping() == before_mapping
        assert scheduler.utility() == pytest.approx(before_utility, abs=1e-9)

    def test_arrival_fills_headroom_first(self):
        instance = make_random_instance(seed=403, n_events=3, n_intervals=4)
        incremental = IncrementalScheduler(instance, k=4)  # only 3 events exist
        assert len(incremental.schedule) == 3
        index = incremental.add_candidate_event(
            location=99,
            required_resources=1.0,
            interest_column=np.full(instance.n_users, 0.4),
        )
        assert incremental.schedule.contains_event(index)
        assert len(incremental.schedule) == 4

    def test_bad_interest_shape_rejected(self, scheduler):
        with pytest.raises(ValueError, match="shape"):
            scheduler.add_candidate_event(
                location=0, required_resources=1.0,
                interest_column=np.ones(3),
            )


class TestCancellation:
    def test_cancelled_event_disappears_and_budget_refills(self, scheduler):
        victim = next(iter(scheduler.schedule.scheduled_events()))
        n_events_before = scheduler.instance.n_events
        scheduler.cancel_event(victim)
        assert scheduler.instance.n_events == n_events_before - 1
        # 6 events, 4 budget: after losing one, refill should restore size 4
        assert len(scheduler.schedule) == 4
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_cancel_unscheduled_candidate(self, scheduler):
        unscheduled = [
            e for e in range(scheduler.instance.n_events)
            if not scheduler.schedule.contains_event(e)
        ]
        before_utility = scheduler.utility()
        scheduler.cancel_event(unscheduled[0])
        assert scheduler.utility() >= before_utility - 1e-9

    def test_cancel_unknown_event_rejected(self, scheduler):
        with pytest.raises(UnknownEntityError, match="no candidate event"):
            scheduler.cancel_event(999)


class TestCompetitionArrival:
    def test_new_rival_lowers_or_keeps_utility(self, scheduler):
        before = scheduler.utility()
        target = next(iter(scheduler.schedule.used_intervals()))
        scheduler.add_competing_event(
            interval=target,
            interest_column=np.full(scheduler.instance.n_users, 0.9),
        )
        # relocation may dodge some damage but cannot profit from a rival
        assert scheduler.utility() <= before + 1e-9
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_events_can_flee_contested_interval(self):
        instance = make_random_instance(
            seed=404, n_events=4, n_intervals=4, n_competing=0,
            n_locations=4,
        )
        incremental = IncrementalScheduler(instance, k=2)
        target = next(iter(incremental.schedule.used_intervals()))
        occupants_before = set(incremental.schedule.events_at(target))
        incremental.add_competing_event(
            interval=target,
            interest_column=np.ones(instance.n_users),
        )
        occupants_after = set(incremental.schedule.events_at(target))
        # with an overwhelming rival, staying is dominated whenever another
        # interval is free — occupants must not have grown
        assert occupants_after <= occupants_before


class TestBudget:
    def test_raise_budget_fills(self, scheduler):
        scheduler.raise_budget(6)
        assert len(scheduler.schedule) == 6

    def test_budget_cannot_shrink(self, scheduler):
        with pytest.raises(ValueError, match="only grow"):
            scheduler.raise_budget(1)

    def test_rebuild_never_loses_to_incremental_state(self, scheduler):
        scheduler.add_candidate_event(
            location=99, required_resources=0.5,
            interest_column=np.full(scheduler.instance.n_users, 0.7),
        )
        incremental_utility = scheduler.utility()
        scheduler.rebuild()
        assert scheduler.utility() >= incremental_utility - 1e-9
