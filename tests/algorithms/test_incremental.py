"""Tests of the incremental/online SES scheduler."""

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.incremental import IncrementalScheduler
from repro.core.engine import EngineSpec, SparseEngine
from repro.core.errors import InfeasibleAssignmentError, UnknownEntityError
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


@pytest.fixture
def scheduler():
    instance = make_random_instance(seed=400, n_events=6, n_intervals=4)
    return IncrementalScheduler(instance, k=4)


class TestInitialState:
    def test_initial_fill_matches_greedy_utility(self):
        instance = make_random_instance(seed=401)
        incremental = IncrementalScheduler(instance, k=4)
        greedy = GreedyScheduler().solve(instance, 4)
        assert incremental.utility() == pytest.approx(greedy.utility, abs=1e-9)

    def test_initial_schedule_feasible(self, scheduler):
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)
        assert len(scheduler.schedule) == 4

    def test_negative_k_rejected(self):
        instance = make_random_instance(seed=402)
        with pytest.raises(ValueError, match="non-negative"):
            IncrementalScheduler(instance, k=-1)


class TestEventArrival:
    def test_irresistible_arrival_gets_scheduled(self, scheduler):
        """An event everyone loves must displace something."""
        before = scheduler.utility()
        index = scheduler.add_candidate_event(
            location=99,  # fresh location: no conflicts
            required_resources=0.5,
            interest_column=np.ones(scheduler.instance.n_users),
            name="superstar",
        )
        assert scheduler.schedule.contains_event(index)
        assert scheduler.utility() > before
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_worthless_arrival_changes_nothing(self, scheduler):
        before_mapping = scheduler.schedule.as_mapping()
        before_utility = scheduler.utility()
        index = scheduler.add_candidate_event(
            location=99,
            required_resources=0.5,
            interest_column=np.zeros(scheduler.instance.n_users),
            name="dud",
        )
        assert not scheduler.schedule.contains_event(index)
        assert scheduler.schedule.as_mapping() == before_mapping
        assert scheduler.utility() == pytest.approx(before_utility, abs=1e-9)

    def test_arrival_fills_headroom_first(self):
        instance = make_random_instance(seed=403, n_events=3, n_intervals=4)
        incremental = IncrementalScheduler(instance, k=4)  # only 3 events exist
        assert len(incremental.schedule) == 3
        index = incremental.add_candidate_event(
            location=99,
            required_resources=1.0,
            interest_column=np.full(instance.n_users, 0.4),
        )
        assert incremental.schedule.contains_event(index)
        assert len(incremental.schedule) == 4

    def test_bad_interest_shape_rejected(self, scheduler):
        with pytest.raises(ValueError, match="shape"):
            scheduler.add_candidate_event(
                location=0, required_resources=1.0,
                interest_column=np.ones(3),
            )


class TestCancellation:
    def test_cancelled_event_disappears_and_budget_refills(self, scheduler):
        victim = next(iter(scheduler.schedule.scheduled_events()))
        n_events_before = scheduler.instance.n_events
        scheduler.cancel_event(victim)
        assert scheduler.instance.n_events == n_events_before - 1
        # 6 events, 4 budget: after losing one, refill should restore size 4
        assert len(scheduler.schedule) == 4
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_cancel_unscheduled_candidate(self, scheduler):
        unscheduled = [
            e for e in range(scheduler.instance.n_events)
            if not scheduler.schedule.contains_event(e)
        ]
        before_utility = scheduler.utility()
        scheduler.cancel_event(unscheduled[0])
        assert scheduler.utility() >= before_utility - 1e-9

    def test_cancel_unknown_event_rejected(self, scheduler):
        with pytest.raises(UnknownEntityError, match="no candidate event"):
            scheduler.cancel_event(999)


class TestCompetitionArrival:
    def test_new_rival_lowers_or_keeps_utility(self, scheduler):
        before = scheduler.utility()
        target = next(iter(scheduler.schedule.used_intervals()))
        scheduler.add_competing_event(
            interval=target,
            interest_column=np.full(scheduler.instance.n_users, 0.9),
        )
        # relocation may dodge some damage but cannot profit from a rival
        assert scheduler.utility() <= before + 1e-9
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_events_can_flee_contested_interval(self):
        instance = make_random_instance(
            seed=404, n_events=4, n_intervals=4, n_competing=0,
            n_locations=4,
        )
        incremental = IncrementalScheduler(instance, k=2)
        target = next(iter(incremental.schedule.used_intervals()))
        occupants_before = set(incremental.schedule.events_at(target))
        incremental.add_competing_event(
            interval=target,
            interest_column=np.ones(instance.n_users),
        )
        occupants_after = set(incremental.schedule.events_at(target))
        # with an overwhelming rival, staying is dominated whenever another
        # interval is free — occupants must not have grown
        assert occupants_after <= occupants_before


class TestInterestDrift:
    def test_drift_on_unknown_event_rejected(self, scheduler):
        with pytest.raises(UnknownEntityError, match="no candidate event"):
            scheduler.update_event_interest(
                99, np.zeros(scheduler.instance.n_users)
            )

    def test_bad_drift_shape_rejected(self, scheduler):
        with pytest.raises(ValueError, match="shape"):
            scheduler.update_event_interest(0, np.ones(3))

    def test_drift_changes_reported_utility(self, scheduler):
        victim = next(iter(scheduler.schedule.scheduled_events()))
        before = scheduler.utility()
        scheduler.update_event_interest(
            victim, np.zeros(scheduler.instance.n_users)
        )
        # the drifted event now attracts nobody: utility must drop
        assert scheduler.utility() < before
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_hot_drift_can_pull_event_into_schedule(self):
        instance = make_random_instance(seed=405, n_events=3, n_intervals=4)
        incremental = IncrementalScheduler(instance, k=4)  # headroom remains
        outsider = incremental.add_candidate_event(
            location=99,
            required_resources=0.5,
            interest_column=np.zeros(instance.n_users),
            maintain=False,
        )
        assert not incremental.schedule.contains_event(outsider)
        incremental.update_event_interest(
            outsider, np.ones(incremental.instance.n_users)
        )
        assert incremental.schedule.contains_event(outsider)


class TestRepairOnlyMode:
    """maintain=False applies the structural change without upkeep."""

    def test_arrival_without_maintenance_stays_unscheduled(self, scheduler):
        index = scheduler.add_candidate_event(
            location=99,
            required_resources=0.5,
            interest_column=np.ones(scheduler.instance.n_users),
            maintain=False,
        )
        assert scheduler.instance.n_events == 7
        assert not scheduler.schedule.contains_event(index)

    def test_cancel_without_maintenance_leaves_slot_empty(self, scheduler):
        victim = next(iter(scheduler.schedule.scheduled_events()))
        scheduler.cancel_event(victim, maintain=False)
        assert len(scheduler.schedule) == 3
        assert is_schedule_feasible(scheduler.instance, scheduler.schedule)

    def test_budget_raise_without_maintenance_defers_fill(self, scheduler):
        scheduler.raise_budget(6, maintain=False)
        assert len(scheduler.schedule) == 4
        scheduler.raise_budget(6)  # maintained: fills the headroom now
        assert len(scheduler.schedule) == 6


class TestAdopt:
    def test_adopt_replaces_schedule_wholesale(self, scheduler):
        greedy = GreedyScheduler().solve(scheduler.instance, 2)
        scheduler.adopt(greedy.schedule)
        assert scheduler.schedule.as_mapping() == greedy.schedule.as_mapping()
        assert scheduler.utility() == pytest.approx(greedy.utility, abs=1e-9)

    def test_adopt_accepts_plain_mappings(self, scheduler):
        mapping = dict(list(scheduler.schedule.as_mapping().items())[:2])
        scheduler.adopt(mapping)
        assert scheduler.schedule.as_mapping() == mapping

    def test_adopt_validates_feasibility(self, scheduler):
        events = scheduler.instance.events
        twin_location = [
            (a.index, b.index)
            for a in events
            for b in events
            if a.index < b.index and a.location == b.location
        ]
        if not twin_location:
            pytest.skip("no co-located event pair in this instance")
        first, second = twin_location[0]
        with pytest.raises(InfeasibleAssignmentError):
            scheduler.adopt({first: 0, second: 0})

    def test_rejected_adopt_leaves_state_untouched(self, scheduler):
        """Adoption is atomic: a rejected mapping must not leave a
        half-applied schedule behind."""
        before_mapping = scheduler.schedule.as_mapping()
        before_utility = scheduler.utility()
        events = scheduler.instance.events
        twin_location = [
            (a.index, b.index)
            for a in events
            for b in events
            if a.index < b.index and a.location == b.location
        ]
        if not twin_location:
            pytest.skip("no co-located event pair in this instance")
        first, second = twin_location[0]
        with pytest.raises(InfeasibleAssignmentError):
            scheduler.adopt({first: 0, second: 0})
        assert scheduler.schedule.as_mapping() == before_mapping
        assert scheduler.utility() == before_utility


class TestEngineSpecSurvival:
    """Regression: structural rebuilds must preserve the configured
    engine spec AND the interest-storage backend (a sparse instance once
    silently reverted to dense on the first arrival)."""

    def make_sparse_scheduler(self, **kwargs):
        pytest.importorskip("scipy")
        instance = make_random_instance(
            seed=406, n_events=6, n_intervals=4, interest_backend="sparse"
        )
        return IncrementalScheduler(
            instance, k=4, engine=EngineSpec(kind="sparse"), **kwargs
        )

    def ops(self, scheduler):
        n_users = scheduler.instance.n_users
        yield "arrival", lambda: scheduler.add_candidate_event(
            location=99, required_resources=0.5,
            interest_column=np.full(n_users, 0.3),
        )
        yield "cancel", lambda: scheduler.cancel_event(0)
        yield "rival", lambda: scheduler.add_competing_event(
            interval=1, interest_column=np.full(n_users, 0.4)
        )
        yield "drift", lambda: scheduler.update_event_interest(
            1, np.full(n_users, 0.2)
        )

    def test_backend_and_engine_survive_every_structural_op(self):
        scheduler = self.make_sparse_scheduler()
        spec = scheduler.engine_spec
        for label, op in self.ops(scheduler):
            op()
            assert scheduler.instance.interest.backend == "sparse", label
            assert isinstance(scheduler._engine, SparseEngine), label
            assert scheduler.engine_spec is spec, label

    def test_dense_backend_also_preserved(self):
        instance = make_random_instance(seed=407, n_events=6, n_intervals=4)
        scheduler = IncrementalScheduler(instance, k=3)
        scheduler.add_candidate_event(
            location=99, required_resources=0.5,
            interest_column=np.full(instance.n_users, 0.3),
        )
        assert scheduler.instance.interest.backend == "dense"

    def test_sparse_matches_dense_trajectory(self):
        """The same op sequence yields the same utilities on both stacks."""
        pytest.importorskip("scipy")
        dense_instance = make_random_instance(seed=408, n_events=6, n_intervals=4)
        sparse_instance = make_random_instance(
            seed=408, n_events=6, n_intervals=4, interest_backend="sparse"
        )
        dense = IncrementalScheduler(dense_instance, k=4)
        sparse = IncrementalScheduler(
            sparse_instance, k=4, engine=EngineSpec(kind="sparse")
        )
        n_users = dense_instance.n_users
        column = np.linspace(0.1, 0.9, n_users)
        for live in (dense, sparse):
            live.add_candidate_event(
                location=99, required_resources=0.5, interest_column=column
            )
            live.cancel_event(2)
            live.add_competing_event(interval=0, interest_column=column)
            live.update_event_interest(1, column[::-1].copy())
        assert dense.schedule.as_mapping() == sparse.schedule.as_mapping()
        assert dense.utility() == pytest.approx(sparse.utility(), abs=1e-9)


class TestBudget:
    def test_raise_budget_fills(self, scheduler):
        scheduler.raise_budget(6)
        assert len(scheduler.schedule) == 6

    def test_budget_cannot_shrink(self, scheduler):
        with pytest.raises(ValueError, match="only grow"):
            scheduler.raise_budget(1)

    def test_rebuild_never_loses_to_incremental_state(self, scheduler):
        scheduler.add_candidate_event(
            location=99, required_resources=0.5,
            interest_column=np.full(scheduler.instance.n_users, 0.7),
        )
        incremental_utility = scheduler.utility()
        scheduler.rebuild()
        assert scheduler.utility() >= incremental_utility - 1e-9
