"""Tests of the local-search refiner."""

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.local_search import LocalSearchRefiner
from repro.algorithms.random_schedule import RandomScheduler
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility

from tests.conftest import make_random_instance


class TestRefinement:
    def test_never_decreases_utility(self):
        for seed in range(5):
            instance = make_random_instance(seed=seed)
            start = RandomScheduler(seed=seed).solve(instance, 4)
            refined = LocalSearchRefiner(seed=seed).refine(
                instance, start.schedule
            )
            assert refined.utility >= start.utility - 1e-9

    def test_preserves_schedule_size(self):
        instance = make_random_instance(seed=130)
        start = RandomScheduler(seed=0).solve(instance, 4)
        refined = LocalSearchRefiner(seed=1).refine(instance, start.schedule)
        assert len(refined.schedule) == 4

    def test_stays_feasible(self):
        instance = make_random_instance(seed=131)
        start = RandomScheduler(seed=2).solve(instance, 5)
        refined = LocalSearchRefiner(seed=3).refine(instance, start.schedule)
        assert is_schedule_feasible(instance, refined.schedule)

    def test_does_not_mutate_input_schedule(self):
        instance = make_random_instance(seed=132)
        start = RandomScheduler(seed=4).solve(instance, 4)
        original = start.schedule.as_mapping()
        LocalSearchRefiner(seed=5).refine(instance, start.schedule)
        assert start.schedule.as_mapping() == original

    def test_reported_utility_matches_schedule(self):
        instance = make_random_instance(seed=133)
        start = RandomScheduler(seed=6).solve(instance, 4)
        refined = LocalSearchRefiner(seed=7).refine(instance, start.schedule)
        assert refined.utility == pytest.approx(
            total_utility(instance, refined.schedule), abs=1e-9
        )

    def test_improves_a_random_start_substantially(self):
        """On instances with clear structure, LS should add real value."""
        instance = make_random_instance(
            seed=134, n_users=20, n_events=8, n_intervals=4
        )
        start = RandomScheduler(seed=8).solve(instance, 4)
        refined = LocalSearchRefiner(seed=9).refine(instance, start.schedule)
        from repro.algorithms.exhaustive import ExhaustiveScheduler

        exact = ExhaustiveScheduler().solve(instance, 4)
        # LS must close at least part of the random-to-optimal gap
        assert refined.utility >= start.utility
        assert refined.utility <= exact.utility + 1e-9


class TestRefineResult:
    def test_labels_combined_solver(self):
        instance = make_random_instance(seed=135)
        grd = GreedyScheduler().solve(instance, 4)
        combined = LocalSearchRefiner(seed=0).refine_result(instance, grd)
        assert combined.solver == "GRD+LS"
        assert combined.utility >= grd.utility - 1e-9
        assert combined.runtime_seconds >= grd.runtime_seconds

    def test_bad_max_rounds_rejected(self):
        with pytest.raises(ValueError, match="max_rounds"):
            LocalSearchRefiner(max_rounds=0)
