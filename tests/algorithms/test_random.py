"""Tests of the RAND baseline."""

import pytest

from repro.algorithms.random_schedule import RandomScheduler
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


class TestRandomScheduler:
    def test_reaches_k_when_capacity_allows(self):
        instance = make_random_instance(seed=110)
        result = RandomScheduler(seed=1).solve(instance, 4)
        assert result.achieved_k == 4

    def test_always_feasible(self):
        instance = make_random_instance(seed=111)
        for seed in range(10):
            result = RandomScheduler(seed=seed).solve(instance, 5)
            assert is_schedule_feasible(instance, result.schedule)

    def test_seed_reproducibility(self):
        instance = make_random_instance(seed=112)
        a = RandomScheduler(seed=9).solve(instance, 4)
        b = RandomScheduler(seed=9).solve(instance, 4)
        assert a.schedule == b.schedule

    def test_different_seeds_usually_differ(self):
        instance = make_random_instance(seed=113)
        schedules = {
            RandomScheduler(seed=s).solve(instance, 4).schedule for s in range(6)
        }
        assert len(schedules) > 1

    def test_exhausts_tight_capacity(self, tight_instance):
        """RAND must find the max 2 placements despite random order."""
        result = RandomScheduler(seed=2).solve(tight_instance, 4)
        assert result.achieved_k == 2

    def test_performs_no_scoring(self):
        instance = make_random_instance(seed=114)
        result = RandomScheduler(seed=3).solve(instance, 4)
        assert result.stats.initial_scores == 0
        assert result.stats.score_updates == 0

    def test_k_zero(self):
        instance = make_random_instance(seed=115)
        result = RandomScheduler(seed=4).solve(instance, 0)
        assert result.achieved_k == 0

    def test_utility_reported_consistently(self):
        from repro.core.objective import total_utility

        instance = make_random_instance(seed=116)
        result = RandomScheduler(seed=5).solve(instance, 4)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )
