"""Tests of the lazy-heap GRD variant: exactness versus list GRD."""

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


class TestEquivalenceWithListGRD:
    def test_same_utility_across_random_instances(self):
        """Lazy revalidation must not change what greedy selects.

        Utilities must match exactly (modulo float noise); the schedules
        themselves may differ only under exact score ties.
        """
        for seed in range(8):
            instance = make_random_instance(seed=seed)
            list_result = GreedyScheduler().solve(instance, 4)
            heap_result = LazyGreedyScheduler().solve(instance, 4)
            assert heap_result.utility == pytest.approx(
                list_result.utility, abs=1e-9
            ), f"seed {seed}"

    def test_same_schedule_without_ties(self):
        instance = make_random_instance(seed=90)
        assert (
            LazyGreedyScheduler().solve(instance, 4).schedule
            == GreedyScheduler().solve(instance, 4).schedule
        )

    def test_feasible_and_complete(self):
        instance = make_random_instance(seed=91)
        result = LazyGreedyScheduler().solve(instance, 5)
        assert result.achieved_k == 5
        assert is_schedule_feasible(instance, result.schedule)

    def test_partial_when_capacity_binds(self, tight_instance):
        result = LazyGreedyScheduler().solve(tight_instance, 4)
        assert result.achieved_k == 2


class TestLaziness:
    def test_rescores_fewer_entries_than_full_refresh(self):
        """The point of the heap: far fewer score updates than |E| per pick."""
        instance = make_random_instance(
            seed=92, n_events=12, n_intervals=6, n_users=20
        )
        k = 6
        heap_result = LazyGreedyScheduler().solve(instance, k)
        list_result = GreedyScheduler().solve(instance, k)
        assert heap_result.stats.score_updates <= list_result.stats.score_updates

    def test_pops_at_least_k(self):
        instance = make_random_instance(seed=93)
        result = LazyGreedyScheduler().solve(instance, 4)
        assert result.stats.pops >= 4
