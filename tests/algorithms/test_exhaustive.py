"""Tests of the exact exhaustive solver (the ground-truth oracle)."""

import itertools

import pytest

from repro.algorithms.exhaustive import (
    ExhaustiveScheduler,
    SearchBudgetExceeded,
    optimal_utility,
)
from repro.core.feasibility import FeasibilityChecker, is_schedule_feasible
from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


def brute_force_optimum(instance, k: int) -> float:
    """Independent oracle: enumerate all k-subsets x interval tuples."""
    best = 0.0 if k == 0 else -1.0
    events = range(instance.n_events)
    for subset in itertools.combinations(events, k):
        for placement in itertools.product(range(instance.n_intervals), repeat=k):
            checker = FeasibilityChecker(instance)
            schedule = Schedule(instance)
            feasible = True
            for event, interval in zip(subset, placement):
                assignment = Assignment(event, interval)
                if not checker.is_valid(assignment):
                    feasible = False
                    break
                checker.apply(assignment)
                schedule.add(assignment)
            if feasible:
                best = max(best, total_utility(instance, schedule))
    return best


class TestOptimality:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_independent_brute_force(self, seed):
        instance = make_random_instance(
            seed=seed, n_users=6, n_events=4, n_intervals=3, n_competing=3
        )
        k = 2
        result = ExhaustiveScheduler().solve(instance, k)
        assert result.utility == pytest.approx(
            brute_force_optimum(instance, k), abs=1e-9
        )

    def test_dominates_every_heuristic(self):
        from repro.algorithms.greedy import GreedyScheduler
        from repro.algorithms.random_schedule import RandomScheduler
        from repro.algorithms.top import TopKScheduler

        instance = make_random_instance(
            seed=120, n_users=8, n_events=5, n_intervals=3
        )
        k = 3
        exact = ExhaustiveScheduler().solve(instance, k).utility
        for solver in (
            GreedyScheduler(),
            TopKScheduler(),
            RandomScheduler(seed=0),
        ):
            assert solver.solve(instance, k).utility <= exact + 1e-9

    def test_result_schedule_feasible_and_sized(self):
        instance = make_random_instance(seed=121, n_events=5, n_intervals=3)
        result = ExhaustiveScheduler().solve(instance, 3)
        assert result.achieved_k == 3
        assert is_schedule_feasible(instance, result.schedule)

    def test_reported_utility_matches_schedule(self):
        instance = make_random_instance(seed=122, n_events=5, n_intervals=3)
        result = ExhaustiveScheduler().solve(instance, 2)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )

    def test_k_zero_returns_empty(self):
        instance = make_random_instance(seed=123)
        result = ExhaustiveScheduler().solve(instance, 0)
        assert result.achieved_k == 0
        assert result.utility == 0.0

    def test_partial_when_k_unreachable(self, tight_instance):
        result = ExhaustiveScheduler().solve(tight_instance, 4)
        # only 2 placements exist; exact solver returns the best 2-schedule
        assert result.achieved_k == 2


class TestBudget:
    def test_budget_exceeded_raises(self):
        instance = make_random_instance(seed=124, n_events=8, n_intervals=4)
        solver = ExhaustiveScheduler(max_nodes=10)
        with pytest.raises(SearchBudgetExceeded, match="exceeded 10 nodes"):
            solver.solve(instance, 4)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_nodes"):
            ExhaustiveScheduler(max_nodes=0)


class TestConvenienceFunction:
    def test_optimal_utility_matches_solver(self):
        instance = make_random_instance(seed=125, n_events=4, n_intervals=2)
        assert optimal_utility(instance, 2) == pytest.approx(
            ExhaustiveScheduler().solve(instance, 2).utility
        )
