"""Tests of the beam-search scheduler."""

import pytest

from repro.algorithms.beam import BeamSearchScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.core.feasibility import is_schedule_feasible

from tests.conftest import make_random_instance


class TestBeamBasics:
    def test_feasible_and_complete(self):
        instance = make_random_instance(seed=410)
        result = BeamSearchScheduler(beam_width=3).solve(instance, 4)
        assert result.achieved_k == 4
        assert is_schedule_feasible(instance, result.schedule)

    def test_width_one_equals_grd(self):
        """A width-1 beam with branch factor 1 IS greedy."""
        for seed in range(5):
            instance = make_random_instance(seed=seed)
            beam = BeamSearchScheduler(beam_width=1, branch_factor=1).solve(
                instance, 4
            )
            grd = GreedyScheduler().solve(instance, 4)
            assert beam.utility == pytest.approx(grd.utility, abs=1e-9), seed

    def test_never_worse_than_grd(self):
        """The beam contains greedy's trajectory, so it cannot lose to it."""
        for seed in range(5):
            instance = make_random_instance(seed=seed)
            beam = BeamSearchScheduler(beam_width=4).solve(instance, 4)
            grd = GreedyScheduler().solve(instance, 4)
            assert beam.utility >= grd.utility - 1e-9, seed

    def test_bounded_by_exact_optimum(self):
        instance = make_random_instance(
            seed=411, n_events=5, n_intervals=3, n_users=8
        )
        beam = BeamSearchScheduler(beam_width=6).solve(instance, 3)
        exact = ExhaustiveScheduler().solve(instance, 3)
        assert beam.utility <= exact.utility + 1e-9

    def test_wide_beam_reaches_optimum_on_tiny_instance(self):
        instance = make_random_instance(
            seed=412, n_events=4, n_intervals=3, n_users=6
        )
        beam = BeamSearchScheduler(beam_width=32, branch_factor=12).solve(
            instance, 3
        )
        exact = ExhaustiveScheduler().solve(instance, 3)
        assert beam.utility == pytest.approx(exact.utility, abs=1e-9)

    def test_partial_when_capacity_binds(self, tight_instance):
        result = BeamSearchScheduler(beam_width=3).solve(tight_instance, 4)
        assert result.achieved_k == 2
        assert is_schedule_feasible(tight_instance, result.schedule)

    def test_deterministic(self):
        instance = make_random_instance(seed=413)
        a = BeamSearchScheduler(beam_width=3).solve(instance, 4)
        b = BeamSearchScheduler(beam_width=3).solve(instance, 4)
        assert a.schedule == b.schedule

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="beam_width"):
            BeamSearchScheduler(beam_width=0)
        with pytest.raises(ValueError, match="branch_factor"):
            BeamSearchScheduler(branch_factor=0)

    def test_k_zero(self):
        instance = make_random_instance(seed=414)
        result = BeamSearchScheduler().solve(instance, 0)
        assert result.achieved_k == 0
