"""Cross-solver consistency matrix: every solver, every shared invariant.

One table-driven suite that pins the contracts shared by all seven
schedulers (the paper's three plus the four extensions), so adding a
solver means adding one line here — and immediately inheriting the
feasibility, sizing, determinism-under-seed and utility-consistency
checks.
"""

import pytest

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.beam import BeamSearchScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.grasp import GraspScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.algorithms.top import TopKScheduler
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility

from tests.conftest import make_random_instance

#: name -> zero-argument factory (fresh, seeded solver per test)
SOLVERS = {
    "GRD": lambda: GreedyScheduler(),
    "GRD-heap": lambda: LazyGreedyScheduler(),
    "TOP": lambda: TopKScheduler(),
    "RAND": lambda: RandomScheduler(seed=7),
    "EXACT": lambda: ExhaustiveScheduler(),
    "SA": lambda: AnnealingScheduler(seed=7, steps=300),
    "BEAM": lambda: BeamSearchScheduler(beam_width=3),
    "GRASP": lambda: GraspScheduler(seed=7, restarts=2),
}


@pytest.fixture(scope="module")
def instance():
    return make_random_instance(seed=700, n_users=10, n_events=6, n_intervals=3)


@pytest.mark.parametrize("name", SOLVERS)
class TestSharedContracts:
    def test_feasible_output(self, name, instance):
        result = SOLVERS[name]().solve(instance, 4)
        assert is_schedule_feasible(instance, result.schedule)

    def test_reaches_k_on_slack_instance(self, name, instance):
        result = SOLVERS[name]().solve(instance, 4)
        assert result.achieved_k == 4

    def test_k_zero_yields_empty(self, name, instance):
        result = SOLVERS[name]().solve(instance, 0)
        assert len(result.schedule) == 0
        assert result.utility == pytest.approx(0.0)

    def test_reported_utility_is_true_omega(self, name, instance):
        result = SOLVERS[name]().solve(instance, 4)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )

    def test_deterministic_rerun(self, name, instance):
        a = SOLVERS[name]().solve(instance, 4)
        b = SOLVERS[name]().solve(instance, 4)
        assert a.schedule == b.schedule
        assert a.utility == b.utility

    def test_no_duplicate_events(self, name, instance):
        result = SOLVERS[name]().solve(instance, 4)
        mapping = result.schedule.as_mapping()
        assert len(mapping) == len(result.schedule)

    def test_solver_name_in_result(self, name, instance):
        result = SOLVERS[name]().solve(instance, 2)
        assert result.solver == SOLVERS[name]().name

    def test_runtime_recorded(self, name, instance):
        result = SOLVERS[name]().solve(instance, 2)
        assert result.runtime_seconds > 0


class TestQualityOrdering:
    """Orderings that must hold on this slack, conflict-light instance."""

    def test_exact_dominates_all(self, instance):
        exact = SOLVERS["EXACT"]().solve(instance, 3).utility
        for name, factory in SOLVERS.items():
            if name == "EXACT":
                continue
            assert factory().solve(instance, 3).utility <= exact + 1e-9, name

    def test_informed_methods_beat_random(self, instance):
        rand = SOLVERS["RAND"]().solve(instance, 4).utility
        for name in ("GRD", "GRD-heap", "BEAM", "GRASP"):
            assert SOLVERS[name]().solve(instance, 4).utility >= rand - 1e-9, name

    def test_beam_and_grasp_at_least_greedy(self, instance):
        grd = SOLVERS["GRD"]().solve(instance, 4).utility
        assert SOLVERS["BEAM"]().solve(instance, 4).utility >= grd - 1e-9
        assert SOLVERS["GRASP"]().solve(instance, 4).utility >= grd - 1e-9
