"""Tie-breaking parity: heap-GRD must replicate list-GRD's pick order.

GRD resolves equal Eq. 4 scores to the lowest flat ``(interval, event)``
index; the lazy heap's key carries the same suffix and rescores stale
entries through the *batched* row query (bit-identical cell values), so
even structurally tied assignments — duplicated interest columns yield
exactly equal marginal gains — are consumed in the same order.  These
tests build instances with every column duplicated several times, the
adversarial case for tie-breaking, and require the *schedules* (not just
utilities) to coincide while positive-gain assignments remain (the
~1e-16-residue endgame is documented as out of scope in the heap's
docstring).
"""

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler
from repro.core.activity import ActivityModel
from repro.core.engine import EngineSpec
from repro.core.entities import CandidateEvent, Organizer, TimeInterval, User
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix

BACKENDS = [("dense", "vectorized"), ("sparse", "sparse")]


def duplicated_instance(
    seed, backend="dense", n_users=12, n_base=3, dups=3, n_intervals=4
):
    """Every interest column appears ``dups`` times: maximal score ties."""
    rng = np.random.default_rng(seed)
    base = rng.random((n_users, n_base)) * (rng.random((n_users, n_base)) < 0.5)
    mu = np.concatenate([base] * dups, axis=1)
    users = [User(index=i) for i in range(n_users)]
    intervals = [TimeInterval(index=t) for t in range(n_intervals)]
    events = [
        CandidateEvent(index=e, location=e, required_resources=1.0)
        for e in range(mu.shape[1])
    ]
    return SESInstance(
        users=users,
        intervals=intervals,
        events=tuple(events),
        competing=(),
        interest=InterestMatrix.from_arrays(
            mu, np.zeros((n_users, 0)), backend=backend
        ),
        activity=ActivityModel(np.full((n_users, n_intervals), 0.8)),
        organizer=Organizer(resources=50.0),
    )


@pytest.mark.parametrize("backend,kind", BACKENDS)
@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("k", [2, 3, 4])
def test_duplicate_gain_pick_order_matches(backend, kind, seed, k):
    if backend == "sparse":
        pytest.importorskip("scipy")
    instance = duplicated_instance(seed, backend=backend)
    spec = EngineSpec(kind=kind)
    grd = GreedyScheduler(spec).solve(instance, k)
    heap = LazyGreedyScheduler(spec).solve(instance, k)
    assert heap.schedule.as_mapping() == grd.schedule.as_mapping()
    assert heap.utility == pytest.approx(grd.utility, abs=1e-12)


def test_ties_actually_occur():
    """Sanity: the construction really produces duplicate marginal gains."""
    instance = duplicated_instance(0)
    engine = EngineSpec().build(instance)
    scores = engine.scores_for_interval(0, list(range(instance.n_events)))
    values, counts = np.unique(scores, return_counts=True)
    assert (counts >= 3).any()


@pytest.mark.parametrize("backend,kind", BACKENDS)
def test_exhausted_duplicates_still_match_utility(backend, kind):
    """Past the positive-gain frontier (k = every event), schedules may
    differ only in ~1e-16-residue picks; utilities must still agree."""
    if backend == "sparse":
        pytest.importorskip("scipy")
    instance = duplicated_instance(1, backend=backend)
    spec = EngineSpec(kind=kind)
    grd = GreedyScheduler(spec).solve(instance, instance.n_events)
    heap = LazyGreedyScheduler(spec).solve(instance, instance.n_events)
    assert heap.utility == pytest.approx(grd.utility, abs=1e-9)
    assert len(heap.schedule) == len(grd.schedule)
