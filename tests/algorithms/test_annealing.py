"""Tests of the simulated-annealing scheduler."""

import pytest

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility

from tests.conftest import make_random_instance


class TestAnnealing:
    def test_feasible_output(self):
        instance = make_random_instance(seed=140)
        result = AnnealingScheduler(seed=1, steps=200).solve(instance, 4)
        assert is_schedule_feasible(instance, result.schedule)
        assert result.achieved_k == 4

    def test_never_worse_than_its_seed_schedule(self):
        """SA tracks the best-seen state, so it cannot lose to its seed."""
        instance = make_random_instance(seed=141)
        seed_result = RandomScheduler(seed=2).solve(instance, 4)
        sa = AnnealingScheduler(
            seed=3, steps=300, seed_schedule=seed_result.schedule
        )
        result = sa.solve(instance, 4)
        assert result.utility >= seed_result.utility - 1e-9

    def test_reproducible_with_seed(self):
        instance = make_random_instance(seed=142)
        a = AnnealingScheduler(seed=5, steps=200).solve(instance, 3)
        b = AnnealingScheduler(seed=5, steps=200).solve(instance, 3)
        assert a.schedule == b.schedule

    def test_utility_matches_schedule(self):
        instance = make_random_instance(seed=143)
        result = AnnealingScheduler(seed=6, steps=200).solve(instance, 3)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )

    def test_approaches_optimum_on_tiny_instance(self):
        from repro.algorithms.exhaustive import ExhaustiveScheduler

        instance = make_random_instance(
            seed=144, n_users=10, n_events=5, n_intervals=3
        )
        exact = ExhaustiveScheduler().solve(instance, 3).utility
        sa = AnnealingScheduler(seed=7, steps=2000).solve(instance, 3).utility
        assert sa >= 0.85 * exact

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="steps"):
            AnnealingScheduler(steps=0)
        with pytest.raises(ValueError, match="cooling"):
            AnnealingScheduler(cooling=1.5)
        with pytest.raises(ValueError, match="initial_temperature"):
            AnnealingScheduler(initial_temperature=0.0)

    def test_moves_are_counted(self):
        instance = make_random_instance(seed=145)
        result = AnnealingScheduler(seed=8, steps=300).solve(instance, 3)
        assert result.stats.moves_evaluated > 0
