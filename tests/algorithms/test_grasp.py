"""Tests of the GRASP scheduler."""

import pytest

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.grasp import GraspScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility

from tests.conftest import make_random_instance


class TestGraspBasics:
    def test_feasible_and_complete(self):
        instance = make_random_instance(seed=600)
        result = GraspScheduler(seed=1, restarts=3).solve(instance, 4)
        assert result.achieved_k == 4
        assert is_schedule_feasible(instance, result.schedule)

    def test_reported_utility_matches_schedule(self):
        instance = make_random_instance(seed=601)
        result = GraspScheduler(seed=2, restarts=3).solve(instance, 4)
        assert result.utility == pytest.approx(
            total_utility(instance, result.schedule), abs=1e-9
        )

    def test_reproducible_given_seed(self):
        instance = make_random_instance(seed=602)
        a = GraspScheduler(seed=5, restarts=3).solve(instance, 4)
        b = GraspScheduler(seed=5, restarts=3).solve(instance, 4)
        assert a.schedule == b.schedule

    def test_alpha_zero_without_polish_matches_grd(self):
        """alpha=0 restricts the RCL to top-scored assignments = greedy."""
        for seed in range(4):
            instance = make_random_instance(seed=seed)
            grasp = GraspScheduler(
                seed=seed, restarts=1, alpha=0.0, polish=False
            ).solve(instance, 4)
            grd = GreedyScheduler().solve(instance, 4)
            assert grasp.utility == pytest.approx(grd.utility, abs=1e-9), seed

    def test_bounded_by_exact_optimum(self):
        instance = make_random_instance(
            seed=603, n_events=5, n_intervals=3, n_users=8
        )
        grasp = GraspScheduler(seed=3, restarts=5).solve(instance, 3)
        exact = ExhaustiveScheduler().solve(instance, 3)
        assert grasp.utility <= exact.utility + 1e-9

    def test_polish_never_hurts(self):
        instance = make_random_instance(seed=604)
        raw = GraspScheduler(seed=7, restarts=3, polish=False).solve(instance, 4)
        polished = GraspScheduler(seed=7, restarts=3, polish=True).solve(
            instance, 4
        )
        assert polished.utility >= raw.utility - 1e-9

    def test_partial_when_capacity_binds(self, tight_instance):
        result = GraspScheduler(seed=1, restarts=2).solve(tight_instance, 4)
        assert result.achieved_k == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="restarts"):
            GraspScheduler(restarts=0)
        with pytest.raises(ValueError, match="alpha"):
            GraspScheduler(alpha=1.5)
        with pytest.raises(ValueError, match="polish_rounds"):
            GraspScheduler(polish_rounds=0)

    def test_restart_counter_in_stats(self):
        instance = make_random_instance(seed=605)
        result = GraspScheduler(seed=1, restarts=4).solve(instance, 3)
        assert result.stats.iterations == 4
