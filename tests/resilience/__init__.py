"""Test package marker: keeps test-module names unique across directories."""
