"""Golden workload/trace cases shared by the resilience suites.

Each case pins a workload seed, a trace seed and an engine, spanning
dense and sparse backends — the kill-point differential tests replay
these under every policy and assert a recovered session is bit-identical
to an uninterrupted one.
"""

from __future__ import annotations

import pytest

from repro.core.engine import EngineSpec
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

GOLDEN_CASES = {
    "dense_a": dict(
        seed=11, k=4, n_users=40, n_events=8, n_intervals=5,
        n_ops=16, backend="dense",
    ),
    "dense_b": dict(
        seed=12, k=3, n_users=25, n_events=6, n_intervals=4,
        n_ops=12, backend="dense",
    ),
    "sparse_a": dict(
        seed=13, k=4, n_users=60, n_events=10, n_intervals=5,
        n_ops=16, backend="sparse",
    ),
}

#: Extra constructor params per policy name (defaults otherwise).
POLICY_PARAMS = {"periodic-rebuild": {"rebuild_every": 2}}


def golden_config(name: str) -> ExperimentConfig:
    case = GOLDEN_CASES[name]
    return ExperimentConfig(
        k=case["k"],
        n_users=case["n_users"],
        n_events=case["n_events"],
        n_intervals=case["n_intervals"],
        interest_backend=case["backend"],
    )


def golden_instance(name: str):
    if GOLDEN_CASES[name]["backend"] == "sparse":
        pytest.importorskip("scipy")
    config = golden_config(name)
    return WorkloadGenerator(root_seed=GOLDEN_CASES[name]["seed"]).build(config)


def golden_trace(name: str):
    case = GOLDEN_CASES[name]
    config = golden_config(name)
    return TraceGenerator(
        config, TraceConfig(n_ops=case["n_ops"]), root_seed=case["seed"]
    ).generate()


def engine_for(name: str) -> EngineSpec:
    backend = GOLDEN_CASES[name]["backend"]
    return EngineSpec(kind="sparse" if backend == "sparse" else "vectorized")
