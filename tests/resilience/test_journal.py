"""DeltaJournal framing, torn-tail repair and corruption detection."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import JournalError
from repro.resilience import FSYNC_POLICIES, JOURNAL_FORMAT, DeltaJournal
from repro.resilience.journal import _frame, _parse_frame


class TestFraming:
    def test_frame_is_length_crc_json_line(self):
        line = _frame({"b": 2, "a": 1})
        length, crc, body = line.rstrip(b"\n").split(b":", 2)
        assert int(length) == len(body)
        assert len(crc) == 8
        # canonical JSON: sorted keys, no spaces
        assert body == b'{"a":1,"b":2}'

    def test_round_trip(self):
        payload = {"op": "add_event", "interest": [0.25, 0.5], "index": 3}
        assert _parse_frame(_frame(payload).rstrip(b"\n")) == payload

    def test_same_payload_same_bytes(self):
        assert _frame({"x": 1, "y": 2}) == _frame({"y": 2, "x": 1})

    @pytest.mark.parametrize(
        "line",
        [
            b"",
            b"junk",
            b"5:0000abcd",            # no body separator
            b"3:zzzzzzzz:abc",        # bad crc hex
            b"9:00000000:abc",        # wrong length
            b"3:00000000:abc",        # wrong crc
        ],
    )
    def test_bad_frames_parse_to_none(self, line):
        assert _parse_frame(line) is None

    def test_crc_mismatch_rejected(self):
        line = bytearray(_frame({"a": 1}).rstrip(b"\n"))
        line[-2] ^= 0x01  # flip a payload bit; crc no longer matches
        assert _parse_frame(bytes(line)) is None


class TestLifecycle:
    def test_create_refuses_existing(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        DeltaJournal.create(path).close()
        with pytest.raises(JournalError, match="already exists"):
            DeltaJournal.create(path)

    def test_direct_construction_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="create"):
            DeltaJournal(tmp_path / "wal.jsonl")

    def test_bad_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            DeltaJournal.create(tmp_path / "wal.jsonl", fsync="sometimes")
        assert FSYNC_POLICIES == ("always", "interval", "never")

    def test_append_and_scan(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = DeltaJournal.create(path, {"kind": "test", "n": 7})
        assert journal.offset == 0
        for index in range(5):
            assert journal.append({"index": index}) == index + 1
        journal.close()
        scan = DeltaJournal.scan(path)
        assert scan.metadata["format"] == JOURNAL_FORMAT
        assert scan.metadata["kind"] == "test"
        assert scan.offset == 5
        assert scan.records == [{"index": i} for i in range(5)]
        assert scan.truncated_bytes == 0

    def test_append_after_close_raises(self, tmp_path):
        journal = DeltaJournal.create(tmp_path / "wal.jsonl")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append({"a": 1})

    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            DeltaJournal.scan(tmp_path / "nope.jsonl")
        with pytest.raises(JournalError, match="does not exist"):
            DeltaJournal.open(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty"):
            DeltaJournal.scan(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(_frame({"format": "ses-wal/999"}))
        with pytest.raises(JournalError, match="format"):
            DeltaJournal.scan(path)


class TestTornTail:
    def _write(self, path, n_records=4):
        journal = DeltaJournal.create(path, {"kind": "test"})
        for index in range(n_records):
            journal.append({"index": index})
        journal.close()
        return path.read_bytes()

    def test_truncated_tail_repaired_on_open(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        raw = self._write(path)
        path.write_bytes(raw[:-7])  # tear the last record mid-frame
        journal, scan = DeltaJournal.open(path)
        assert scan.offset == 3
        assert scan.truncated_bytes > 0
        # the file is physically repaired and appendable again
        journal.append({"index": 99})
        journal.close()
        rescan = DeltaJournal.scan(path)
        assert [r["index"] for r in rescan.records] == [0, 1, 2, 99]

    def test_abandon_simulates_crash(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = DeltaJournal.create(path, {"kind": "test"}, fsync="never")
        journal.append({"index": 0})
        journal.abandon()
        assert journal.closed
        _, scan = DeltaJournal.open(path)
        assert scan.offset == 1

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        raw = self._write(path)
        lines = raw.split(b"\n")
        lines[2] = b"XX" + lines[2]  # damage a middle record
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError, match="mid-file"):
            DeltaJournal.scan(path)

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        raw = self._write(path)
        path.write_bytes(b"??" + raw)
        with pytest.raises(JournalError, match="header|mid-file"):
            DeltaJournal.scan(path)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        payloads=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=6),
                st.one_of(
                    st.integers(-10**9, 10**9),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=8),
                ),
                max_size=4,
            ),
            max_size=8,
        )
    )
    def test_scan_inverts_append(self, tmp_path_factory, payloads):
        path = tmp_path_factory.mktemp("wal") / "wal.jsonl"
        journal = DeltaJournal.create(path, {"kind": "prop"})
        for payload in payloads:
            journal.append(payload)
        journal.close()
        scan = DeltaJournal.scan(path)
        assert scan.offset == len(payloads)
        # floats round-trip exactly through canonical JSON
        assert scan.records == [json.loads(json.dumps(p)) for p in payloads]

    @settings(max_examples=60, deadline=None)
    @given(
        n_records=st.integers(1, 6),
        cut=st.integers(1, 200),
    )
    def test_any_tail_truncation_is_recoverable(
        self, tmp_path_factory, n_records, cut
    ):
        """Chopping N bytes off the end never yields mid-file corruption."""
        path = tmp_path_factory.mktemp("wal") / "wal.jsonl"
        journal = DeltaJournal.create(path, {"kind": "prop"})
        for index in range(n_records):
            journal.append({"index": index, "pad": "x" * 20})
        journal.close()
        raw = path.read_bytes()
        cut = min(cut, len(raw) - 1)  # keep at least one header byte
        path.write_bytes(raw[: len(raw) - cut])
        try:
            scan = DeltaJournal.scan(path)
        except JournalError as error:
            # acceptable only when the header itself was destroyed
            assert "header" in str(error)
            return
        assert scan.offset <= n_records
        assert [r["index"] for r in scan.records] == list(range(scan.offset))
