"""CheckpointStore: atomic publish, CRC verification, newest-valid-wins."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CheckpointError
from repro.resilience import CHECKPOINT_FORMAT, CheckpointStore


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        body = {"kind": "test", "offset": 3, "values": [0.25, 0.5]}
        path = store.write(3, body)
        assert path.name == "ckpt-00000003.json"
        assert store.load(3) == body

    def test_no_tmp_litter(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write(0, {"a": 1})
        assert not list(store.directory.glob("*.tmp-*"))

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            CheckpointStore(tmp_path / "ckpt").write(-1, {})

    def test_missing_offset(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore(tmp_path / "ckpt").load(5)

    def test_envelope_fields(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        path = store.write(7, {"x": 1})
        envelope = json.loads(path.read_text())
        assert envelope["format"] == CHECKPOINT_FORMAT
        assert envelope["offset"] == 7
        assert isinstance(envelope["crc"], int)


class TestVerification:
    def _damage(self, store, offset, mutate):
        path = store.directory / f"ckpt-{offset:08d}.json"
        path.write_text(mutate(path.read_text()))

    def test_truncated_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write(1, {"x": 1})
        self._damage(store, 1, lambda raw: raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="JSON"):
            store.load(1)

    def test_crc_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write(1, {"x": 1})

        def corrupt(raw):
            envelope = json.loads(raw)
            envelope["body"]["x"] = 2  # body edited, crc stale
            return json.dumps(envelope)

        self._damage(store, 1, corrupt)
        with pytest.raises(CheckpointError, match="CRC"):
            store.load(1)

    def test_wrong_format(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write(1, {"x": 1})

        def retag(raw):
            envelope = json.loads(raw)
            envelope["format"] = "ses-ckpt/999"
            return json.dumps(envelope)

        self._damage(store, 1, retag)
        with pytest.raises(CheckpointError, match="format"):
            store.load(1)

    def test_offset_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        path = store.write(1, {"x": 1})
        (store.directory / "ckpt-00000009.json").write_text(path.read_text())
        with pytest.raises(CheckpointError, match="claims offset"):
            store.load(9)


class TestNewestValid:
    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path / "ckpt").newest_valid() is None

    def test_newest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        for offset in (0, 4, 8):
            store.write(offset, {"at": offset})
        assert store.newest_valid() == (8, {"at": 8})
        assert store.offsets() == [0, 4, 8]

    def test_max_offset_filters_future_checkpoints(self, tmp_path):
        """A checkpoint past the surviving journal prefix is ignored."""
        store = CheckpointStore(tmp_path / "ckpt")
        for offset in (0, 4, 8):
            store.write(offset, {"at": offset})
        assert store.newest_valid(max_offset=6) == (4, {"at": 4})
        assert store.newest_valid(max_offset=0) == (0, {"at": 0})

    def test_damaged_newest_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.write(0, {"at": 0})
        path = store.write(4, {"at": 4})
        path.write_text(path.read_text()[:10])
        assert store.newest_valid() == (0, {"at": 0})

    @settings(max_examples=40, deadline=None)
    @given(
        offsets=st.lists(st.integers(0, 50), min_size=1, max_size=6, unique=True),
        bound=st.integers(0, 50),
    )
    def test_newest_valid_matches_spec(self, tmp_path_factory, offsets, bound):
        store = CheckpointStore(tmp_path_factory.mktemp("ckpt"))
        for offset in offsets:
            store.write(offset, {"at": offset})
        eligible = [o for o in offsets if o <= bound]
        expected = (
            None if not eligible else (max(eligible), {"at": max(eligible)})
        )
        assert store.newest_valid(max_offset=bound) == expected
