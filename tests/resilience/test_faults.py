"""FaultPlan/FaultInjector/RetryPolicy determinism and executor wiring."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import InjectedFault, ShardWorkerError
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import EXECUTOR_FAULT_KINDS
from repro.shard.executor import ShardExecutor


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(seed=0, worker_crash=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(seed=0, worker_crash=0.6, io_error=0.6)
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(seed=0, stall_seconds=-1.0)

    def test_draw_sequence_is_seed_deterministic(self):
        plan = FaultPlan(seed=5, worker_crash=0.3, worker_stall=0.3, io_error=0.3)
        first = [plan.injector().draw_executor("site-a") for _ in range(1)]
        a, b = plan.injector(), plan.injector()
        seq_a = [a.draw_executor("site-a") for _ in range(50)]
        seq_b = [b.draw_executor("site-a") for _ in range(50)]
        assert seq_a == seq_b
        assert any(kind in EXECUTOR_FAULT_KINDS for kind in seq_a)
        assert a.counts() == b.counts()
        assert first[0] == seq_a[0]

    def test_sites_draw_independent_streams(self):
        plan = FaultPlan(seed=5, worker_crash=0.5)
        injector = plan.injector()
        seq_a = [injector.draw_executor("site-a") for _ in range(30)]
        seq_b = [injector.draw_executor("site-b") for _ in range(30)]
        assert seq_a != seq_b  # site key perturbs the stream

    def test_zero_probability_plans_never_fire(self):
        injector = FaultPlan(seed=1).injector()
        assert all(
            injector.draw_executor("x") is None for _ in range(20)
        )
        assert not injector.draw_writer("y")
        assert injector.counts() == {}

    def test_writer_draws(self):
        injector = FaultPlan(seed=2, writer_stall=1.0).injector()
        assert injector.draw_writer("pool.write")
        assert injector.counts() == {"pool.write:writer_stall": 1}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="fallback_after"):
            RetryPolicy(fallback_after=0)

    def test_delay_grows_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.001, backoff_factor=2.0, jitter=0.5)
        delays = [policy.delay(attempt, key=3) for attempt in range(4)]
        assert delays == [policy.delay(a, key=3) for a in range(4)]
        # jitter is bounded: each delay stays within +-50% of its base
        for attempt, delay in enumerate(delays):
            base = 0.001 * 2.0**attempt
            assert 0.5 * base <= delay <= 1.5 * base

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.002, backoff_factor=2.0, jitter=0.0)
        assert policy.delay(2) == pytest.approx(0.008)


class TestInjectedFault:
    def test_carries_site_and_kind(self):
        fault = InjectedFault("shard.map:thread", "io_error")
        assert fault.site == "shard.map:thread"
        assert fault.kind == "io_error"
        assert "io_error" in str(fault)

    def test_pickles_across_process_boundaries(self):
        fault = pickle.loads(pickle.dumps(InjectedFault("s", "worker_crash")))
        assert (fault.site, fault.kind) == ("s", "worker_crash")


FAST_RETRY = RetryPolicy(backoff_base=1e-5, fallback_after=2, max_retries=3)


class TestExecutorInjection:
    def _thunks(self, n=10):
        return [lambda i=i: i * i for i in range(n)]

    def _expected(self, n=10):
        return [i * i for i in range(n)]

    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_faulted_map_converges_to_clean(self, kind):
        plan = FaultPlan(
            seed=7, worker_crash=0.3, io_error=0.2, worker_stall=0.2,
            stall_seconds=1e-4,
        )
        executor = ShardExecutor(
            workers=4, kind=kind, fault_plan=plan, retry=FAST_RETRY
        )
        assert executor.map(self._thunks()) == self._expected()
        stats = executor.stats()
        assert sum(stats["faults"].values()) > 0

    def test_fault_counters_are_deterministic(self):
        def build():
            return ShardExecutor(
                workers=4,
                kind="thread",
                fault_plan=FaultPlan(seed=7, worker_crash=0.4, io_error=0.2),
                retry=FAST_RETRY,
            )

        a, b = build(), build()
        assert a.map(self._thunks()) == b.map(self._thunks())
        assert a.stats() == b.stats()

    def test_certain_crash_converges_via_serial_fallback(self):
        executor = ShardExecutor(
            workers=4,
            kind="thread",
            fault_plan=FaultPlan(seed=1, worker_crash=1.0),
            retry=FAST_RETRY,
        )
        assert executor.map(self._thunks()) == self._expected()
        stats = executor.stats()
        assert stats["fallbacks"] == 10
        assert stats["retries"] > 0

    def test_no_plan_means_zero_overhead_counters(self):
        executor = ShardExecutor(workers=2, kind="thread")
        assert executor.map(self._thunks(4)) == self._expected(4)
        assert executor.stats() == {"faults": {}, "retries": 0, "fallbacks": 0}

    def test_real_exceptions_are_not_retried(self):
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("real bug")

        executor = ShardExecutor(
            workers=2,
            kind="thread",
            fault_plan=FaultPlan(seed=9),  # armed but never fires
            retry=FAST_RETRY,
        )
        with pytest.raises(RuntimeError, match="real bug"):
            executor.map([boom])
        assert len(calls) == 1


class TestWorkerClamp:
    def test_oversubscription_clamps_with_warning(self, monkeypatch):
        monkeypatch.setattr("repro.shard.executor._available_cpus", lambda: 2)
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            executor = ShardExecutor(workers=16, kind="thread")
        assert executor.workers == 2

    def test_single_cpu_collapses_to_serial(self, monkeypatch):
        monkeypatch.setattr("repro.shard.executor._available_cpus", lambda: 1)
        with pytest.warns(RuntimeWarning):
            executor = ShardExecutor(workers=4, kind="thread")
        assert executor.kind == "serial"

    def test_within_budget_is_silent(self, recwarn):
        executor = ShardExecutor(workers=4, kind="thread")
        assert executor.workers == 4
        assert not [w for w in recwarn if w.category is RuntimeWarning]


class TestDeadWorker:
    def test_abrupt_death_raises_typed_error(self):
        import os

        def die():
            os._exit(17)

        executor = ShardExecutor(workers=2, kind="process")
        if executor.kind != "process":  # pragma: no cover - no fork
            pytest.skip("fork start method unavailable")
        with pytest.raises(ShardWorkerError, match=r"thunk \d of 3"):
            executor.map([lambda: 1, die, lambda: 3])
