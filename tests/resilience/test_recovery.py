"""Crash recovery: kill-point differential tests on the golden traces.

The contract under test: kill a durable replay after *any* number of
ops, recover from the durability directory, resume the same trace — and
the final utility, schedule, and per-op trajectory must be bit-identical
to an uninterrupted run.  No float tolerance anywhere: recovery replays
deltas through the same code path, so the answer is the same bits.
"""

from __future__ import annotations

import pytest

from repro.core.errors import RecoveryError
from repro.resilience import Durability, recover
from repro.stream import StreamDriver

from tests.resilience.conftest import (
    GOLDEN_CASES,
    POLICY_PARAMS,
    engine_for,
    golden_instance,
    golden_trace,
)


def _run_clean(name, policy, oracle_every=None):
    driver = StreamDriver(
        golden_instance(name),
        policy=policy,
        engine=engine_for(name),
        oracle_every=oracle_every,
        **POLICY_PARAMS.get(policy, {}),
    )
    return driver.run(golden_trace(name))


def _run_killed_then_recovered(
    name, policy, kill_at, tmp_path, oracle_every=None
):
    durability = Durability(tmp_path / f"{name}-{policy}-{kill_at}")
    driver = StreamDriver(
        golden_instance(name),
        policy=policy,
        engine=engine_for(name),
        oracle_every=oracle_every,
        durability=durability,
        **POLICY_PARAMS.get(policy, {}),
    )
    trace = golden_trace(name)
    driver.run(trace, stop_after=kill_at)
    recovered = recover(durability)
    return recovered.resume(golden_trace(name))


def _assert_identical(clean, resumed):
    assert resumed.final_utility == clean.final_utility
    assert resumed.final_schedule == clean.final_schedule
    assert resumed.final_k == clean.final_k
    assert len(resumed.records) == len(clean.records)
    for a, b in zip(clean.records, resumed.records):
        assert a.index == b.index
        assert a.label == b.label
        assert a.utility == b.utility  # exact, not approx
        assert a.schedule_size == b.schedule_size


class TestKillPointsEveryOp:
    """Incremental policy, every kill point, all three golden cases."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_every_kill_point_recovers_bit_identical(self, name, tmp_path):
        clean = _run_clean(name, "incremental")
        for kill_at in range(GOLDEN_CASES[name]["n_ops"] + 1):
            resumed = _run_killed_then_recovered(
                name, "incremental", kill_at, tmp_path
            )
            _assert_identical(clean, resumed)


class TestKillPointsOtherPolicies:
    """Stateful policies (rebuild counters, pressure) at strided kills."""

    @pytest.mark.parametrize("policy", ["periodic-rebuild", "hybrid"])
    @pytest.mark.parametrize("name", ["dense_a", "sparse_a"])
    def test_strided_kill_points(self, name, policy, tmp_path):
        clean = _run_clean(name, policy)
        n_ops = GOLDEN_CASES[name]["n_ops"]
        for kill_at in [*range(0, n_ops, 4), n_ops - 1]:
            resumed = _run_killed_then_recovered(
                name, policy, kill_at, tmp_path
            )
            _assert_identical(clean, resumed)


class TestRecoveredSessionShape:
    def test_recovered_metadata_and_offsets(self, tmp_path):
        durability = Durability(tmp_path / "ses", checkpoint_every=4)
        driver = StreamDriver(
            golden_instance("dense_b"),
            policy="incremental",
            engine=engine_for("dense_b"),
            durability=durability,
        )
        driver.run(golden_trace("dense_b"), stop_after=7)
        recovered = recover(durability)
        assert recovered.metadata["kind"] == "stream"
        assert recovered.offset <= 7  # buffered appends may be lost
        assert recovered.checkpoint_offset <= recovered.offset
        assert recovered.checkpoint_offset % 4 == 0
        # utility at the recovery point matches the checkpoint+tail replay
        assert recovered.utility() == recovered.policy.utility()

    def test_recover_accepts_path_string(self, tmp_path):
        durability = Durability(tmp_path / "ses")
        StreamDriver(
            golden_instance("dense_b"),
            policy="incremental",
            engine=engine_for("dense_b"),
            durability=durability,
        ).run(golden_trace("dense_b"), stop_after=3)
        recovered = recover(str(tmp_path / "ses"))
        assert recovered.offset <= 3

    def test_resume_rejects_divergent_trace(self, tmp_path):
        durability = Durability(tmp_path / "ses")
        StreamDriver(
            golden_instance("dense_a"),
            policy="incremental",
            engine=engine_for("dense_a"),
            durability=durability,
        ).run(golden_trace("dense_a"), stop_after=8)
        recovered = recover(durability)
        if recovered.offset == 0:
            pytest.skip("no surviving prefix to diverge from")
        with pytest.raises(RecoveryError):
            recovered.resume(golden_trace("dense_b"))

    def test_resume_is_single_shot(self, tmp_path):
        durability = Durability(tmp_path / "ses")
        StreamDriver(
            golden_instance("dense_b"),
            policy="incremental",
            engine=engine_for("dense_b"),
            durability=durability,
        ).run(golden_trace("dense_b"), stop_after=3)
        recovered = recover(durability)
        recovered.resume(golden_trace("dense_b"))
        with pytest.raises(RecoveryError):
            recovered.resume(golden_trace("dense_b"))


class TestDamagedArtifacts:
    def _killed_session(self, tmp_path, stop_after=9):
        durability = Durability(tmp_path / "ses", checkpoint_every=4)
        StreamDriver(
            golden_instance("dense_a"),
            policy="incremental",
            engine=engine_for("dense_a"),
            durability=durability,
        ).run(golden_trace("dense_a"), stop_after=stop_after)
        return durability

    def test_newest_checkpoint_damaged_falls_back(self, tmp_path):
        durability = self._killed_session(tmp_path)
        ckpts = sorted(durability.checkpoint_directory.glob("ckpt-*.json"))
        assert len(ckpts) >= 2
        ckpts[-1].write_text(ckpts[-1].read_text()[:20])
        recovered = recover(durability)
        # still lands on a consistent state and can resume to the clean end
        clean = _run_clean("dense_a", "incremental")
        _assert_identical(clean, recovered.resume(golden_trace("dense_a")))

    def test_torn_journal_tail_is_repaired(self, tmp_path):
        durability = self._killed_session(tmp_path)
        raw = durability.journal_path.read_bytes()
        durability.journal_path.write_bytes(raw[:-5])
        recovered = recover(durability)
        clean = _run_clean("dense_a", "incremental")
        _assert_identical(clean, recovered.resume(golden_trace("dense_a")))

    def test_all_checkpoints_destroyed_raises(self, tmp_path):
        durability = self._killed_session(tmp_path)
        for path in durability.checkpoint_directory.glob("ckpt-*.json"):
            path.unlink()
        with pytest.raises(RecoveryError, match="checkpoint"):
            recover(durability)


class TestAccumulationDrift:
    """Dense multi-event-per-interval workloads, where adopt-order drift
    is real: rebuilding engine mass by sorted re-assignment lands an ulp
    away from the live accumulation.  Checkpoints carry the float state
    bitwise, so the newest-checkpoint fast path stays exact; without
    that state recovery must fall back (ultimately to the offset-0
    full-replay floor) rather than resume from drifted bits."""

    def _dense_workload(self):
        from repro.core.engine import EngineSpec
        from repro.workloads.config import ExperimentConfig
        from repro.workloads.generator import WorkloadGenerator
        from repro.workloads.traces import TraceConfig, TraceGenerator

        config = ExperimentConfig(k=24, n_users=200, interest_backend="dense")
        instance = WorkloadGenerator(root_seed=2018).build(config)
        trace = TraceGenerator(
            config, TraceConfig(n_ops=12), root_seed=2018
        ).generate()
        return instance, trace, EngineSpec(kind="vectorized")

    def _clean(self, instance, trace, engine):
        return StreamDriver(
            instance, policy="incremental", engine=engine
        ).run(trace)

    def test_newest_checkpoint_restores_bit_exact(self, tmp_path):
        instance, trace, engine = self._dense_workload()
        clean = self._clean(instance, trace, engine)
        for kill_at in (4, 7, 8):
            durability = Durability(tmp_path / f"k{kill_at}", checkpoint_every=4)
            StreamDriver(
                instance,
                policy="incremental",
                engine=engine,
                durability=durability,
            ).run(trace, stop_after=kill_at)
            recovered = recover(durability)
            # the float-state snapshot keeps the newest checkpoint usable
            assert recovered.checkpoint_offset == (kill_at // 4) * 4
            _assert_identical(clean, recovered.resume(trace))

    def test_checkpoint_without_float_state_falls_back(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointStore

        instance, trace, engine = self._dense_workload()
        clean = self._clean(instance, trace, engine)
        durability = Durability(tmp_path / "ses", checkpoint_every=4)
        StreamDriver(
            instance, policy="incremental", engine=engine, durability=durability
        ).run(trace, stop_after=8)
        # rewrite every non-floor checkpoint as an old-format one (no
        # bitwise float state): verification must reject the drifted
        # restores and recovery must land on the offset-0 floor
        store = CheckpointStore(durability.checkpoint_directory)
        for offset in store.offsets():
            if offset == 0:
                continue
            body = store.load(offset)
            body.pop("float_state")
            store.write(offset, body)
        recovered = recover(durability)
        assert recovered.checkpoint_offset == 0
        _assert_identical(clean, recovered.resume(trace))


class TestOracleSampling:
    def test_resumed_oracle_regret_matches_clean(self, tmp_path):
        clean = _run_clean("dense_b", "incremental", oracle_every=4)
        durability = Durability(tmp_path / "ses")
        StreamDriver(
            golden_instance("dense_b"),
            policy="incremental",
            engine=engine_for("dense_b"),
            oracle_every=4,
            durability=durability,
        ).run(golden_trace("dense_b"), stop_after=6)
        resumed = recover(durability).resume(golden_trace("dense_b"))
        assert [r.regret for r in resumed.records] == [
            r.regret for r in clean.records
        ]
