"""Qualitative reproduction of the paper's Figure-1 findings, in miniature.

The paper's Section IV.B reports four phenomena.  These tests verify each
on scaled-down paper-shaped workloads (same parameter *ratios*: |E| = 2k,
|T| = 3k/2, 25-ish locations, theta = 20, competing ~ 8.1/interval), so a
regression that flips a figure's shape fails CI long before anyone reruns
the full benchmarks.
"""

import pytest

from repro.harness.runner import paper_methods, run_point, run_sweep
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sweeps import sweep_intervals, sweep_k

#: Shrunk population, paper-shaped ratios.  Chosen large enough for the
#: orderings to be stable across seeds (verified over seeds 0..4).
BASE = ExperimentConfig(n_users=400)


@pytest.fixture(scope="module")
def k_sweep_table():
    return run_sweep(
        sweep_k((20, 40, 60), base=BASE), x_label="k", root_seed=7
    )


@pytest.fixture(scope="module")
def interval_sweep_table():
    return run_sweep(
        sweep_intervals(k=40, factors=(0.2, 1.5, 3.0), base=BASE),
        x_label="|T|",
        root_seed=7,
    )


class TestFig1aShape:
    """GRD wins everywhere; RAND beats TOP; GRD-RAND gap grows with k."""

    def test_grd_wins_at_every_k(self, k_sweep_table):
        for x in k_sweep_table.x_values():
            assert k_sweep_table.winner_at(x) == "GRD"

    def test_rand_overtakes_top_as_k_grows(self, k_sweep_table):
        """TOP 'reports considerably low utility scores in all cases'.

        TOP's self-cannibalization worsens with k (it keeps stacking the
        globally-top assignments into the same few intervals), so RAND
        passes it once k is large enough; at our miniature scale that
        happens from the middle of the grid onward.
        """
        _, rand = k_sweep_table.series("RAND")
        _, top = k_sweep_table.series("TOP")
        assert all(r > t for r, t in zip(rand[1:], top[1:]))

    def test_grd_rand_gap_grows_with_k(self, k_sweep_table):
        _, grd = k_sweep_table.series("GRD")
        _, rand = k_sweep_table.series("RAND")
        gaps = [g - r for g, r in zip(grd, rand)]
        assert gaps[-1] > gaps[0]

    def test_utilities_grow_with_k(self, k_sweep_table):
        for method in ("GRD", "RAND"):
            _, ys = k_sweep_table.series(method)
            assert all(a < b for a, b in zip(ys, ys[1:]))


class TestFig1bShape:
    """GRD is the slowest method and RAND is essentially free."""

    def test_grd_slowest_top_middle_rand_cheapest(self, k_sweep_table):
        for x in k_sweep_table.x_values():
            rows = {
                row.method: row.runtime_seconds
                for row in k_sweep_table.rows
                if row.x == x
            }
            assert rows["RAND"] < rows["TOP"]
            assert rows["RAND"] < rows["GRD"]

    def test_grd_time_grows_with_k(self, k_sweep_table):
        _, times = k_sweep_table.series("GRD", value="time")
        assert times[-1] > times[0]

    def test_grd_top_gap_grows_with_k(self, k_sweep_table):
        """Updates scale with k while initial scoring does not."""
        _, grd = k_sweep_table.series("GRD", value="time")
        _, top = k_sweep_table.series("TOP", value="time")
        assert grd[-1] - top[-1] > grd[0] - top[0]


class TestFig1cShape:
    """More intervals -> higher GRD and TOP utility (less stacking)."""

    def test_grd_utility_increases_with_intervals(self, interval_sweep_table):
        _, ys = interval_sweep_table.series("GRD")
        assert ys[0] < ys[-1]

    def test_top_utility_increases_with_intervals(self, interval_sweep_table):
        _, ys = interval_sweep_table.series("TOP")
        assert ys[0] < ys[-1]

    def test_grd_wins_at_every_interval_count(self, interval_sweep_table):
        for x in interval_sweep_table.x_values():
            assert interval_sweep_table.winner_at(x) == "GRD"


class TestFig1dShape:
    """Scoring cost grows with |T| for GRD and TOP; RAND stays flat."""

    def test_grd_time_grows_with_intervals(self, interval_sweep_table):
        _, times = interval_sweep_table.series("GRD", value="time")
        assert times[-1] > times[0]

    def test_rand_cheapest_everywhere(self, interval_sweep_table):
        for x in interval_sweep_table.x_values():
            assert interval_sweep_table.winner_at(x, value="time") == "RAND"


class TestCompetitionEffect:
    """Extension check: more competing events -> lower achievable utility."""

    def test_competition_monotonically_hurts(self):
        generator = WorkloadGenerator(root_seed=9)
        utilities = []
        for mean_competing in (0.0, 8.1, 16.2):
            config = ExperimentConfig(
                k=20, n_users=200, mean_competing=mean_competing
            )
            instance = generator.build(config)
            results = run_point(instance, 20, paper_methods(seed=1))
            utilities.append(results["GRD"].utility)
        assert utilities[0] > utilities[1] > utilities[2]
