"""Integration tests: the full pipeline EBSN -> instance -> solvers -> report."""

import numpy as np
import pytest

from repro.algorithms import (
    AnnealingScheduler,
    GreedyScheduler,
    LazyGreedyScheduler,
    LocalSearchRefiner,
    RandomScheduler,
    TopKScheduler,
)
from repro.core.feasibility import is_schedule_feasible
from repro.data.serialization import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.data.meetup import InstanceBuildParams, build_instance
from repro.harness.report import format_figure
from repro.harness.runner import run_sweep
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sweeps import sweep_k


@pytest.fixture(scope="module")
def pipeline_instance():
    """A mid-size instance built through the real EBSN pipeline."""
    snapshot = MeetupStyleGenerator(
        EBSNConfig(n_users=250, n_groups=20, n_events=400)
    ).generate(seed=17)
    params = InstanceBuildParams(
        n_candidate_events=30, n_intervals=20,
        mean_competing_per_interval=5.0, n_locations=8,
    )
    return build_instance(snapshot, params, seed=18)


class TestFullPipeline:
    def test_all_solvers_complete(self, pipeline_instance):
        k = 15
        solvers = [
            GreedyScheduler(),
            LazyGreedyScheduler(),
            TopKScheduler(),
            RandomScheduler(seed=0),
            AnnealingScheduler(seed=1, steps=300),
        ]
        for solver in solvers:
            result = solver.solve(pipeline_instance, k)
            assert result.achieved_k == k, solver.name
            assert is_schedule_feasible(pipeline_instance, result.schedule)
            assert result.utility > 0

    def test_refinement_chain(self, pipeline_instance):
        """RAND -> local search -> never worse; GRD -> LS -> never worse."""
        k = 12
        rand = RandomScheduler(seed=3).solve(pipeline_instance, k)
        refiner = LocalSearchRefiner(seed=4, max_rounds=5)
        improved = refiner.refine_result(pipeline_instance, rand)
        assert improved.utility >= rand.utility - 1e-9

        grd = GreedyScheduler().solve(pipeline_instance, k)
        polished = refiner.refine_result(pipeline_instance, grd)
        assert polished.utility >= grd.utility - 1e-9

    def test_serialization_through_the_pipeline(self, pipeline_instance):
        payload = instance_to_dict(pipeline_instance)
        rebuilt = instance_from_dict(payload)
        result = GreedyScheduler().solve(rebuilt, 10)
        schedule_payload = schedule_to_dict(result.schedule)
        restored = schedule_from_dict(schedule_payload, pipeline_instance)
        from repro.core.objective import total_utility

        assert total_utility(pipeline_instance, restored) == pytest.approx(
            result.utility, abs=1e-9
        )

    def test_engines_agree_at_pipeline_scale(self, pipeline_instance):
        vec = GreedyScheduler(engine="vectorized").solve(pipeline_instance, 8)
        ref = GreedyScheduler(engine="reference").solve(pipeline_instance, 8)
        # schedules may diverge on float-level score ties, utilities may not
        assert vec.utility == pytest.approx(ref.utility, abs=1e-6)


class TestSweepIntegration:
    def test_mini_sweep_produces_reportable_table(self):
        base = ExperimentConfig(n_users=60)
        table = run_sweep(
            sweep_k((5, 10), base=base), x_label="k", title="mini", root_seed=2
        )
        text = format_figure(table)
        assert "mini" in text
        assert "GRD" in text
        # utilities grow with k for every method on these easy instances
        for method in table.methods():
            _, ys = table.series(method)
            assert ys[0] <= ys[1] + 1e-9

    def test_workload_generator_shares_snapshot_across_sweep(self):
        generator = WorkloadGenerator(root_seed=5)
        base = ExperimentConfig(n_users=60)
        sweep = sweep_k((5, 10), base=base)
        run_sweep(
            sweep, x_label="k", root_seed=5, workload=generator
        )
        # the largest config (k=10) sized the pool; the k=5 build reused it
        snapshot = generator.snapshot_for(sweep[0][1])
        assert snapshot.network.n_events >= sweep[0][1].required_pool_events
