"""Scale smoke tests: the pipeline at a meaningful fraction of Meetup-CA.

Not a benchmark — a guard that nothing falls over (memory, dtype, index
width) when sizes grow by an order of magnitude over the unit-test
defaults.  The full 42,444-user configuration is exercised shape-only
(config arithmetic), not materialized, to keep the suite fast.
"""

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.top import TopKScheduler
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.ebsn.stats import mean_overlapping_events
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator


class TestQuarterScaleEBSN:
    @pytest.fixture(scope="class")
    def snapshot(self):
        # ~10% of Meetup-CA: 4,244 users, 1,600 events
        config = EBSNConfig.meetup_california(scale=0.1)
        return MeetupStyleGenerator(config).generate(seed=1)

    def test_sizes(self, snapshot):
        assert snapshot.network.n_users == 4244
        assert snapshot.network.n_events == 1600

    def test_overlap_calibration_holds_at_scale(self, snapshot):
        measured = mean_overlapping_events(snapshot.network)
        assert measured == pytest.approx(8.1, rel=0.15)

    def test_network_consistent(self, snapshot):
        snapshot.network.validate()


class TestLargeWorkloadPoint:
    def test_k100_point_solves_at_5k_users(self):
        """One paper-default grid point at 5,000 users end to end."""
        config = ExperimentConfig(k=100, n_users=5000)
        instance = WorkloadGenerator(root_seed=1).build(config)
        assert instance.n_users == 5000
        assert instance.n_events == 200
        assert instance.n_intervals == 150

        grd = GreedyScheduler().solve(instance, 100)
        top = TopKScheduler().solve(instance, 100)
        assert grd.achieved_k == 100
        assert grd.utility > top.utility  # the headline finding, at scale


class TestFullScaleConfigArithmetic:
    def test_meetup_scale_config_shapes(self):
        config = ExperimentConfig(k=500).at_meetup_scale()
        assert config.n_users == 42_444
        assert config.events == 1000
        assert config.intervals == 750
        # the pool needed for the biggest sweep point stays within the
        # full Meetup event count's order of magnitude
        assert config.required_pool_events < 30_000
