"""Tests of the stopwatch and timed helper."""

import time

import pytest

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_accumulates_across_blocks(self):
        stopwatch = Stopwatch()
        with stopwatch:
            time.sleep(0.01)
        first = stopwatch.elapsed
        with stopwatch:
            time.sleep(0.01)
        assert stopwatch.elapsed > first

    def test_elapsed_while_running(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        time.sleep(0.005)
        assert stopwatch.elapsed > 0
        assert stopwatch.running
        stopwatch.stop()
        assert not stopwatch.running

    def test_double_start_rejected(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        with pytest.raises(RuntimeError, match="already running"):
            stopwatch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset(self):
        stopwatch = Stopwatch()
        with stopwatch:
            time.sleep(0.002)
        stopwatch.reset()
        assert stopwatch.elapsed == 0.0

    def test_stop_returns_total(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        total = stopwatch.stop()
        assert total == stopwatch.elapsed


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(sum, range(100))
        assert result == 4950
        assert seconds >= 0.0

    def test_passes_kwargs(self):
        result, _ = timed(sorted, [3, 1, 2], reverse=True)
        assert result == [3, 2, 1]
