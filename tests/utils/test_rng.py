"""Tests of the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, ensure_rng


class TestEnsureRng:
    def test_accepts_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_accepts_int_seed_deterministically(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_passes_generators_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator


class TestSeedSequenceFactory:
    def test_children_are_deterministic(self):
        a = SeedSequenceFactory(7).spawn().integers(10_000)
        b = SeedSequenceFactory(7).spawn().integers(10_000)
        assert a == b

    def test_children_are_independent_streams(self):
        factory = SeedSequenceFactory(7)
        first = factory.spawn().integers(10_000)
        second = factory.spawn().integers(10_000)
        assert first != second  # overwhelmingly likely for distinct streams

    def test_spawn_count_tracked(self):
        factory = SeedSequenceFactory(0)
        factory.spawn()
        factory.spawn_many(3)
        assert factory.spawned == 4

    def test_spawn_many_length(self):
        assert len(SeedSequenceFactory(0).spawn_many(5)) == 5

    def test_spawn_many_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SeedSequenceFactory(0).spawn_many(-1)

    def test_child_order_is_position_stable(self):
        """The i-th child is the same regardless of later spawns."""
        factory_a = SeedSequenceFactory(3)
        children_a = [factory_a.spawn().integers(10**6) for _ in range(3)]
        factory_b = SeedSequenceFactory(3)
        children_b = [factory_b.spawn().integers(10**6) for _ in range(5)][:3]
        assert children_a == children_b
