"""Tests of the validation guards."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_probability_matrix,
)


class TestScalarGuards:
    def test_check_positive_passes_and_returns(self):
        assert check_positive(2.5, "x") == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(0.0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative(-0.1, "x")

    def test_check_fraction(self):
        assert check_fraction(1.0, "p") == 1.0
        assert check_fraction(0.0, "p") == 0.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_fraction(1.01, "p")


class TestIndexGuard:
    def test_valid_index_returned_as_int(self):
        value = check_index(np.int64(3), 5, "i")
        assert value == 3
        assert isinstance(value, int)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError, match=r"\[0, 5\)"):
            check_index(5, 5, "i")

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError, match="integer index"):
            check_index(2.5, 5, "i")


class TestMatrixGuard:
    def test_valid_matrix_passes(self):
        matrix = check_probability_matrix(np.array([[0.0, 1.0]]), "m")
        assert matrix.dtype == float

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="m entries"):
            check_probability_matrix(np.array([[2.0]]), "m")

    def test_nan_rejected_before_range(self):
        with pytest.raises(ValueError, match="NaN"):
            check_probability_matrix(np.array([[np.nan]]), "m")

    def test_empty_matrix_passes(self):
        check_probability_matrix(np.zeros((0, 3)), "m")

    def test_lists_coerced(self):
        matrix = check_probability_matrix([[0.5, 0.5]], "m")
        assert isinstance(matrix, np.ndarray)
