"""Atomic artifact saves + torn sharded-directory detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SerializationError
from repro.data.serialization import (
    load_instance,
    load_instance_npz,
    load_sharded_instance,
    save_instance,
    save_instance_npz,
    save_sharded_instance,
)

from tests.conftest import make_random_instance


class TestAtomicWrites:
    def test_json_save_leaves_no_tmp_sibling(self, tmp_path):
        save_instance(make_random_instance(seed=900), tmp_path / "inst.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["inst.json"]
        assert load_instance(tmp_path / "inst.json").n_users == 12

    def test_json_save_replaces_existing_atomically(self, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(make_random_instance(seed=900), path)
        save_instance(make_random_instance(seed=901, n_users=7), path)
        assert load_instance(path).n_users == 7
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_failed_save_cleans_its_tmp_file(self, tmp_path):
        instance = make_random_instance(seed=902)
        with pytest.raises(FileNotFoundError):
            save_instance(instance, tmp_path / "no-such-dir" / "inst.json")
        # a failure inside the body must not strand a tmp sibling either
        import repro.data.serialization as ser

        def boom(handle):
            handle.write(b"partial")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            ser._atomic_write(tmp_path / "inst.json", boom)
        assert list(tmp_path.iterdir()) == []

    def test_npz_save_appends_suffix_and_stays_atomic(self, tmp_path):
        instance = make_random_instance(seed=903)
        save_instance_npz(instance, tmp_path / "bare")
        save_instance_npz(instance, tmp_path / "named.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "bare.npz", "named.npz",
        ]
        for name in ("bare.npz", "named.npz"):
            back = load_instance_npz(tmp_path / name)
            np.testing.assert_array_equal(
                back.interest.candidate, instance.interest.candidate
            )


class TestTornShardedDirectories:
    @pytest.fixture()
    def saved(self, tmp_path):
        pytest.importorskip("scipy")
        from repro.workloads.generator import synthesize_sharded_instance

        instance = synthesize_sharded_instance(
            300, n_events=6, n_intervals=3, density=0.1, shards=2,
            block_users=128, seed=13,
        )
        save_sharded_instance(instance, tmp_path / "inst")
        return tmp_path / "inst"

    def test_missing_manifest_is_typed(self, saved):
        (saved / "manifest.json").unlink()
        with pytest.raises(SerializationError, match="manifest"):
            load_sharded_instance(saved)

    def test_missing_block_named_in_error(self, saved):
        victim = sorted(saved.glob("candidate_block*"))[0]
        victim.unlink()
        with pytest.raises(SerializationError, match=victim.name):
            load_sharded_instance(saved)

    def test_missing_activity_detected(self, saved):
        (saved / "activity.npy").unlink()
        with pytest.raises(SerializationError, match="activity.npy"):
            load_sharded_instance(saved)

    def test_intact_directory_still_loads(self, saved):
        back = load_sharded_instance(saved)
        assert back.interest.backend == "sharded"

    def test_manifest_is_the_commit_point(self, saved):
        # every file the manifest references exists the moment it lands:
        # a reader that sees manifest.json sees a complete directory
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        n_blocks = -(-manifest["plan"]["n_users"] // manifest["plan"]["block_users"])
        for name in ("candidate", "competing"):
            for index in range(n_blocks):
                assert (saved / f"{name}_block{index:05d}.npz").is_file()
