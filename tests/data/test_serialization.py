"""Tests of instance/schedule JSON and NPZ round-tripping."""

import numpy as np
import pytest

from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule
from repro.data.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_instance_npz,
    save_instance,
    save_instance_npz,
    schedule_from_dict,
    schedule_to_dict,
)

from tests.conftest import make_random_instance


class TestInstanceDictRoundTrip:
    def test_round_trip_preserves_shapes(self):
        instance = make_random_instance(seed=200)
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert rebuilt.n_users == instance.n_users
        assert rebuilt.n_events == instance.n_events
        assert rebuilt.n_intervals == instance.n_intervals
        assert rebuilt.n_competing == instance.n_competing

    def test_round_trip_preserves_matrices(self):
        instance = make_random_instance(seed=201)
        rebuilt = instance_from_dict(instance_to_dict(instance))
        np.testing.assert_allclose(
            rebuilt.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_allclose(
            rebuilt.interest.competing, instance.interest.competing
        )
        np.testing.assert_allclose(
            rebuilt.activity.matrix, instance.activity.matrix
        )

    def test_round_trip_preserves_entities(self):
        instance = make_random_instance(seed=202)
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert rebuilt.events == instance.events
        assert rebuilt.competing == instance.competing
        assert rebuilt.theta == instance.theta

    def test_round_trip_preserves_utilities(self):
        """The real contract: solving the rebuilt instance gives same numbers."""
        instance = make_random_instance(seed=203)
        rebuilt = instance_from_dict(instance_to_dict(instance))
        schedule_a = Schedule(instance, [Assignment(0, 0), Assignment(1, 2)])
        schedule_b = Schedule(rebuilt, [Assignment(0, 0), Assignment(1, 2)])
        assert total_utility(instance, schedule_a) == pytest.approx(
            total_utility(rebuilt, schedule_b), abs=1e-12
        )

    def test_unknown_version_rejected(self):
        instance = make_random_instance(seed=204)
        payload = instance_to_dict(instance)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            instance_from_dict(payload)


class TestInstanceFiles:
    def test_json_file_round_trip(self, tmp_path):
        instance = make_random_instance(seed=205)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        rebuilt = load_instance(path)
        np.testing.assert_allclose(
            rebuilt.interest.candidate, instance.interest.candidate
        )

    def test_npz_file_round_trip(self, tmp_path):
        instance = make_random_instance(seed=206)
        path = tmp_path / "instance.npz"
        save_instance_npz(instance, path)
        rebuilt = load_instance_npz(path)
        np.testing.assert_allclose(
            rebuilt.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_allclose(
            rebuilt.activity.matrix, instance.activity.matrix
        )
        assert rebuilt.events == instance.events

    def test_npz_is_smaller_than_json_for_dense_instances(self, tmp_path):
        instance = make_random_instance(seed=207, n_users=60, n_events=20)
        json_path = tmp_path / "i.json"
        npz_path = tmp_path / "i.npz"
        save_instance(instance, json_path)
        save_instance_npz(instance, npz_path)
        assert npz_path.stat().st_size < json_path.stat().st_size


class TestScheduleRoundTrip:
    def test_round_trip(self):
        instance = make_random_instance(seed=208)
        schedule = Schedule(instance, [Assignment(0, 1), Assignment(3, 2)])
        rebuilt = schedule_from_dict(schedule_to_dict(schedule), instance)
        assert rebuilt == schedule

    def test_empty_schedule(self):
        instance = make_random_instance(seed=209)
        rebuilt = schedule_from_dict(
            schedule_to_dict(Schedule(instance)), instance
        )
        assert len(rebuilt) == 0

    def test_unknown_version_rejected(self):
        instance = make_random_instance(seed=210)
        payload = schedule_to_dict(Schedule(instance))
        payload["format_version"] = 0
        with pytest.raises(ValueError, match="format version"):
            schedule_from_dict(payload, instance)


class TestSparseBackendRoundTrip:
    def _sparse_instance(self, seed=300):
        return make_random_instance(
            seed=seed, interest_density=0.3, interest_backend="sparse"
        )

    def test_json_round_trip_preserves_backend_and_values(self):
        instance = self._sparse_instance()
        rebuilt = instance_from_dict(instance_to_dict(instance))
        assert rebuilt.interest.backend == "sparse"
        np.testing.assert_array_equal(
            rebuilt.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_array_equal(
            rebuilt.interest.competing, instance.interest.competing
        )

    def test_payload_is_canonical_and_zero_free(self):
        import json

        instance = self._sparse_instance(seed=301)
        payload = instance_to_dict(instance)
        interest = payload["interest"]
        assert interest["backend"] == "sparse"
        assert all(value != 0.0 for value in interest["candidate"]["values"])
        # serializing the round-tripped instance reproduces the bytes
        rebuilt = instance_from_dict(payload)
        assert json.dumps(instance_to_dict(rebuilt)) == json.dumps(payload)

    def test_file_round_trip(self, tmp_path):
        instance = self._sparse_instance(seed=302)
        path = tmp_path / "sparse.json"
        save_instance(instance, path)
        rebuilt = load_instance(path)
        assert rebuilt.interest.backend == "sparse"
        np.testing.assert_array_equal(
            rebuilt.interest.candidate, instance.interest.candidate
        )

    def test_npz_round_trip_stays_sparse(self, tmp_path):
        instance = self._sparse_instance(seed=303)
        path = tmp_path / "sparse.npz"
        save_instance_npz(instance, path)
        rebuilt = load_instance_npz(path)
        assert rebuilt.interest.backend == "sparse"
        np.testing.assert_array_equal(
            rebuilt.interest.candidate, instance.interest.candidate
        )
        np.testing.assert_array_equal(
            rebuilt.interest.competing, instance.interest.competing
        )

    def test_round_trip_preserves_utilities(self):
        instance = self._sparse_instance(seed=304)
        rebuilt = instance_from_dict(instance_to_dict(instance))
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(1, 0)])
        rebuilt_schedule = Schedule(
            rebuilt, [Assignment(0, 0), Assignment(1, 0)]
        )
        assert total_utility(rebuilt, rebuilt_schedule) == pytest.approx(
            total_utility(instance, schedule), abs=1e-12
        )
