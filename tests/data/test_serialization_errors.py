"""Negative-path tests for the serialization layer."""

import json

import pytest

from repro.core.errors import UnknownEntityError
from repro.data.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


class TestInstancePayloadErrors:
    def test_missing_version_rejected(self):
        instance = make_random_instance(seed=800)
        payload = instance_to_dict(instance)
        del payload["format_version"]
        with pytest.raises(ValueError, match="format version"):
            instance_from_dict(payload)

    def test_corrupted_interest_matrix_caught_by_validation(self):
        instance = make_random_instance(seed=801)
        payload = instance_to_dict(instance)
        payload["interest"]["candidate"][0][0] = 7.5  # outside [0, 1]
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            instance_from_dict(payload)

    def test_dangling_competing_interval_caught(self):
        from repro.core.errors import InstanceValidationError

        instance = make_random_instance(seed=802)
        payload = instance_to_dict(instance)
        payload["competing"][0]["interval"] = 999
        with pytest.raises(InstanceValidationError, match="interval 999"):
            instance_from_dict(payload)

    def test_load_nonexistent_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_instance(tmp_path / "missing.json")

    def test_load_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_instance(path)


class TestSchedulePayloadErrors:
    def test_schedule_against_wrong_instance_rejected(self):
        big = make_random_instance(seed=803, n_events=6)
        small = make_random_instance(seed=804, n_events=2)
        schedule = Schedule(big, [Assignment(5, 0)])
        payload = schedule_to_dict(schedule)
        with pytest.raises(UnknownEntityError, match="out of range"):
            schedule_from_dict(payload, small)

    def test_duplicate_event_in_payload_rejected(self):
        from repro.core.errors import DuplicateEventError

        instance = make_random_instance(seed=805)
        payload = {
            "format_version": 1,
            "assignments": [
                {"event": 0, "interval": 0},
                {"event": 0, "interval": 1},
            ],
        }
        with pytest.raises(DuplicateEventError):
            schedule_from_dict(payload, instance)
