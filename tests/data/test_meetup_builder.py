"""Tests of the EBSN -> SES instance builder (Section IV.A pipeline)."""

import numpy as np
import pytest

from repro.data.meetup import InstanceBuildParams, build_instance
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.ebsn.jaccard import jaccard


@pytest.fixture(scope="module")
def snapshot():
    config = EBSNConfig(n_users=150, n_groups=15, n_events=300)
    return MeetupStyleGenerator(config).generate(seed=5)


@pytest.fixture
def params():
    return InstanceBuildParams(
        n_candidate_events=20,
        n_intervals=15,
        mean_competing_per_interval=4.0,
        n_locations=5,
        theta=20.0,
    )


class TestParamsValidation:
    def test_defaults_follow_paper(self):
        params = InstanceBuildParams(n_candidate_events=10, n_intervals=5)
        assert params.mean_competing_per_interval == 8.1
        assert params.n_locations == 25
        assert params.theta == 20.0
        assert params.xi_range == (1.0, 20.0 / 3.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            InstanceBuildParams(n_candidate_events=0, n_intervals=5)
        with pytest.raises(ValueError):
            InstanceBuildParams(n_candidate_events=5, n_intervals=0)

    def test_rejects_xi_exceeding_theta(self):
        with pytest.raises(ValueError, match="exceeds theta"):
            InstanceBuildParams(
                n_candidate_events=5, n_intervals=5, theta=3.0,
                xi_range=(1.0, 5.0),
            )

    def test_rejects_unknown_sigma_source(self):
        with pytest.raises(ValueError, match="sigma_source"):
            InstanceBuildParams(
                n_candidate_events=5, n_intervals=5, sigma_source="oracle"
            )


class TestBuiltInstance:
    def test_shapes(self, snapshot, params):
        instance = build_instance(snapshot, params, seed=1)
        assert instance.n_users == snapshot.network.n_users
        assert instance.n_events == 20
        assert instance.n_intervals == 15
        assert instance.theta == 20.0

    def test_locations_respect_budget(self, snapshot, params):
        instance = build_instance(snapshot, params, seed=2)
        assert all(0 <= e.location < params.n_locations for e in instance.events)

    def test_xi_within_range(self, snapshot, params):
        instance = build_instance(snapshot, params, seed=3)
        low, high = params.xi_range
        for event in instance.events:
            assert low <= event.required_resources <= high

    def test_competing_density_near_mean(self, snapshot):
        params = InstanceBuildParams(
            n_candidate_events=10, n_intervals=30,
            mean_competing_per_interval=4.0, n_locations=5,
        )
        instance = build_instance(snapshot, params, seed=4)
        observed = instance.n_competing / params.n_intervals
        assert observed == pytest.approx(4.0, abs=1.5)

    def test_interest_is_jaccard_of_tags(self, snapshot, params):
        """mu must equal the paper's Jaccard construction exactly."""
        instance = build_instance(snapshot, params, seed=5)
        for u in range(0, instance.n_users, 37):
            user = instance.users[u]
            for e in range(0, instance.n_events, 7):
                event = instance.events[e]
                assert instance.interest.mu_event(u, e) == pytest.approx(
                    jaccard(user.tags, event.tags), abs=1e-12
                )

    def test_candidates_and_rivals_disjoint(self, snapshot, params):
        """A pool event may serve as candidate or rival, never both."""
        instance = build_instance(snapshot, params, seed=6)
        candidate_names = {e.name for e in instance.events}
        rival_names = {c.name for c in instance.competing}
        assert not candidate_names & rival_names

    def test_uniform_sigma_source(self, snapshot, params):
        instance = build_instance(snapshot, params, seed=7)
        sigma = instance.activity.matrix
        assert 0.0 <= sigma.min() and sigma.max() <= 1.0
        assert sigma.std() > 0.1  # genuinely random, not constant

    def test_checkins_sigma_source(self, snapshot):
        params = InstanceBuildParams(
            n_candidate_events=10, n_intervals=30, sigma_source="checkins",
            mean_competing_per_interval=2.0,
        )
        instance = build_instance(snapshot, params, seed=8)
        weekly = snapshot.checkins.estimate_activity().matrix
        # interval t reuses weekly slot t % n_slots
        np.testing.assert_allclose(
            instance.activity.matrix[:, 0], weekly[:, 0]
        )
        np.testing.assert_allclose(
            instance.activity.matrix[:, weekly.shape[1]], weekly[:, 0]
        )

    def test_pool_exhaustion_rejected(self, snapshot):
        params = InstanceBuildParams(
            n_candidate_events=10_000, n_intervals=5
        )
        with pytest.raises(ValueError, match="only"):
            build_instance(snapshot, params, seed=9)

    def test_reproducible_given_seed(self, snapshot, params):
        a = build_instance(snapshot, params, seed=10)
        b = build_instance(snapshot, params, seed=10)
        assert [e.name for e in a.events] == [e.name for e in b.events]
        np.testing.assert_array_equal(
            a.interest.candidate, b.interest.candidate
        )

    def test_solvable_end_to_end(self, snapshot, params):
        from repro.algorithms.greedy import GreedyScheduler

        instance = build_instance(snapshot, params, seed=11)
        result = GreedyScheduler().solve(instance, 5)
        assert result.achieved_k == 5
        assert result.utility > 0
