"""Shared helpers for the static-analysis suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import resolve_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture
def lint_fixture():
    """Lint one fixture package (optionally with a rule subset)."""

    def _lint(package: str, *rule_names: str):
        rules = resolve_rules(list(rule_names) or None)
        return run_lint([FIXTURES / package], rules)

    return _lint


def rules_of(result):
    """The multiset of rule names that fired, for compact assertions."""
    return [finding.rule for finding in result.findings]
