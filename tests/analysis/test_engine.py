"""The lint engine itself: suppression, filtering, collection, errors."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ALL_RULES,
    LintError,
    RULE_NAMES,
    default_rules,
    resolve_rules,
    run_lint,
)
from repro.analysis.engine import collect_files


def test_rule_catalogue_is_well_formed():
    assert len(RULE_NAMES) == 7
    assert len(set(RULE_NAMES)) == len(RULE_NAMES)
    for rule in ALL_RULES:
        assert rule.name and rule.name != "abstract"
        assert rule.rationale


def test_resolve_rules_filters_and_orders():
    rules = resolve_rules(["determinism", "freeze-ban"])
    assert [rule.name for rule in rules] == ["determinism", "freeze-ban"]
    # duplicates collapse, order of first mention wins
    rules = resolve_rules(["freeze-ban", "determinism", "freeze-ban"])
    assert [rule.name for rule in rules] == ["freeze-ban", "determinism"]


def test_resolve_rules_unknown_name_is_internal_error():
    with pytest.raises(LintError, match="no-such-rule"):
        resolve_rules(["no-such-rule"])


def test_resolve_rules_none_gives_full_battery():
    assert [r.name for r in resolve_rules(None)] == list(RULE_NAMES)


def test_missing_path_is_internal_error(tmp_path):
    with pytest.raises(LintError, match="no such path"):
        run_lint([tmp_path / "nowhere"], default_rules())


def test_syntax_error_is_internal_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    with pytest.raises(LintError, match="cannot parse"):
        run_lint([tmp_path], default_rules())


def test_no_rules_is_internal_error(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(LintError, match="no rules"):
        run_lint([tmp_path], [])


def test_collect_skips_caches_and_accepts_files(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "mod.cpython-311.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "notes.txt").write_text("not python\n", encoding="utf-8")
    files = collect_files([tmp_path, tmp_path / "pkg" / "mod.py"])
    assert [f.name for f in files] == ["mod.py"]


def test_line_suppression_is_rule_specific(tmp_path):
    tree = tmp_path / "stream"
    tree.mkdir()
    source = (
        "def f(s):\n"
        "    return s.instance  # ses-lint: disable=determinism\n"
    )
    (tree / "driver.py").write_text(source, encoding="utf-8")
    result = run_lint([tmp_path], resolve_rules(["freeze-ban"]))
    # the comment names a different rule: the finding must survive
    assert [f.rule for f in result.findings] == ["freeze-ban"]
    assert result.suppressed == 0


def test_file_level_suppression(tmp_path):
    tree = tmp_path / "stream"
    tree.mkdir()
    source = (
        "# ses-lint: disable-file=freeze-ban\n"
        "def f(s):\n"
        "    return s.instance\n"
        "def g(s):\n"
        "    return s.live.freeze()\n"
    )
    (tree / "driver.py").write_text(source, encoding="utf-8")
    result = run_lint([tmp_path], resolve_rules(["freeze-ban"]))
    assert result.clean
    assert result.suppressed == 2


def test_exit_code_contract(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    result = run_lint([clean], default_rules())
    assert result.clean and result.exit_code == 0
    tree = tmp_path / "stream"
    tree.mkdir()
    (tree / "driver.py").write_text(
        "def f(s):\n    return s.instance\n", encoding="utf-8"
    )
    result = run_lint([tmp_path], default_rules())
    assert not result.clean and result.exit_code == 1


def test_findings_sorted_and_counted(tmp_path):
    tree = tmp_path / "stream"
    tree.mkdir()
    (tree / "driver.py").write_text(
        "def g(s):\n"
        "    return s.live.freeze()\n"
        "def f(s):\n"
        "    return s.instance\n",
        encoding="utf-8",
    )
    result = run_lint([tmp_path], default_rules())
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines)
    assert result.findings_by_rule() == {"freeze-ban": 2}
