"""Acceptance: the real tree lints clean, and mutations are caught.

The mutation tests copy real ``src`` modules into a throwaway tree and
break an invariant *in the copy* — deleting a ``LiveDelta`` dispatch
branch, stripping a ``@register_solver`` decorator — then assert the
matching rule fires.  ``src/`` itself is never touched.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import default_rules, resolve_rules, run_lint
from tests.analysis.conftest import SRC, rules_of


def test_whole_src_tree_is_clean():
    result = run_lint([SRC], default_rules())
    assert result.clean, "\n".join(f.format() for f in result.findings)
    assert result.files_checked > 50
    # the deliberately allow-listed freeze sites are counted, not hidden
    assert result.suppressed >= 2


class TestMutationCopies:
    """Each mutation must flip the lint verdict on an otherwise-clean copy."""

    @pytest.fixture
    def engine_copy(self, tmp_path):
        target = tmp_path / "core"
        target.mkdir()
        return Path(
            shutil.copy(SRC / "repro/core/engine.py", target / "engine.py")
        )

    @pytest.fixture
    def greedy_copy(self, tmp_path):
        target = tmp_path / "algorithms"
        target.mkdir()
        return Path(
            shutil.copy(
                SRC / "repro/algorithms/greedy.py", target / "greedy.py"
            )
        )

    def test_unmutated_engine_copy_is_clean(self, engine_copy):
        result = run_lint([engine_copy], resolve_rules(["delta-exhaustiveness"]))
        assert result.clean, rules_of(result)

    def test_deleting_delta_branch_fails_lint(self, engine_copy):
        source = engine_copy.read_text(encoding="utf-8")
        branch = (
            "        elif isinstance(delta, CompetingAdded):\n"
            "            self._on_competing_added(delta)\n"
        )
        assert branch in source, "mutation anchor moved; update this test"
        engine_copy.write_text(source.replace(branch, ""), encoding="utf-8")
        result = run_lint([engine_copy], resolve_rules(["delta-exhaustiveness"]))
        assert not result.clean
        assert any(
            f.rule == "delta-exhaustiveness" and "CompetingAdded" in f.message
            for f in result.findings
        )

    def test_unmutated_greedy_copy_is_clean(self, greedy_copy):
        result = run_lint(
            [greedy_copy], resolve_rules(["registry-completeness"])
        )
        assert result.clean, rules_of(result)

    def test_unregistering_solver_fails_lint(self, greedy_copy):
        source = greedy_copy.read_text(encoding="utf-8")
        decorator = (
            '@register_solver(summary="the paper\'s greedy '
            'Algorithm 1 (list-based)")\n'
        )
        assert decorator in source, "mutation anchor moved; update this test"
        greedy_copy.write_text(source.replace(decorator, ""), encoding="utf-8")
        result = run_lint(
            [greedy_copy], resolve_rules(["registry-completeness"])
        )
        assert not result.clean
        assert any(
            f.rule == "registry-completeness" and "GreedyScheduler" in f.message
            for f in result.findings
        )


class TestServeHotPathCoverage:
    """The serve/ hot path is inside the freeze-ban + determinism nets."""

    @pytest.fixture
    def pool_copy(self, tmp_path):
        target = tmp_path / "serve"
        target.mkdir()
        return Path(
            shutil.copy(SRC / "repro/serve/pool.py", target / "pool.py")
        )

    def test_unmutated_pool_copy_is_clean_with_one_allowlisted_freeze(
        self, pool_copy
    ):
        result = run_lint([pool_copy], resolve_rules(["freeze-ban"]))
        assert result.clean, rules_of(result)
        # the version_instance() freeze is counted as suppressed, not hidden
        assert result.suppressed == 1

    def test_stripping_the_freeze_allowlist_fails_lint(self, pool_copy):
        source = pool_copy.read_text(encoding="utf-8")
        marker = "  # ses-lint: disable=freeze-ban"
        assert marker in source, "allowlist anchor moved; update this test"
        pool_copy.write_text(source.replace(marker, ""), encoding="utf-8")
        result = run_lint([pool_copy], resolve_rules(["freeze-ban"]))
        assert not result.clean
        assert any(
            f.rule == "freeze-ban" and "freeze()" in f.message
            for f in result.findings
        )

    def test_serving_session_is_in_freeze_ban_scope(self, tmp_path):
        # a .freeze() call in a module whose path ends serve/session.py
        # must fire — proving the scope tuple actually covers the file
        target = tmp_path / "serve"
        target.mkdir()
        bad = target / "session.py"
        bad.write_text("def peek(live):\n    return live.freeze()\n")
        result = run_lint([bad], resolve_rules(["freeze-ban"]))
        assert rules_of(result) == ["freeze-ban"]

    def test_serve_tree_is_determinism_clean(self):
        result = run_lint(
            [SRC / "repro/serve"], resolve_rules(["determinism"])
        )
        assert result.clean, "\n".join(f.format() for f in result.findings)
        assert result.files_checked == 4

    def test_unseeded_rng_in_serve_fails_determinism(self, tmp_path):
        target = tmp_path / "serve"
        target.mkdir()
        bad = target / "workload.py"
        bad.write_text(
            "import numpy as np\n\n"
            "def sample():\n    return np.random.default_rng().random()\n"
        )
        result = run_lint([bad], resolve_rules(["determinism"]))
        assert rules_of(result) == ["determinism"]


def test_determinism_audit_of_benchmarks_and_conftests():
    """Satellite audit: harness code outside src stays deterministic.

    Fixture packages under tests/analysis/fixtures carry *seeded*
    violations, so the audit deliberately covers benchmarks/ and the
    conftest layer rather than the whole tests tree.
    """
    repo = SRC.parent
    targets = [repo / "benchmarks"]
    targets += sorted((repo / "tests").glob("**/conftest.py"))
    result = run_lint(targets, resolve_rules(["determinism"]))
    assert result.clean, "\n".join(f.format() for f in result.findings)
