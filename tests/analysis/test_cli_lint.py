"""The ``ses-repro lint`` subcommand: exit codes, JSON schema, outputs."""

from __future__ import annotations

import json

import pytest

from repro.analysis import RULE_NAMES
from repro.analysis.report import JSON_FORMAT
from repro.harness.cli import main
from tests.analysis.conftest import FIXTURES, SRC


def run_cli(capsys, *argv: str):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_clean_tree_exits_zero(capsys):
    code, out, _ = run_cli(
        capsys, "lint", str(FIXTURES / "delta_good"), "--rule",
        "delta-exhaustiveness",
    )
    assert code == 0
    assert "0 finding(s)" in out


def test_findings_exit_one_with_human_report(capsys):
    code, out, _ = run_cli(
        capsys, "lint", str(FIXTURES / "freeze_bad"), "--rule", "freeze-ban"
    )
    assert code == 1
    assert "freeze-ban" in out
    assert "2 finding(s)" in out


def test_unknown_rule_exits_two(capsys):
    code, _, err = run_cli(capsys, "lint", str(SRC), "--rule", "nope")
    assert code == 2
    assert "internal error" in err


def test_json_schema_is_stable(capsys):
    code, out, _ = run_cli(
        capsys, "lint", str(FIXTURES / "freeze_bad"), "--rule", "freeze-ban",
        "--json",
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["format"] == JSON_FORMAT
    assert set(payload) == {
        "format",
        "files_checked",
        "rules_run",
        "findings",
        "findings_by_rule",
        "suppressed",
        "clean",
    }
    assert payload["clean"] is False
    assert payload["findings_by_rule"] == {"freeze-ban": 2}
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}


def test_output_file_written_alongside_text(capsys, tmp_path):
    report = tmp_path / "findings.json"
    code, out, _ = run_cli(
        capsys, "lint", str(FIXTURES / "freeze_bad"), "--rule", "freeze-ban",
        "--output", str(report),
    )
    assert code == 1
    assert "freeze-ban" in out  # human report still printed
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert payload["format"] == JSON_FORMAT
    assert len(payload["findings"]) == 2


def test_list_rules_prints_catalogue(capsys):
    code, out, _ = run_cli(capsys, "lint", "--list-rules")
    assert code == 0
    for name in RULE_NAMES:
        assert name in out


def test_default_paths_cover_src(capsys, monkeypatch):
    monkeypatch.chdir(SRC.parent)
    code, out, _ = run_cli(capsys, "lint")
    assert code == 0
    assert "0 finding(s)" in out
