"""The mypy strict gate over repro.core + repro.stream.

mypy is an optional dependency (the ``typecheck`` extra) and is not part
of the runtime image, so this test self-skips when it is absent — the CI
``lint`` job installs it and runs the gate unconditionally.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import pytest

from tests.analysis.conftest import REPO_ROOT

requires_mypy = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (pip install ses-repro[typecheck])",
)


@requires_mypy
def test_mypy_gate_passes():
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_strict_ring_is_configured():
    """Pin the pyproject gate shape so it cannot silently erode."""
    config = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in config
    assert '"repro.core.*"' in config and '"repro.stream.*"' in config
    assert "disallow_untyped_defs = true" in config
