# Violations carrying suppression comments: lint must count, not report.


def cold_baseline(scheduler):
    return scheduler.instance  # ses-lint: disable=freeze-ban


def doubly_excused(scheduler):
    return scheduler.live.freeze()  # ses-lint: disable=freeze-ban,determinism
