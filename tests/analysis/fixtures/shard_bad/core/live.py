# Seeded violation fixture: a mini LiveDelta hierarchy (discovery input).
from dataclasses import dataclass


@dataclass(frozen=True)
class LiveDelta:
    pass


@dataclass(frozen=True)
class EventAdded(LiveDelta):
    event: int = 0


@dataclass(frozen=True)
class EventRemoved(LiveDelta):
    event: int = 0


@dataclass(frozen=True)
class EventInterestReplaced(LiveDelta):
    event: int = 0


@dataclass(frozen=True)
class CompetingAdded(LiveDelta):
    interval: int = 0
