# Seeded violations for the shard layer:
#  * localize_delta (the shard delta router) misses the CompetingAdded
#    branch — a rival arrival would silently never reach its shards;
#  * a merged score partial is born float32 on a shard *compute* module
#    (only shard/interest.py, the storage layer, may go low precision).
import numpy as np

from core.live import EventAdded, EventInterestReplaced, EventRemoved


def localize_delta(delta, lo, hi):
    if isinstance(delta, (EventAdded, EventRemoved)):
        return delta
    elif isinstance(delta, EventInterestReplaced):
        return delta
    raise TypeError(delta)


def merge_partials(partials):
    total = np.zeros(8, dtype=np.float32)
    for partial in partials:
        total += partial
    return total
