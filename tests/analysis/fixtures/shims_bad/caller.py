# Seeded violations: internal callers reaching through the PR-2 shims.
from repro.core.engine import make_engine


def build(instance):
    return make_engine(instance, "vectorized")


def solve(instance, scheduler_cls):
    return scheduler_cls(engine_kind="sparse")


def plumbing(instance, scheduler_cls, engine_kind=None):
    # verbatim forwarding and the neutral default are shim plumbing: clean
    engine = make_engine(instance)
    return scheduler_cls(engine_kind=engine_kind), engine, scheduler_cls(
        engine_kind=None
    )
