# Clean twin of delta_bad: same mini hierarchy, plus an intermediate base
# (covering an ancestor must count as covering its leaves).
from dataclasses import dataclass


@dataclass(frozen=True)
class LiveDelta:
    pass


@dataclass(frozen=True)
class ColumnDelta(LiveDelta):
    pass


@dataclass(frozen=True)
class EventAdded(ColumnDelta):
    event: int = 0


@dataclass(frozen=True)
class EventRemoved(LiveDelta):
    event: int = 0


@dataclass(frozen=True)
class EventInterestReplaced(ColumnDelta):
    event: int = 0


@dataclass(frozen=True)
class CompetingAdded(LiveDelta):
    interval: int = 0
