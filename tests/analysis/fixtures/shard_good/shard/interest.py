# The sanctioned exemption: shard/interest.py is the float32 *storage*
# layer — low-precision block construction here must stay clean.
import numpy as np


def coerce_block(block):
    dense = np.asarray(block, dtype=np.float32)
    return np.asfortranarray(dense, dtype="float32")


def empty_block(rows, columns):
    return np.zeros((rows, columns), dtype="f4")
