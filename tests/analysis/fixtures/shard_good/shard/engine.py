# Clean twin: the router covers every concrete delta in one tuple test,
# a method-shaped router delegates wholesale, and partials merge float64.
import numpy as np

from core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
)


def localize_delta(delta, lo, hi):
    if isinstance(
        delta,
        (EventAdded, EventRemoved, EventInterestReplaced, CompetingAdded),
    ):
        return delta
    raise TypeError(delta)


class BlockRouter:
    def __init__(self, lo, hi):
        self._lo, self._hi = lo, hi

    def localize_delta(self, delta):
        return localize_delta(delta, self._lo, self._hi)


def merge_partials(partials):
    total = np.zeros(8, dtype=np.float64)
    for partial in partials:
        total += partial
    return total
