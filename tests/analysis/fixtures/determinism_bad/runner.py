# Seeded violations: every unseeded-randomness pattern the rule bans.
import random
import time

import numpy as np


def sample():
    np.random.seed(0)
    draws = np.random.rand(5)
    rng = np.random.default_rng()
    clocked = np.random.default_rng(int(time.time()))
    legacy = np.random.RandomState(3)
    pick = random.choice([1, 2, 3])
    return draws, rng, clocked, legacy, pick


def orderings():
    tags = {"a", "b", "c"}
    listed = list(tags)
    joined = ",".join({"x", "y"})
    summed = sum(weight for weight in set([0.1, 0.2]))
    return listed, joined, summed


def sanctioned(seed):
    rng = np.random.default_rng(seed)
    streams = np.random.SeedSequence(seed).spawn(2)
    ordered = sorted({3, 1, 2})
    biggest = max({1.0, 2.0})
    return rng, streams, ordered, biggest
