# Seeded violation: apply_delta misses the CompetingAdded branch.
from core.live import EventAdded, EventInterestReplaced, EventRemoved


class LeakyEngine:
    def apply_delta(self, delta):
        if isinstance(delta, EventAdded):
            return "added"
        elif isinstance(delta, EventRemoved):
            return "removed"
        elif isinstance(delta, EventInterestReplaced):
            return "drift"
        raise TypeError(delta)
