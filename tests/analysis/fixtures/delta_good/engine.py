# Clean fixture: one exhaustive dispatcher (via an ancestor branch), one
# ancestor-level dispatcher, and one wholesale delegator — none may fire.
from core.live import ColumnDelta, CompetingAdded, EventAdded, EventRemoved
from core.live import EventInterestReplaced


class ExhaustiveEngine:
    def apply_delta(self, delta):
        if isinstance(delta, EventAdded):
            return "added"
        elif isinstance(delta, EventRemoved):
            return "removed"
        elif isinstance(delta, EventInterestReplaced):
            return "drift"
        elif isinstance(delta, CompetingAdded):
            return "rival"
        raise TypeError(delta)


class AncestorEngine:
    def apply_delta(self, delta):
        if isinstance(delta, ColumnDelta):
            return "column"  # covers EventAdded and EventInterestReplaced
        elif isinstance(delta, (EventRemoved, CompetingAdded)):
            return "row"
        raise TypeError(delta)


class DelegatingPlane:
    def __init__(self, engine):
        self._engine = engine

    def apply_delta(self, delta):
        self._engine.apply_delta(delta)
