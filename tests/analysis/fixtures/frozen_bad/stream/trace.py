# Seeded violations: an unfrozen op dataclass and mutable field types.
from dataclasses import dataclass, field
from typing import Any, ClassVar


@dataclass
class MutableOp:
    time: float = 0.0


@dataclass(frozen=True)
class ListPayloadOp:
    time: float = 0.0
    interest: list[tuple[int, float]] = field(default_factory=list)
    options: dict[str, Any] = field(default_factory=dict)
    # ClassVar annotations are exempt even when mutably typed:
    registry: ClassVar[dict[str, int]] = {}


@dataclass(frozen=True)
class CleanOp:
    time: float = 0.0
    interest: tuple[tuple[int, float], ...] = ()
