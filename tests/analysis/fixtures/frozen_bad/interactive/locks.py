# Seeded violations: the interactive value modules are covered too.
from dataclasses import dataclass, field


@dataclass
class UnfrozenLockSet:
    pins: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class LeakyVersion:
    name: str = ""
    assignments: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CleanLockSet:
    pins: tuple[tuple[int, int], ...] = ()
    forbids: frozenset[tuple[int, int]] = frozenset()
