# Seeded violations: low-precision arrays on a score-path module.
import numpy as np


def build_scores(n_intervals, n_events):
    plane = np.zeros((n_intervals, n_events), dtype=np.float32)
    masses = np.full(n_intervals, 0.0, "float32")
    halves = np.asarray([0.5], dtype="f2")
    return plane, masses, halves


def fine(n):
    scores = np.zeros(n)
    counts = np.zeros(n, dtype=np.int64)
    exact = np.asarray([1.0], dtype=float)
    return scores, counts, exact
