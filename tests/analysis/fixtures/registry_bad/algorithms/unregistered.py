# Seeded violation: a concrete Scheduler subclass without @register_solver.
from abc import ABC, abstractmethod

from repro.algorithms.base import Scheduler
from repro.algorithms.registry import register_solver


class GhostScheduler(Scheduler):
    name = "GHOST"

    def _solve(self, engine, checker, k):
        return None


class GhostlierScheduler(GhostScheduler):
    # transitive subclass: equally invisible, equally flagged
    name = "GHOST2"


@register_solver(summary="registered, so clean")
class VisibleScheduler(Scheduler):
    name = "VIS"

    def _solve(self, engine, checker, k):
        return None


class _PrivateHelper(Scheduler):
    # private scaffolding is exempt
    name = "_helper"


class AbstractFamily(Scheduler, ABC):
    # abstract intermediates are exempt
    @abstractmethod
    def variant(self):
        ...
