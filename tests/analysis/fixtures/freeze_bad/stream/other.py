# Clean by scope: same spellings OUTSIDE the designated hot-path modules
# are allowed (batch consumers legitimately freeze snapshots).


def snapshot(scheduler):
    return scheduler.instance, scheduler.live.freeze()
