# Seeded violations: a hot-path module freezing snapshots both ways.


def rebuild(scheduler):
    snapshot = scheduler.live.freeze()
    return snapshot


def utility_of(scheduler):
    return scheduler.instance.n_events
