"""Every rule proven on fixture packages carrying seeded violations."""

from __future__ import annotations

from tests.analysis.conftest import rules_of


class TestDeltaExhaustiveness:
    def test_missing_branch_fires(self, lint_fixture):
        result = lint_fixture("delta_bad", "delta-exhaustiveness")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "delta-exhaustiveness"
        assert finding.path.endswith("delta_bad/engine.py")
        assert "CompetingAdded" in finding.message
        assert "LeakyEngine" in finding.message

    def test_exhaustive_ancestor_and_delegating_are_clean(self, lint_fixture):
        result = lint_fixture("delta_good", "delta-exhaustiveness")
        assert result.clean, rules_of(result)

    def test_shard_router_missing_branch_fires(self, lint_fixture):
        result = lint_fixture("shard_bad", "delta-exhaustiveness")
        routed = [
            f for f in result.findings if "localize_delta" in f.message
        ]
        assert len(routed) == 1
        finding = routed[0]
        assert finding.path.endswith("shard_bad/shard/engine.py")
        assert "CompetingAdded" in finding.message
        # a module-level router has no owning class in the label
        assert finding.message.startswith("localize_delta ")

    def test_covering_and_delegating_routers_are_clean(self, lint_fixture):
        result = lint_fixture("shard_good", "delta-exhaustiveness")
        assert result.clean, rules_of(result)


class TestFreezeBan:
    def test_hot_path_freeze_and_instance_fire(self, lint_fixture):
        result = lint_fixture("freeze_bad", "freeze-ban")
        assert rules_of(result) == ["freeze-ban", "freeze-ban"]
        messages = " ".join(f.message for f in result.findings)
        assert ".freeze()" in messages and ".instance" in messages
        # same spellings outside the designated modules stay legal
        assert all(
            f.path.endswith("stream/driver.py") for f in result.findings
        )

    def test_suppression_comments_silence_and_count(self, lint_fixture):
        result = lint_fixture("suppressed", "freeze-ban")
        assert result.clean
        assert result.suppressed == 2


class TestFrozenOpDiscipline:
    def test_unfrozen_and_mutable_fields_fire(self, lint_fixture):
        result = lint_fixture("frozen_bad", "frozen-op-discipline")
        assert len(result.findings) == 5
        messages = [f.message for f in result.findings]
        assert any("MutableOp" in m and "frozen=True" in m for m in messages)
        assert any("interest" in m and "list" in m for m in messages)
        assert any("options" in m and "dict" in m for m in messages)
        # CleanOp and the ClassVar field must not fire
        assert not any("CleanOp" in m or "registry" in m for m in messages)
        # the rule covers repro.interactive's value modules too
        assert any(
            "UnfrozenLockSet" in m and "frozen=True" in m for m in messages
        )
        assert any("LeakyVersion.assignments" in m and "dict" in m for m in messages)
        assert not any("CleanLockSet" in m for m in messages)


class TestRegistryCompleteness:
    def test_unregistered_schedulers_fire(self, lint_fixture):
        result = lint_fixture("registry_bad", "registry-completeness")
        flagged = sorted(f.message.split()[0] for f in result.findings)
        assert flagged == ["GhostScheduler", "GhostlierScheduler"]
        # registered, private and abstract classes stay clean
        messages = " ".join(f.message for f in result.findings)
        assert "VisibleScheduler" not in messages
        assert "_PrivateHelper" not in messages
        assert "AbstractFamily" not in messages


class TestDeterminism:
    def test_all_seeded_violations_fire(self, lint_fixture):
        result = lint_fixture("determinism_bad", "determinism")
        messages = [f.message for f in result.findings]
        assert len(messages) == 9
        assert sum("legacy global stream" in m for m in messages) == 3
        assert sum("without a seed" in m for m in messages) == 1
        assert sum("time.time()" in m for m in messages) == 1
        assert sum("stdlib random" in m for m in messages) == 1
        assert sum("set iteration" in m for m in messages) == 3

    def test_sanctioned_randomness_is_clean(self, lint_fixture):
        result = lint_fixture("determinism_bad", "determinism")
        # the `sanctioned` function's lines must not appear in findings
        bad_lines = {f.line for f in result.findings}
        source = (
            result.findings[0].path
            if result.findings
            else None
        )
        assert source is not None
        from pathlib import Path

        text = Path(source).read_text(encoding="utf-8").splitlines()
        start = next(
            i for i, line in enumerate(text, 1) if "def sanctioned" in line
        )
        assert all(line < start for line in bad_lines)


class TestNoInternalShims:
    def test_string_kind_and_keyword_fire(self, lint_fixture):
        result = lint_fixture("shims_bad", "no-internal-shims")
        messages = [f.message for f in result.findings]
        assert len(messages) == 2
        assert any("make_engine" in m for m in messages)
        assert any("engine_kind=" in m for m in messages)


class TestDtypeDiscipline:
    def test_low_precision_on_score_path_fires(self, lint_fixture):
        result = lint_fixture("dtype_bad", "dtype-discipline")
        culprits = sorted(
            f.message.split("dtype=")[1].split(")")[0]
            for f in result.findings
        )
        assert culprits == ["f2", "float32", "float32"]

    def test_float32_partial_on_shard_compute_path_fires(self, lint_fixture):
        result = lint_fixture("shard_bad", "dtype-discipline")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path.endswith("shard_bad/shard/engine.py")
        assert "float32" in finding.message

    def test_shard_storage_layer_is_exempt(self, lint_fixture):
        """shard/interest.py may construct float32 blocks (storage layer)."""
        result = lint_fixture("shard_good", "dtype-discipline")
        assert result.clean, rules_of(result)


def test_full_battery_on_clean_twin(lint_fixture):
    """The whole battery, not just the targeted rule, passes delta_good."""
    result = lint_fixture("delta_good")
    assert result.clean, rules_of(result)


def test_full_battery_on_shard_clean_twin(lint_fixture):
    result = lint_fixture("shard_good")
    assert result.clean, rules_of(result)
