"""Unit tests for the location and resources constraints."""

import numpy as np
import pytest

from repro.core import (
    ActivityModel,
    CandidateEvent,
    InterestMatrix,
    Organizer,
    SESInstance,
    TimeInterval,
    User,
)
from repro.core.errors import InfeasibleAssignmentError
from repro.core.feasibility import (
    FeasibilityChecker,
    explain_infeasibility,
    is_schedule_feasible,
)
from repro.core.schedule import Assignment, Schedule


@pytest.fixture
def instance():
    """4 events: two at location 0, two at location 1; theta fits two."""
    users = [User(index=0)]
    intervals = [TimeInterval(index=0), TimeInterval(index=1)]
    events = [
        CandidateEvent(index=0, location=0, required_resources=3.0),
        CandidateEvent(index=1, location=0, required_resources=3.0),
        CandidateEvent(index=2, location=1, required_resources=3.0),
        CandidateEvent(index=3, location=1, required_resources=5.0),
    ]
    interest = InterestMatrix.from_arrays(np.full((1, 4), 0.5))
    activity = ActivityModel.constant(1, 2)
    return SESInstance(
        users, intervals, events, [], interest, activity, Organizer(resources=6.0)
    )


class TestLocationConstraint:
    def test_same_location_same_interval_infeasible(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        assert not checker.is_feasible(Assignment(event=1, interval=0))

    def test_same_location_different_interval_feasible(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        assert checker.is_feasible(Assignment(event=1, interval=1))

    def test_different_location_same_interval_feasible(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        assert checker.is_feasible(Assignment(event=2, interval=0))


class TestResourcesConstraint:
    def test_exceeding_theta_infeasible(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))  # load 3
        # event 3 needs 5, total 8 > theta 6
        assert not checker.is_feasible(Assignment(event=3, interval=0))

    def test_exact_capacity_feasible(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))  # load 3
        # event 2 needs 3, total exactly 6
        assert checker.is_feasible(Assignment(event=2, interval=0))

    def test_remaining_resources(self, instance):
        checker = FeasibilityChecker(instance)
        assert checker.remaining_resources(0) == 6.0
        checker.apply(Assignment(event=0, interval=0))
        assert checker.remaining_resources(0) == pytest.approx(3.0)

    def test_float_accumulation_does_not_reject_exact_fit(self):
        """Many tiny events summing exactly to theta must stay feasible."""
        n = 10
        users = [User(index=0)]
        intervals = [TimeInterval(index=0)]
        events = [
            CandidateEvent(index=e, location=e, required_resources=0.1)
            for e in range(n)
        ]
        interest = InterestMatrix.from_arrays(np.full((1, n), 0.5))
        instance = SESInstance(
            users, intervals, events, [], interest,
            ActivityModel.constant(1, 1), Organizer(resources=1.0),
        )
        checker = FeasibilityChecker(instance)
        for event in range(n):
            assignment = Assignment(event=event, interval=0)
            assert checker.is_feasible(assignment), f"event {event} rejected"
            checker.apply(assignment)


class TestValidity:
    def test_assigned_event_not_valid_elsewhere(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        assert not checker.is_valid(Assignment(event=0, interval=1))
        assert checker.is_event_assigned(0)

    def test_apply_invalid_raises_with_reason(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        with pytest.raises(InfeasibleAssignmentError, match="location 0"):
            checker.apply(Assignment(event=1, interval=0))

    def test_unapply_restores_state(self, instance):
        checker = FeasibilityChecker(instance)
        assignment = Assignment(event=0, interval=0)
        checker.apply(assignment)
        checker.unapply(assignment)
        assert checker.is_valid(assignment)
        assert checker.remaining_resources(0) == pytest.approx(6.0)

    def test_unapply_never_applied_raises(self, instance):
        checker = FeasibilityChecker(instance)
        with pytest.raises(InfeasibleAssignmentError, match="never applied"):
            checker.unapply(Assignment(event=0, interval=0))

    def test_checker_initialized_from_schedule(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0)])
        checker = FeasibilityChecker(instance, schedule)
        assert checker.is_event_assigned(0)
        assert not checker.is_feasible(Assignment(event=1, interval=0))


class TestScheduleFeasibility:
    def test_empty_schedule_feasible(self, instance):
        assert is_schedule_feasible(instance, Schedule(instance))

    def test_location_violation_detected(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(1, 0)])
        assert not is_schedule_feasible(instance, schedule)

    def test_resource_violation_detected(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(3, 0)])
        assert not is_schedule_feasible(instance, schedule)

    def test_valid_schedule_accepted(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(2, 0)])
        assert is_schedule_feasible(instance, schedule)


class TestExplanations:
    def test_explains_duplicate(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        reason = explain_infeasibility(
            instance, checker, Assignment(event=0, interval=1)
        )
        assert "already scheduled" in reason

    def test_explains_resources(self, instance):
        checker = FeasibilityChecker(instance)
        checker.apply(Assignment(event=0, interval=0))
        reason = explain_infeasibility(
            instance, checker, Assignment(event=3, interval=0)
        )
        assert "resources" in reason

    def test_valid_assignment_reported_as_such(self, instance):
        checker = FeasibilityChecker(instance)
        reason = explain_infeasibility(
            instance, checker, Assignment(event=0, interval=0)
        )
        assert "actually valid" in reason
