"""Unit tests of the mutable live-instance layer (repro.core.live)."""

import numpy as np
import pytest

from repro.core.engine import EngineSpec, make_engine
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.errors import InstanceValidationError, UnknownEntityError
from repro.core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
    LiveInstance,
    LiveInterest,
)

from tests.conftest import make_random_instance

BACKENDS = ["dense", "sparse"]


def make_live(backend: str = "dense", seed: int = 500) -> LiveInstance:
    if backend == "sparse":
        pytest.importorskip("scipy")
    instance = make_random_instance(
        seed=seed, n_users=12, n_events=5, n_intervals=3,
        interest_backend=backend,
    )
    return LiveInstance(instance)


class TestReadSurface:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mirrors_source_instance(self, backend):
        live = make_live(backend)
        source = live.freeze()  # pre-mutation: the source itself
        assert live.n_users == source.n_users
        assert live.n_events == source.n_events
        assert live.n_competing == source.n_competing
        assert live.theta == source.theta
        assert list(live.events) == list(source.events)
        assert [list(g) for g in live.competing_by_interval] == [
            list(g) for g in source.competing_by_interval
        ]
        assert np.array_equal(live.competing_mass, source.competing_mass)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interest_accessor_parity(self, backend):
        live = make_live(backend)
        matrix = live.freeze().interest
        interest = live.interest
        assert interest.backend == matrix.backend
        assert np.array_equal(interest.candidate, matrix.candidate)
        assert np.array_equal(interest.competing, matrix.competing)
        for event in range(matrix.n_events):
            rows, values = interest.event_column_entries(event)
            expected_rows, expected_values = matrix.event_column_entries(event)
            assert np.array_equal(rows, expected_rows)
            assert np.array_equal(values, expected_values)
            assert np.array_equal(
                interest.event_column(event), matrix.event_column(event)
            )
            assert interest.mu_event(3, event) == matrix.mu_event(3, event)
        for rival in range(matrix.n_competing):
            assert np.array_equal(
                interest.competing_column(rival),
                matrix.competing_column(rival),
            )
            assert interest.mu_competing(5, rival) == matrix.mu_competing(
                5, rival
            )
        assert interest.nnz_candidate() == matrix.nnz_candidate()


class TestMutators:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_event_appends_column(self, backend):
        live = make_live(backend)
        column = np.zeros(live.n_users)
        column[[1, 4]] = [0.5, 0.25]
        event = CandidateEvent(index=live.n_events, location=7,
                               required_resources=1.0, name="new")
        delta = live.add_event(event, column)
        assert isinstance(delta, EventAdded)
        assert delta.event == event.index
        assert np.array_equal(delta.rows, [1, 4])
        assert live.n_events == 6
        assert np.array_equal(live.interest.event_column(5), column)
        frozen = live.freeze()
        assert frozen.events[-1] == event
        assert frozen.interest.backend == backend

    def test_add_event_validates_index_and_resources(self):
        live = make_live()
        column = np.zeros(live.n_users)
        with pytest.raises(InstanceValidationError, match="index"):
            live.add_event(
                CandidateEvent(index=0, location=1, required_resources=1.0),
                column,
            )
        with pytest.raises(InstanceValidationError, match="could never"):
            live.add_event(
                CandidateEvent(
                    index=live.n_events, location=1,
                    required_resources=live.theta + 1.0,
                ),
                column,
            )

    def test_column_validation(self):
        live = make_live()
        event = CandidateEvent(index=live.n_events, location=1,
                               required_resources=1.0)
        with pytest.raises(ValueError, match="shape"):
            live.add_event(event, np.zeros(3))
        with pytest.raises(ValueError, match="NaN"):
            live.add_event(event, np.full(live.n_users, np.nan))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            live.add_event(event, np.full(live.n_users, 1.5))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_remove_event_renumbers(self, backend):
        live = make_live(backend)
        survivor_columns = [
            live.interest.event_column(event)
            for event in range(live.n_events)
            if event != 2
        ]
        delta = live.remove_event(2)
        assert isinstance(delta, EventRemoved) and delta.event == 2
        assert live.n_events == 4
        assert [event.index for event in live.events] == [0, 1, 2, 3]
        for event, column in enumerate(survivor_columns):
            assert np.array_equal(live.interest.event_column(event), column)

    def test_remove_unknown_event_rejected(self):
        live = make_live()
        with pytest.raises(UnknownEntityError, match="no candidate event"):
            live.remove_event(99)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replace_event_interest_reports_old_and_new(self, backend):
        live = make_live(backend)
        old = live.interest.event_column(1).copy()
        column = np.zeros(live.n_users)
        column[0] = 0.75
        delta = live.replace_event_interest(1, column)
        assert isinstance(delta, EventInterestReplaced)
        assert np.array_equal(
            _dense(delta.old_rows, delta.old_values, live.n_users), old
        )
        assert np.array_equal(live.interest.event_column(1), column)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_competing_updates_groups_and_mass(self, backend):
        live = make_live(backend)
        _ = live.competing_mass  # materialize the dense cache first
        column = np.zeros(live.n_users)
        column[3] = 0.6
        rival = CompetingEvent(index=live.n_competing, interval=1, name="r")
        delta = live.add_competing(rival, column)
        assert isinstance(delta, CompetingAdded)
        assert rival.index in live.competing_by_interval[1]
        # the in-place K_t update must equal a fresh recomputation
        assert np.array_equal(
            live.competing_mass, live.freeze().competing_mass
        )

    def test_add_competing_validates_interval(self):
        live = make_live()
        with pytest.raises(InstanceValidationError, match="interval"):
            live.add_competing(
                CompetingEvent(index=live.n_competing, interval=99),
                np.zeros(live.n_users),
            )


class TestFreeze:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_freeze_counts_and_caches(self, backend):
        live = make_live(backend)
        source = live.freeze()
        assert live.freezes == 0  # the source doubles as the first snapshot
        live.remove_event(0)
        assert live.mutations == 1
        first = live.freeze()
        assert first is not source and live.freezes == 1
        assert live.freeze() is first
        assert live.freezes == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_frozen_instance_serves_engines(self, backend):
        live = make_live(backend)
        live.remove_event(1)
        frozen = live.freeze()
        kind = "sparse" if backend == "sparse" else "vectorized"
        engine = make_engine(frozen, EngineSpec(kind=kind))
        engine.assign(0, 0)
        assert engine.total_utility() >= 0.0


class TestEngineDeltaGuards:
    def test_removing_scheduled_event_requires_unassign(self):
        live = make_live()
        engine = EngineSpec().build(live)
        engine.assign(2, 0)
        delta = live.remove_event(2)
        with pytest.raises(ValueError, match="unassign"):
            engine.apply_delta(delta)

    def test_unknown_delta_rejected(self):
        live = make_live()
        engine = EngineSpec().build(live)
        with pytest.raises(TypeError, match="unknown live delta"):
            engine.apply_delta(object())

    def test_schedule_mirror_renumbered_after_removal(self):
        live = make_live()
        engine = EngineSpec().build(live)
        engine.assign(1, 0)
        engine.assign(4, 2)
        live.remove_event(2)
        engine.apply_delta(EventRemoved(event=2))
        assert engine.schedule.as_mapping() == {1: 0, 3: 2}


def _dense(rows, values, n_users):
    out = np.zeros(n_users)
    out[rows] = values
    return out


class TestLiveInterestGrowth:
    """The dense column buffer grows past its initial capacity cleanly."""

    def test_many_appends_then_freeze(self):
        live = make_live("dense")
        for index in range(12):
            column = np.zeros(live.n_users)
            column[index % live.n_users] = 0.5
            live.add_event(
                CandidateEvent(
                    index=live.n_events, location=50 + index,
                    required_resources=0.5, name=f"a{index}",
                ),
                column,
            )
        assert live.n_events == 17
        frozen = live.freeze()
        assert frozen.n_events == 17
        assert frozen.interest.n_events == 17

    def test_interleaved_appends_and_removals(self):
        live = make_live("dense")
        for index in range(6):
            live.add_event(
                CandidateEvent(
                    index=live.n_events, location=50 + index,
                    required_resources=0.5,
                ),
                np.full(live.n_users, 0.1 * (index + 1)),
            )
            live.remove_event(0)
        assert live.n_events == 5
        # the surviving columns are the appended ones, oldest first
        assert live.interest.event_column(0)[0] == pytest.approx(0.2)
        assert live.freeze().n_events == 5
