"""Tests of Eq. 4 — the assignment score / marginal-gain oracle."""

import pytest

from repro.core.errors import DuplicateEventError
from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule
from repro.core.scoring import assignment_score

from tests.conftest import make_random_instance


class TestScoreDefinition:
    def test_score_on_empty_schedule_equals_omega(self, hand_instance):
        """With E_t(S) empty, the score is just the event's own omega."""
        schedule = Schedule(hand_instance)
        score = assignment_score(hand_instance, schedule, Assignment(0, 0))
        # = omega(e0 alone at t0) = 0.5 (hand-worked in test_attendance)
        assert score == pytest.approx(0.5)

    def test_score_equals_global_utility_delta(self):
        """Eq. 4 equals Omega(S + a) - Omega(S) for any valid addition."""
        instance = make_random_instance(seed=51)
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(1, 0)])
        before = total_utility(instance, schedule)
        candidate = Assignment(2, 0)
        score = assignment_score(instance, schedule, candidate)
        schedule.add(candidate)
        after = total_utility(instance, schedule)
        assert score == pytest.approx(after - before, abs=1e-9)

    def test_score_across_intervals_is_independent(self):
        """Adding at interval t does not change scores at other intervals."""
        instance = make_random_instance(seed=52)
        schedule = Schedule(instance)
        score_before = assignment_score(instance, schedule, Assignment(2, 1))
        schedule.add(Assignment(0, 0))
        score_after = assignment_score(instance, schedule, Assignment(2, 1))
        assert score_before == pytest.approx(score_after, abs=1e-12)

    def test_duplicate_event_rejected(self):
        instance = make_random_instance(seed=53)
        schedule = Schedule(instance, [Assignment(0, 0)])
        with pytest.raises(DuplicateEventError, match="already scheduled"):
            assignment_score(instance, schedule, Assignment(0, 1))


class TestScoreProperties:
    def test_scores_are_non_negative(self):
        """f(M) = M / (K + M) is increasing, so every gain is >= 0."""
        for seed in range(4):
            instance = make_random_instance(seed=seed)
            schedule = Schedule(instance, [Assignment(0, 0)])
            for event in range(1, instance.n_events):
                for interval in range(instance.n_intervals):
                    score = assignment_score(
                        instance, schedule, Assignment(event, interval)
                    )
                    assert score >= -1e-12

    def test_diminishing_returns_within_interval(self):
        """Adding a sibling to the interval can only lower a pending score."""
        instance = make_random_instance(seed=54, n_events=6)
        sparse = Schedule(instance, [Assignment(0, 0)])
        dense = Schedule(instance, [Assignment(0, 0), Assignment(1, 0)])
        for event in range(2, instance.n_events):
            lighter = assignment_score(instance, sparse, Assignment(event, 0))
            heavier = assignment_score(instance, dense, Assignment(event, 0))
            assert heavier <= lighter + 1e-12

    def test_competition_lowers_score(self):
        """More competing mass at the interval means a lower score."""
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            CompetingEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            TimeInterval,
            User,
        )

        def build(n_rivals: int) -> SESInstance:
            users = [User(index=0)]
            intervals = [TimeInterval(index=0)]
            events = [CandidateEvent(index=0, location=0)]
            competing = [
                CompetingEvent(index=c, interval=0) for c in range(n_rivals)
            ]
            interest = InterestMatrix.from_arrays(
                np.array([[0.6]]), np.full((1, n_rivals), 0.5)
            )
            return SESInstance(
                users, intervals, events, competing, interest,
                ActivityModel.constant(1, 1), Organizer(resources=5.0),
            )

        scores = [
            assignment_score(build(n), Schedule(build(n)), Assignment(0, 0))
            for n in (0, 1, 3)
        ]
        assert scores[0] > scores[1] > scores[2]

    def test_zero_interest_event_scores_zero(self):
        """An event nobody likes gains nothing anywhere."""
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            TimeInterval,
            User,
        )

        users = [User(index=0), User(index=1)]
        intervals = [TimeInterval(index=0)]
        events = [
            CandidateEvent(index=0, location=0),
            CandidateEvent(index=1, location=1),
        ]
        interest = InterestMatrix.from_arrays(np.array([[0.0, 0.9], [0.0, 0.2]]))
        instance = SESInstance(
            users, intervals, events, [], interest,
            ActivityModel.constant(2, 1), Organizer(resources=5.0),
        )
        schedule = Schedule(instance, [Assignment(1, 0)])
        assert assignment_score(
            instance, schedule, Assignment(0, 0)
        ) == pytest.approx(0.0)
