"""Unit tests for SESInstance construction and derived structures."""

import numpy as np
import pytest

from repro.core import (
    ActivityModel,
    CandidateEvent,
    CompetingEvent,
    InterestMatrix,
    Organizer,
    SESInstance,
    TimeInterval,
    User,
)
from repro.core.errors import InstanceValidationError

from tests.conftest import make_random_instance


def _simple_parts(n_users=2, n_events=2, n_intervals=2, n_competing=1):
    users = [User(index=i) for i in range(n_users)]
    intervals = [TimeInterval(index=t) for t in range(n_intervals)]
    events = [CandidateEvent(index=e, location=e) for e in range(n_events)]
    competing = [CompetingEvent(index=c, interval=0) for c in range(n_competing)]
    interest = InterestMatrix.from_arrays(
        np.full((n_users, n_events), 0.5), np.full((n_users, n_competing), 0.5)
    )
    activity = ActivityModel.constant(n_users, n_intervals)
    return users, intervals, events, competing, interest, activity


class TestValidation:
    def test_valid_instance_constructs(self):
        parts = _simple_parts()
        instance = SESInstance(*parts, Organizer(resources=5.0))
        assert instance.n_users == 2
        assert instance.theta == 5.0

    def test_wrong_entity_index_order_rejected(self):
        users, intervals, events, competing, interest, activity = _simple_parts()
        users = list(reversed(users))
        with pytest.raises(InstanceValidationError, match="index"):
            SESInstance(
                users, intervals, events, competing, interest, activity,
                Organizer(resources=5.0),
            )

    def test_interest_user_mismatch_rejected(self):
        users, intervals, events, competing, _, activity = _simple_parts()
        bad_interest = InterestMatrix.from_arrays(
            np.zeros((3, 2)), np.zeros((3, 1))
        )
        with pytest.raises(InstanceValidationError, match="users"):
            SESInstance(
                users, intervals, events, competing, bad_interest, activity,
                Organizer(resources=5.0),
            )

    def test_interest_event_mismatch_rejected(self):
        users, intervals, events, competing, _, activity = _simple_parts()
        bad_interest = InterestMatrix.from_arrays(
            np.zeros((2, 5)), np.zeros((2, 1))
        )
        with pytest.raises(InstanceValidationError, match="events"):
            SESInstance(
                users, intervals, events, competing, bad_interest, activity,
                Organizer(resources=5.0),
            )

    def test_activity_interval_mismatch_rejected(self):
        users, intervals, events, competing, interest, _ = _simple_parts()
        bad_activity = ActivityModel.constant(2, 9)
        with pytest.raises(InstanceValidationError, match="intervals"):
            SESInstance(
                users, intervals, events, competing, interest, bad_activity,
                Organizer(resources=5.0),
            )

    def test_competing_event_dangling_interval_rejected(self):
        users, intervals, events, _, interest, activity = _simple_parts()
        dangling = [CompetingEvent(index=0, interval=99)]
        with pytest.raises(InstanceValidationError, match="interval 99"):
            SESInstance(
                users, intervals, events, dangling, interest, activity,
                Organizer(resources=5.0),
            )

    def test_unschedulable_event_rejected(self):
        users, intervals, _, competing, interest, activity = _simple_parts()
        heavy = [
            CandidateEvent(index=0, location=0, required_resources=100.0),
            CandidateEvent(index=1, location=1),
        ]
        with pytest.raises(InstanceValidationError, match="never be scheduled"):
            SESInstance(
                users, intervals, heavy, competing, interest, activity,
                Organizer(resources=5.0),
            )

    def test_overlapping_bounded_intervals_rejected(self):
        users, _, events, competing, interest, activity = _simple_parts()
        overlapping = [
            TimeInterval(index=0, start=0.0, end=3.0),
            TimeInterval(index=1, start=2.0, end=4.0),
        ]
        with pytest.raises(InstanceValidationError, match="overlap"):
            SESInstance(
                users, overlapping, events, competing, interest, activity,
                Organizer(resources=5.0),
            )

    def test_disjoint_bounded_intervals_accepted(self):
        users, _, events, competing, interest, activity = _simple_parts()
        disjoint = [
            TimeInterval(index=0, start=0.0, end=2.0),
            TimeInterval(index=1, start=2.0, end=4.0),
        ]
        instance = SESInstance(
            users, disjoint, events, competing, interest, activity,
            Organizer(resources=5.0),
        )
        assert instance.n_intervals == 2


class TestDerivedStructures:
    def test_competing_by_interval_groups(self):
        instance = make_random_instance(seed=11)
        groups = instance.competing_by_interval
        assert len(groups) == instance.n_intervals
        flattened = sorted(idx for group in groups for idx in group)
        assert flattened == list(range(instance.n_competing))
        for interval, group in enumerate(groups):
            for rival in group:
                assert instance.competing[rival].interval == interval

    def test_competing_mass_matches_columns(self):
        instance = make_random_instance(seed=12)
        for interval in range(instance.n_intervals):
            expected = np.zeros(instance.n_users)
            for rival in instance.competing_by_interval[interval]:
                expected += instance.interest.competing_column(rival)
            np.testing.assert_allclose(
                instance.competing_mass[interval], expected
            )

    def test_competing_mass_read_only(self):
        instance = make_random_instance(seed=13)
        with pytest.raises(ValueError):
            instance.competing_mass[0, 0] = 3.0

    def test_required_resources_vector(self):
        instance = make_random_instance(seed=14)
        for event in instance.events:
            assert instance.required_resources[event.index] == pytest.approx(
                event.required_resources
            )

    def test_locations_tuple(self):
        instance = make_random_instance(seed=15)
        assert instance.locations == tuple(e.location for e in instance.events)
        assert instance.distinct_locations == len(set(instance.locations))

    def test_describe_mentions_sizes(self):
        instance = make_random_instance(seed=16)
        text = instance.describe()
        assert f"users={instance.n_users}" in text
        assert f"events={instance.n_events}" in text
