"""Tests of Eq. 3 (total utility) and its per-interval decomposition."""

import pytest

from repro.core.objective import (
    interval_utility_fast,
    total_utility,
    total_utility_fast,
    utility_upper_bound,
)
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


class TestTotalUtility:
    def test_empty_schedule_zero(self, hand_instance):
        assert total_utility(hand_instance, Schedule(hand_instance)) == 0.0

    def test_hand_example_total(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0), Assignment(1, 0)])
        # omega(e0) + omega(e1) = 0.4 + 1.0 (see test_attendance)
        assert total_utility(hand_instance, schedule) == pytest.approx(1.4)

    def test_reference_equals_fast_on_random_schedules(self):
        for seed in range(5):
            instance = make_random_instance(seed=seed)
            schedule = Schedule(
                instance,
                [Assignment(0, 0), Assignment(1, 0), Assignment(2, 1),
                 Assignment(3, 3)],
            )
            assert total_utility(instance, schedule) == pytest.approx(
                total_utility_fast(instance, schedule), abs=1e-9
            )

    def test_spreading_events_beats_stacking(self):
        """Same events over distinct intervals yield at least as much utility.

        With per-interval competition identical (here: none), stacking
        events into one interval splits the same users; spreading them
        lets each event keep its full share.
        """
        instance = make_random_instance(
            seed=44, n_competing=0, n_events=3, n_intervals=3, n_locations=3
        )
        # make sigma identical across intervals so only stacking matters
        import numpy as np

        from repro.core import ActivityModel, Organizer, SESInstance

        activity = ActivityModel.constant(instance.n_users, 3, 0.7)
        instance = SESInstance(
            instance.users, instance.intervals, instance.events,
            instance.competing, instance.interest, activity,
            Organizer(resources=instance.theta),
        )
        stacked = Schedule(
            instance, [Assignment(0, 0), Assignment(1, 0), Assignment(2, 0)]
        )
        spread = Schedule(
            instance, [Assignment(0, 0), Assignment(1, 1), Assignment(2, 2)]
        )
        assert total_utility_fast(instance, spread) >= total_utility_fast(
            instance, stacked
        ) - 1e-12


class TestIntervalDecomposition:
    def test_total_is_sum_of_interval_utilities(self):
        instance = make_random_instance(seed=45)
        schedule = Schedule(
            instance, [Assignment(0, 0), Assignment(1, 2), Assignment(2, 2)]
        )
        decomposed = sum(
            interval_utility_fast(instance, schedule, t)
            for t in range(instance.n_intervals)
        )
        assert decomposed == pytest.approx(total_utility(instance, schedule))

    def test_unused_interval_contributes_zero(self):
        instance = make_random_instance(seed=46)
        schedule = Schedule(instance, [Assignment(0, 0)])
        assert interval_utility_fast(instance, schedule, 1) == 0.0


class TestUpperBound:
    def test_bound_dominates_any_schedule(self):
        instance = make_random_instance(seed=47)
        bound = utility_upper_bound(instance)
        schedule = Schedule(
            instance,
            [Assignment(0, 0), Assignment(1, 1), Assignment(2, 2),
             Assignment(3, 3)],
        )
        assert total_utility(instance, schedule) <= bound

    def test_bound_is_sigma_sum(self, hand_instance):
        # sigma entries: 1.0 + 0.5 + 0.8 + 0.4
        assert utility_upper_bound(hand_instance) == pytest.approx(2.7)
