"""Unit tests for Assignment and Schedule (paper Section II notation)."""

import pytest

from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


@pytest.fixture
def instance():
    return make_random_instance(seed=21)


class TestAssignment:
    def test_ordering_and_equality(self):
        assert Assignment(1, 2) == Assignment(1, 2)
        assert Assignment(0, 1) < Assignment(1, 0)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            Assignment(-1, 0)
        with pytest.raises(ValueError):
            Assignment(0, -1)

    def test_str_format(self):
        assert str(Assignment(3, 1)) == "a[e3@t1]"


class TestScheduleMutation:
    def test_add_and_query(self, instance):
        schedule = Schedule(instance)
        schedule.add(Assignment(event=0, interval=1))
        assert schedule.interval_of(0) == 1
        assert schedule.events_at(1) == (0,)
        assert schedule.contains_event(0)
        assert len(schedule) == 1

    def test_duplicate_event_rejected(self, instance):
        schedule = Schedule(instance)
        schedule.add(Assignment(event=0, interval=1))
        with pytest.raises(DuplicateEventError, match="already scheduled"):
            schedule.add(Assignment(event=0, interval=2))

    def test_unknown_event_rejected(self, instance):
        schedule = Schedule(instance)
        with pytest.raises(UnknownEntityError, match="event index"):
            schedule.add(Assignment(event=instance.n_events, interval=0))

    def test_unknown_interval_rejected(self, instance):
        schedule = Schedule(instance)
        with pytest.raises(UnknownEntityError, match="interval index"):
            schedule.add(Assignment(event=0, interval=instance.n_intervals))

    def test_remove_returns_assignment(self, instance):
        schedule = Schedule(instance)
        schedule.add(Assignment(event=2, interval=0))
        removed = schedule.remove(2)
        assert removed == Assignment(event=2, interval=0)
        assert not schedule.contains_event(2)
        assert schedule.events_at(0) == ()

    def test_remove_unscheduled_rejected(self, instance):
        with pytest.raises(UnknownEntityError, match="not scheduled"):
            Schedule(instance).remove(0)

    def test_constructor_accepts_assignments(self, instance):
        schedule = Schedule(
            instance, [Assignment(0, 0), Assignment(1, 0), Assignment(2, 1)]
        )
        assert len(schedule) == 3
        assert schedule.events_at(0) == (0, 1)


class TestPaperAccessors:
    def test_scheduled_events_is_E_of_S(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(3, 2)])
        assert schedule.scheduled_events() == frozenset({0, 3})

    def test_events_at_preserves_insertion_order(self, instance):
        schedule = Schedule(instance)
        schedule.add(Assignment(event=4, interval=1))
        schedule.add(Assignment(event=1, interval=1))
        assert schedule.events_at(1) == (4, 1)

    def test_interval_of_unscheduled_is_none(self, instance):
        assert Schedule(instance).interval_of(0) is None

    def test_used_intervals(self, instance):
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(1, 3)])
        assert schedule.used_intervals() == frozenset({0, 3})


class TestContainerProtocol:
    def test_iteration_yields_all_assignments(self, instance):
        assignments = [Assignment(0, 1), Assignment(1, 0), Assignment(2, 1)]
        schedule = Schedule(instance, assignments)
        assert set(schedule) == set(assignments)

    def test_contains_checks_exact_pair(self, instance):
        schedule = Schedule(instance, [Assignment(0, 1)])
        assert Assignment(0, 1) in schedule
        assert Assignment(0, 2) not in schedule

    def test_equality_ignores_insertion_order(self, instance):
        a = Schedule(instance, [Assignment(0, 1), Assignment(1, 2)])
        b = Schedule(instance, [Assignment(1, 2), Assignment(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self, instance):
        a = Schedule(instance, [Assignment(0, 1)])
        b = Schedule(instance, [Assignment(0, 2)])
        assert a != b

    def test_copy_is_independent(self, instance):
        original = Schedule(instance, [Assignment(0, 1)])
        clone = original.copy()
        clone.add(Assignment(1, 1))
        assert len(original) == 1
        assert len(clone) == 2

    def test_as_mapping_detached(self, instance):
        schedule = Schedule(instance, [Assignment(0, 1)])
        mapping = schedule.as_mapping()
        mapping[99] = 0
        assert not schedule.contains_event(99)

    def test_assignments_sorted_by_interval(self, instance):
        schedule = Schedule(instance, [Assignment(5, 3), Assignment(0, 0)])
        assert schedule.assignments() == (Assignment(0, 0), Assignment(5, 3))
