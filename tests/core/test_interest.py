"""Unit tests for the interest matrix (the paper's ``mu``)."""

import numpy as np
import pytest

from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix


class TestConstruction:
    def test_from_arrays_shapes(self):
        matrix = InterestMatrix.from_arrays(np.zeros((3, 2)), np.zeros((3, 4)))
        assert matrix.n_users == 3
        assert matrix.n_events == 2
        assert matrix.n_competing == 4

    def test_from_arrays_without_competing(self):
        matrix = InterestMatrix.from_arrays(np.ones((2, 2)) * 0.5)
        assert matrix.n_competing == 0

    def test_values_above_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InterestMatrix.from_arrays(np.array([[1.5]]))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InterestMatrix.from_arrays(np.array([[-0.1]]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            InterestMatrix.from_arrays(np.array([[np.nan]]))

    def test_mismatched_user_axes_rejected(self):
        with pytest.raises(InstanceValidationError, match="user axis"):
            InterestMatrix.from_arrays(np.zeros((3, 2)), np.zeros((4, 1)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(InstanceValidationError, match="2-D"):
            InterestMatrix(candidate=np.zeros(3), competing=np.zeros((3, 0)))

    def test_arrays_become_read_only(self):
        matrix = InterestMatrix.from_arrays(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            matrix.candidate[0, 0] = 1.0


class TestAccessors:
    def test_mu_event(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.25, 0.75]]))
        assert matrix.mu_event(0, 1) == 0.75

    def test_mu_competing(self):
        matrix = InterestMatrix.from_arrays(
            np.zeros((1, 1)), np.array([[0.4]])
        )
        assert matrix.mu_competing(0, 0) == 0.4

    def test_event_column_is_all_users(self):
        candidate = np.array([[0.1, 0.2], [0.3, 0.4]])
        matrix = InterestMatrix.from_arrays(candidate)
        np.testing.assert_array_equal(matrix.event_column(1), [0.2, 0.4])

    def test_competing_column(self):
        matrix = InterestMatrix.from_arrays(
            np.zeros((2, 1)), np.array([[0.5], [0.6]])
        )
        np.testing.assert_array_equal(matrix.competing_column(0), [0.5, 0.6])


class TestFromFunction:
    def test_materializes_callable(self):
        matrix = InterestMatrix.from_function(
            n_users=2,
            n_events=3,
            n_competing=1,
            event_interest=lambda u, e: (u + e) / 10,
            competing_interest=lambda u, c: 0.9,
        )
        assert matrix.mu_event(1, 2) == pytest.approx(0.3)
        assert matrix.mu_competing(0, 0) == 0.9

    def test_competing_defaults_to_zero(self):
        matrix = InterestMatrix.from_function(
            n_users=1, n_events=1, n_competing=2, event_interest=lambda u, e: 0.5
        )
        np.testing.assert_array_equal(matrix.competing, np.zeros((1, 2)))


class TestFromSparse:
    def test_absent_pairs_are_zero(self):
        matrix = InterestMatrix.from_sparse(
            n_users=2,
            n_events=2,
            n_competing=1,
            event_entries={(0, 1): 0.8},
            competing_entries={(1, 0): 0.3},
        )
        assert matrix.mu_event(0, 1) == 0.8
        assert matrix.mu_event(0, 0) == 0.0
        assert matrix.mu_event(1, 1) == 0.0
        assert matrix.mu_competing(1, 0) == 0.3
        assert matrix.mu_competing(0, 0) == 0.0


class TestStatistics:
    def test_sparsity_counts_exact_zeros(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.0, 0.5], [0.0, 0.0]]))
        assert matrix.sparsity() == pytest.approx(0.75)

    def test_sparsity_of_empty_matrix_is_one(self):
        matrix = InterestMatrix.from_arrays(np.zeros((0, 0)))
        assert matrix.sparsity() == 1.0

    def test_mean_positive_interest(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.0, 0.5], [0.7, 0.0]]))
        assert matrix.mean_positive_interest() == pytest.approx(0.6)

    def test_mean_positive_interest_all_zero(self):
        matrix = InterestMatrix.from_arrays(np.zeros((2, 2)))
        assert matrix.mean_positive_interest() == 0.0
