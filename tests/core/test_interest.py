"""Unit tests for the interest matrix (the paper's ``mu``)."""

import numpy as np
import pytest

from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix


class TestConstruction:
    def test_from_arrays_shapes(self):
        matrix = InterestMatrix.from_arrays(np.zeros((3, 2)), np.zeros((3, 4)))
        assert matrix.n_users == 3
        assert matrix.n_events == 2
        assert matrix.n_competing == 4

    def test_from_arrays_without_competing(self):
        matrix = InterestMatrix.from_arrays(np.ones((2, 2)) * 0.5)
        assert matrix.n_competing == 0

    def test_values_above_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InterestMatrix.from_arrays(np.array([[1.5]]))

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InterestMatrix.from_arrays(np.array([[-0.1]]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            InterestMatrix.from_arrays(np.array([[np.nan]]))

    def test_mismatched_user_axes_rejected(self):
        with pytest.raises(InstanceValidationError, match="user axis"):
            InterestMatrix.from_arrays(np.zeros((3, 2)), np.zeros((4, 1)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(InstanceValidationError, match="2-D"):
            InterestMatrix(candidate=np.zeros(3), competing=np.zeros((3, 0)))

    def test_arrays_become_read_only(self):
        matrix = InterestMatrix.from_arrays(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            matrix.candidate[0, 0] = 1.0


class TestAccessors:
    def test_mu_event(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.25, 0.75]]))
        assert matrix.mu_event(0, 1) == 0.75

    def test_mu_competing(self):
        matrix = InterestMatrix.from_arrays(
            np.zeros((1, 1)), np.array([[0.4]])
        )
        assert matrix.mu_competing(0, 0) == 0.4

    def test_event_column_is_all_users(self):
        candidate = np.array([[0.1, 0.2], [0.3, 0.4]])
        matrix = InterestMatrix.from_arrays(candidate)
        np.testing.assert_array_equal(matrix.event_column(1), [0.2, 0.4])

    def test_competing_column(self):
        matrix = InterestMatrix.from_arrays(
            np.zeros((2, 1)), np.array([[0.5], [0.6]])
        )
        np.testing.assert_array_equal(matrix.competing_column(0), [0.5, 0.6])


class TestFromFunction:
    def test_materializes_callable(self):
        matrix = InterestMatrix.from_function(
            n_users=2,
            n_events=3,
            n_competing=1,
            event_interest=lambda u, e: (u + e) / 10,
            competing_interest=lambda u, c: 0.9,
        )
        assert matrix.mu_event(1, 2) == pytest.approx(0.3)
        assert matrix.mu_competing(0, 0) == 0.9

    def test_competing_defaults_to_zero(self):
        matrix = InterestMatrix.from_function(
            n_users=1, n_events=1, n_competing=2, event_interest=lambda u, e: 0.5
        )
        np.testing.assert_array_equal(matrix.competing, np.zeros((1, 2)))


class TestFromSparse:
    def test_absent_pairs_are_zero(self):
        matrix = InterestMatrix.from_sparse(
            n_users=2,
            n_events=2,
            n_competing=1,
            event_entries={(0, 1): 0.8},
            competing_entries={(1, 0): 0.3},
        )
        assert matrix.mu_event(0, 1) == 0.8
        assert matrix.mu_event(0, 0) == 0.0
        assert matrix.mu_event(1, 1) == 0.0
        assert matrix.mu_competing(1, 0) == 0.3
        assert matrix.mu_competing(0, 0) == 0.0


class TestSparseBackend:
    def _matrix(self, backend="sparse"):
        candidate = np.array([[0.5, 0.0, 0.25], [0.0, 0.0, 1.0]])
        competing = np.array([[0.4], [0.0]])
        return InterestMatrix.from_arrays(candidate, competing, backend=backend)

    def test_backend_property(self):
        assert self._matrix("dense").backend == "dense"
        assert self._matrix("sparse").backend == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown interest backend"):
            self._matrix("octree")

    def test_dense_views_match(self):
        dense, sparse = self._matrix("dense"), self._matrix("sparse")
        np.testing.assert_array_equal(sparse.candidate, dense.candidate)
        np.testing.assert_array_equal(sparse.competing, dense.competing)

    def test_element_and_column_accessors(self):
        matrix = self._matrix()
        assert matrix.mu_event(0, 0) == 0.5
        assert matrix.mu_event(1, 0) == 0.0
        assert matrix.mu_competing(0, 0) == 0.4
        np.testing.assert_array_equal(matrix.event_column(2), [0.25, 1.0])
        np.testing.assert_array_equal(matrix.competing_column(0), [0.4, 0.0])

    def test_column_entries_gather(self):
        for matrix in (self._matrix("dense"), self._matrix("sparse")):
            rows, values = matrix.event_column_entries(2)
            np.testing.assert_array_equal(rows, [0, 1])
            np.testing.assert_array_equal(values, [0.25, 1.0])
            rows, values = matrix.event_column_entries(1)
            assert rows.size == 0 and values.size == 0

    def test_competing_mass_accumulation(self):
        candidate = np.zeros((3, 1))
        competing = np.array([[0.2, 0.3], [0.0, 0.5], [0.0, 0.0]])
        for backend in ("dense", "sparse"):
            matrix = InterestMatrix.from_arrays(
                candidate, competing, backend=backend
            )
            rows, values = matrix.competing_mass_entries([0, 1])
            np.testing.assert_array_equal(rows, [0, 1])
            np.testing.assert_allclose(values, [0.5, 0.5])
            rows, values = matrix.competing_mass_entries([])
            assert rows.size == 0

    def test_sparse_values_validated(self):
        import scipy.sparse as sp

        bad = sp.csc_matrix(np.array([[1.5]]))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            InterestMatrix.from_scipy(bad)
        nan = sp.csc_matrix(np.array([[np.nan]]))
        with pytest.raises(ValueError, match="NaN"):
            InterestMatrix.from_scipy(nan)

    def test_to_backend_round_trip(self):
        dense = self._matrix("dense")
        there = dense.to_backend("sparse")
        back = there.to_backend("dense")
        assert there.backend == "sparse" and back.backend == "dense"
        np.testing.assert_array_equal(back.candidate, dense.candidate)
        assert dense.to_backend("dense") is dense
        assert there.to_backend("sparse") is there

    def test_restrict_users_preserves_backend(self):
        for backend in ("dense", "sparse"):
            matrix = self._matrix(backend)
            cut = matrix.restrict_users(1)
            assert cut.backend == backend
            assert cut.n_users == 1
            np.testing.assert_array_equal(cut.candidate, matrix.candidate[:1])
        with pytest.raises(ValueError, match="restrict"):
            self._matrix().restrict_users(7)

    def test_from_sparse_direct_to_csc(self):
        matrix = InterestMatrix.from_sparse(
            n_users=3,
            n_events=2,
            n_competing=1,
            event_entries={(0, 1): 0.8, (2, 0): 0.1},
            competing_entries={(1, 0): 0.3},
            backend="sparse",
        )
        assert matrix.backend == "sparse"
        assert matrix.mu_event(0, 1) == 0.8
        assert matrix.mu_event(0, 0) == 0.0
        assert matrix.mu_competing(1, 0) == 0.3

    def test_canonical_coo_is_zero_free_and_csc_ordered(self):
        matrix = self._matrix("sparse")
        rows, cols, values = matrix.candidate_coo()
        assert (values != 0.0).all()
        order = np.lexsort((rows, cols))
        np.testing.assert_array_equal(order, np.arange(rows.size))
        # column-major: (0,0)=0.5, then column 2: (0,2)=0.25, (1,2)=1.0
        np.testing.assert_array_equal(cols, [0, 2, 2])
        np.testing.assert_array_equal(rows, [0, 0, 1])
        np.testing.assert_allclose(values, [0.5, 0.25, 1.0])

    def test_statistics_match_dense(self):
        dense, sparse = self._matrix("dense"), self._matrix("sparse")
        assert sparse.sparsity() == dense.sparsity()
        assert sparse.mean_positive_interest() == pytest.approx(
            dense.mean_positive_interest()
        )
        assert sparse.nnz_candidate() == dense.nnz_candidate() == 3

    def test_user_axis_mismatch_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(InstanceValidationError, match="user axis"):
            InterestMatrix(
                candidate=sp.csc_matrix((3, 2)),
                competing=sp.csc_matrix((4, 1)),
                backend="sparse",
            )


class TestStatistics:
    def test_sparsity_counts_exact_zeros(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.0, 0.5], [0.0, 0.0]]))
        assert matrix.sparsity() == pytest.approx(0.75)

    def test_sparsity_of_empty_matrix_is_one(self):
        matrix = InterestMatrix.from_arrays(np.zeros((0, 0)))
        assert matrix.sparsity() == 1.0

    def test_mean_positive_interest(self):
        matrix = InterestMatrix.from_arrays(np.array([[0.0, 0.5], [0.7, 0.0]]))
        assert matrix.mean_positive_interest() == pytest.approx(0.6)

    def test_mean_positive_interest_all_zero(self):
        matrix = InterestMatrix.from_arrays(np.zeros((2, 2)))
        assert matrix.mean_positive_interest() == 0.0
