"""Unit tests of the ScorePlane cache mechanics (fill, dirty, deltas)."""

import numpy as np
import pytest

from repro.core.engine import EngineSpec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.live import LiveInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane

from tests.conftest import make_random_instance


def build_plane(seed=900, kind="vectorized", **kwargs):
    instance = make_random_instance(
        seed=seed, n_events=6, n_intervals=4, **kwargs
    )
    engine = EngineSpec(kind=kind).build(instance)
    return instance, engine, ScorePlane(engine)


def cold_matrix(instance, spec_kind="vectorized"):
    engine = EngineSpec(kind=spec_kind).build(instance)
    all_events = list(range(instance.n_events))
    return np.vstack(
        [
            engine.scores_for_interval(interval, all_events)
            for interval in range(instance.n_intervals)
        ]
    )


class TestFill:
    def test_lazy_until_first_ensure(self):
        _, __, plane = build_plane()
        assert plane.array is None and not plane.filled
        matrix = plane.ensure()
        assert plane.filled
        assert matrix.shape == (plane.n_intervals, plane.n_events)

    def test_cold_fill_matches_direct_row_queries(self):
        instance, _, plane = build_plane()
        np.testing.assert_array_equal(plane.ensure(), cold_matrix(instance))

    def test_second_ensure_is_warm(self):
        _, __, plane = build_plane()
        plane.ensure()
        spent = plane.cells_filled + plane.cells_refreshed
        plane.ensure()
        assert plane.cells_filled + plane.cells_refreshed == spent
        assert plane.warm_reads == 1
        assert plane.fills == 1

    def test_invalidate_forces_refill(self):
        _, __, plane = build_plane()
        plane.ensure()
        plane.invalidate()
        assert not plane.filled
        plane.ensure()
        assert plane.fills == 2


class TestDirtyRows:
    def test_mark_dirty_rescoring_only_that_row(self):
        _, __, plane = build_plane()
        plane.ensure()
        plane.mark_dirty(2)
        assert plane.dirty_intervals == frozenset({2})
        plane.ensure()
        assert plane.dirty_intervals == frozenset()
        assert plane.cells_refreshed == plane.n_events  # one row

    def test_dirty_row_reflects_engine_state_changes(self):
        instance, engine, _ = build_plane()
        plane = ScorePlane(engine, auto_reset=False)
        plane.ensure()
        engine.assign(0, 1)
        plane.on_assign(0, 1)
        matrix = plane.ensure()
        assert np.all(np.isneginf(matrix[:, 0]))  # consumed column
        # the contested row was re-scored against the new mass state
        fresh = engine.scores_for_interval(
            1, [e for e in range(instance.n_events) if e != 0]
        )
        np.testing.assert_array_equal(
            matrix[1, [e for e in range(instance.n_events) if e != 0]], fresh
        )

    def test_on_unassign_restores_column(self):
        instance, engine, _ = build_plane()
        plane = ScorePlane(engine, auto_reset=False)
        plane.ensure()
        engine.assign(0, 1)
        plane.on_assign(0, 1)
        plane.ensure()
        engine.unassign(0)
        plane.on_unassign(0, 1)
        matrix = plane.ensure()
        np.testing.assert_array_equal(matrix, cold_matrix(instance))


class TestAutoReset:
    def test_leftover_solve_schedule_is_reset_on_read(self):
        _, engine, plane = build_plane()
        before = plane.ensure().copy()
        engine.assign(2, 0)  # a batch solve ran through the plane's engine
        after = plane.ensure()
        assert len(engine.schedule) == 0  # auto-reset restored the baseline
        np.testing.assert_array_equal(before, after)

    def test_schedule_relative_plane_never_resets(self):
        _, engine, __ = build_plane()
        plane = ScorePlane(engine, auto_reset=False)
        plane.ensure()
        engine.assign(2, 0)
        plane.on_assign(2, 0)
        plane.ensure()
        assert len(engine.schedule) == 1  # the maintained schedule survives


@pytest.mark.parametrize("backend,kind", [("dense", "vectorized"), ("sparse", "sparse")])
class TestLiveDeltas:
    def build_live(self, backend, kind):
        pytest.importorskip("scipy") if backend == "sparse" else None
        instance = make_random_instance(
            seed=901, n_events=6, n_intervals=4, interest_backend=backend
        )
        live = LiveInstance(instance)
        engine = EngineSpec(kind=kind).build(live)
        return live, ScorePlane(engine)

    def check_current(self, live, plane, kind):
        """The ensured matrix equals a cold fill by a fresh engine."""
        fresh = EngineSpec(kind=kind).build(live)
        all_events = list(range(live.n_events))
        expected = np.vstack(
            [
                fresh.scores_for_interval(interval, all_events)
                for interval in range(live.n_intervals)
            ]
        )
        np.testing.assert_allclose(plane.ensure(), expected, atol=1e-12)

    def test_event_added(self, backend, kind):
        live, plane = self.build_live(backend, kind)
        plane.ensure()
        column = np.zeros(live.n_users)
        column[:3] = 0.5
        delta = live.add_event(
            CandidateEvent(
                index=live.n_events, location=99, required_resources=1.0
            ),
            column,
        )
        plane.apply_delta(delta)
        assert plane.ensure().shape[1] == live.n_events
        self.check_current(live, plane, kind)

    def test_event_removed(self, backend, kind):
        live, plane = self.build_live(backend, kind)
        plane.ensure()
        delta = live.remove_event(2)
        plane.apply_delta(delta)
        assert plane.ensure().shape[1] == live.n_events
        self.check_current(live, plane, kind)

    def test_interest_replaced(self, backend, kind):
        live, plane = self.build_live(backend, kind)
        plane.ensure()
        column = np.zeros(live.n_users)
        column[1::2] = 0.25
        plane.apply_delta(live.replace_event_interest(3, column))
        self.check_current(live, plane, kind)

    def test_competing_added_dirties_only_its_interval(self, backend, kind):
        live, plane = self.build_live(backend, kind)
        plane.ensure()
        column = np.zeros(live.n_users)
        column[::2] = 0.75
        delta = live.add_competing(
            CompetingEvent(index=live.n_competing, interval=1), column
        )
        plane.apply_delta(delta)
        assert plane.dirty_intervals == frozenset({1})
        self.check_current(live, plane, kind)

    def test_warm_maintenance_beats_cold_refill(self, backend, kind):
        """A delta stream must re-score strictly fewer cells than the
        equivalent sequence of cold fills."""
        live, plane = self.build_live(backend, kind)
        plane.ensure()
        cold_cells = plane.cells_filled
        column = np.zeros(live.n_users)
        column[0] = 0.9
        for interval in range(3):
            delta = live.add_competing(
                CompetingEvent(index=live.n_competing, interval=interval),
                column,
            )
            plane.apply_delta(delta)
            plane.ensure()
        assert plane.cells_refreshed < 3 * cold_cells
        assert plane.fills == 1


class TestQueryGeometry:
    def test_geometry_crossing_deltas_invalidate_the_plane(self):
        """Vectorized chunk boundaries move when the live event count
        crosses a power of two; cached cells computed under the old
        grouping must be dropped, keeping warm == cold bit-identical."""
        from repro.core.engine import VectorizedEngine
        from repro.core.live import LiveInstance

        instance = make_random_instance(
            seed=905, n_users=500, n_events=20, n_intervals=4
        )
        live = LiveInstance(instance)
        engine = VectorizedEngine(live, chunk_elements=700)  # multi-chunk
        plane = ScorePlane(engine)
        plane.ensure()
        column = np.zeros(live.n_users)
        column[:50] = 0.5
        for index in range(13):  # 20 -> 33 events crosses 32
            delta = live.add_event(
                CandidateEvent(
                    index=live.n_events,
                    location=100 + index,
                    required_resources=1.0,
                ),
                column,
            )
            plane.apply_delta(delta)
        warm = plane.ensure()
        fresh = VectorizedEngine(live, chunk_elements=700)
        cold = np.vstack(
            [
                fresh.scores_for_interval(t, list(range(live.n_events)))
                for t in range(live.n_intervals)
            ]
        )
        np.testing.assert_array_equal(warm, cold)
        assert plane.fills == 2  # initial fill + geometry invalidation

    def test_sparse_engine_is_geometry_free(self):
        pytest.importorskip("scipy")
        instance = make_random_instance(
            seed=906, n_events=6, interest_backend="sparse"
        )
        engine = EngineSpec(kind="sparse").build(instance)
        assert engine.score_geometry() is None


class TestSeedFrom:
    def test_seed_copies_and_stays_independent(self):
        instance, engine, plane = build_plane()
        other = ScorePlane(EngineSpec().build(instance))
        plane.ensure()
        other.seed_from(plane)
        np.testing.assert_array_equal(other.array, plane.array)
        other.array[0, 0] = 123.0
        assert plane.array[0, 0] != 123.0
