"""Tests of the score engines: correctness, equivalence, state handling."""

import numpy as np
import pytest

from repro.core.engine import (
    EngineSpec,
    ReferenceEngine,
    SparseEngine,
    VectorizedEngine,
    make_engine,
)
from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.objective import total_utility
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


@pytest.fixture(params=["reference", "vectorized", "sparse"])
def engine_kind(request):
    return request.param


class TestFactory:
    def test_known_kinds(self, random_instance):
        assert isinstance(
            make_engine(random_instance, EngineSpec("reference")), ReferenceEngine
        )
        assert isinstance(
            make_engine(random_instance, EngineSpec("vectorized")), VectorizedEngine
        )
        assert isinstance(make_engine(random_instance, EngineSpec("sparse")), SparseEngine)

    def test_default_is_vectorized(self, random_instance):
        assert isinstance(make_engine(random_instance), VectorizedEngine)

    def test_unknown_kind_rejected(self, random_instance):
        with pytest.raises(ValueError, match="unknown engine kind"):
            make_engine(random_instance, EngineSpec("quantum"))

    def test_bad_chunk_size_rejected(self, random_instance):
        with pytest.raises(ValueError, match="chunk_elements"):
            VectorizedEngine(random_instance, chunk_elements=0)


class TestEngineBehaviour:
    def test_total_utility_tracks_assignments(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        assert engine.total_utility() == pytest.approx(0.0)
        engine.assign(0, 1)
        engine.assign(2, 1)
        expected = total_utility(
            random_instance,
            Schedule(random_instance, [Assignment(0, 1), Assignment(2, 1)]),
        )
        assert engine.total_utility() == pytest.approx(expected, abs=1e-9)

    def test_score_is_utility_delta(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 0)
        before = engine.total_utility()
        gain = engine.score(1, 0)
        engine.assign(1, 0)
        assert engine.total_utility() - before == pytest.approx(gain, abs=1e-9)

    def test_unassign_restores_utility(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 0)
        baseline = engine.total_utility()
        engine.assign(1, 0)
        engine.unassign(1)
        assert engine.total_utility() == pytest.approx(baseline, abs=1e-9)
        assert not engine.schedule.contains_event(1)

    def test_reset_clears_everything(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 0)
        engine.reset()
        assert engine.total_utility() == pytest.approx(0.0)
        assert len(engine.schedule) == 0

    def test_score_of_assigned_event_rejected(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 0)
        with pytest.raises(DuplicateEventError):
            engine.score(0, 1)

    def test_scores_for_interval_rejects_assigned(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 0)
        with pytest.raises(DuplicateEventError):
            engine.scores_for_interval(0, [0, 1])

    def test_omega_requires_scheduled_event(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        with pytest.raises(UnknownEntityError):
            engine.omega(0)

    def test_empty_scores_request(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        assert engine.scores_for_interval(0, []).shape == (0,)

    def test_interval_utility_sums_omegas(self, random_instance, engine_kind):
        engine = make_engine(random_instance, EngineSpec(engine_kind))
        engine.assign(0, 2)
        engine.assign(3, 2)
        assert engine.interval_utility(2) == pytest.approx(
            engine.omega(0) + engine.omega(3), abs=1e-9
        )


class TestEngineEquivalence:
    """The vectorized engine must match the reference to 1e-9 everywhere."""

    def _pair(self, seed):
        instance = make_random_instance(seed=seed)
        return instance, make_engine(instance, EngineSpec("reference")), make_engine(
            instance, EngineSpec("vectorized")
        )

    def test_scores_match_on_empty_schedule(self):
        instance, ref, vec = self._pair(61)
        for interval in range(instance.n_intervals):
            np.testing.assert_allclose(
                vec.scores_for_interval(interval, range(instance.n_events)),
                ref.scores_for_interval(interval, range(instance.n_events)),
                atol=1e-9,
            )

    def test_scores_match_after_assignments(self):
        instance, ref, vec = self._pair(62)
        moves = [(0, 0), (1, 0), (2, 1), (3, 3)]
        for event, interval in moves:
            ref.assign(event, interval)
            vec.assign(event, interval)
        remaining = [
            e for e in range(instance.n_events)
            if not ref.schedule.contains_event(e)
        ]
        for interval in range(instance.n_intervals):
            np.testing.assert_allclose(
                vec.scores_for_interval(interval, remaining),
                ref.scores_for_interval(interval, remaining),
                atol=1e-9,
            )

    def test_omega_and_totals_match(self):
        instance, ref, vec = self._pair(63)
        for event, interval in [(0, 1), (1, 1), (4, 2)]:
            ref.assign(event, interval)
            vec.assign(event, interval)
        for event in (0, 1, 4):
            assert vec.omega(event) == pytest.approx(ref.omega(event), abs=1e-9)
        assert vec.total_utility() == pytest.approx(
            ref.total_utility(), abs=1e-9
        )

    def test_chunked_evaluation_matches_unchunked(self):
        instance = make_random_instance(seed=64, n_users=37, n_events=8)
        small_chunks = VectorizedEngine(instance, chunk_elements=16)
        one_shot = VectorizedEngine(instance)
        for interval in range(instance.n_intervals):
            np.testing.assert_allclose(
                small_chunks.scores_for_interval(interval, range(8)),
                one_shot.scores_for_interval(interval, range(8)),
                atol=1e-12,
            )

    def test_single_score_matches_bulk(self):
        instance, ref, vec = self._pair(65)
        vec.assign(0, 0)
        bulk = vec.scores_for_interval(0, [1, 2, 3])
        singles = [vec.score(e, 0) for e in (1, 2, 3)]
        np.testing.assert_allclose(bulk, singles, atol=1e-12)


class TestZeroDenominatorConvention:
    def test_all_zero_interest_gives_zero_everything(self):
        """0/0 = 0: nobody interested in anything -> utility stays 0."""
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            TimeInterval,
            User,
        )

        users = [User(index=0)]
        intervals = [TimeInterval(index=0)]
        events = [CandidateEvent(index=0, location=0)]
        interest = InterestMatrix.from_arrays(np.zeros((1, 1)))
        instance = SESInstance(
            users, intervals, events, [], interest,
            ActivityModel.constant(1, 1), Organizer(resources=1.0),
        )
        for kind in ("reference", "vectorized"):
            engine = make_engine(instance, EngineSpec(kind))
            assert engine.score(0, 0) == 0.0
            engine.assign(0, 0)
            assert engine.omega(0) == 0.0
            assert engine.total_utility() == 0.0
