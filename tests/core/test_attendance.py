"""Tests of Eq. 1 and Eq. 2 semantics, including the hand-worked example."""

import pytest

from repro.core.attendance import (
    attendance_probability,
    expected_attendance,
    luce_denominator,
)
from repro.core.errors import UnknownEntityError
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


class TestLuceDenominator:
    def test_empty_interval_counts_competing_only(self, hand_instance):
        schedule = Schedule(hand_instance)
        # u0 has interest 0.5 in the lone competing event at t0
        assert luce_denominator(hand_instance, schedule, 0, 0) == pytest.approx(0.5)
        assert luce_denominator(hand_instance, schedule, 1, 0) == pytest.approx(0.0)

    def test_interval_without_competition_is_zero(self, hand_instance):
        schedule = Schedule(hand_instance)
        assert luce_denominator(hand_instance, schedule, 0, 1) == 0.0

    def test_scheduled_events_add_their_interest(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0), Assignment(1, 0)])
        # u0: competing 0.5 + e0 0.5 + e1 0.25
        assert luce_denominator(hand_instance, schedule, 0, 0) == pytest.approx(1.25)


class TestAttendanceProbability:
    def test_hand_example_single_event(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0)])
        # rho(u0) = 1.0 * 0.5 / (0.5 + 0.5)
        assert attendance_probability(hand_instance, schedule, 0, 0) == pytest.approx(0.5)

    def test_zero_interest_zero_probability(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0)])
        # u1 has mu = 0 for e0 and no competing interest: 0/0 convention
        assert attendance_probability(hand_instance, schedule, 1, 0) == 0.0

    def test_no_competition_full_share(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(1, 1)])
        # at t1 nothing competes: rho(u1) = sigma = 0.4 (mu cancels)
        assert attendance_probability(hand_instance, schedule, 1, 1) == pytest.approx(0.4)

    def test_cannibalization_lowers_probability(self, hand_instance):
        alone = Schedule(hand_instance, [Assignment(0, 0)])
        together = Schedule(hand_instance, [Assignment(0, 0), Assignment(1, 0)])
        assert attendance_probability(
            hand_instance, together, 0, 0
        ) < attendance_probability(hand_instance, alone, 0, 0)

    def test_unscheduled_event_raises(self, hand_instance):
        with pytest.raises(UnknownEntityError, match="not scheduled"):
            attendance_probability(hand_instance, Schedule(hand_instance), 0, 0)

    def test_probability_in_unit_interval_randomized(self):
        instance = make_random_instance(seed=31)
        schedule = Schedule(instance, [Assignment(0, 0), Assignment(1, 0)])
        for user in range(instance.n_users):
            for event in (0, 1):
                rho = attendance_probability(instance, schedule, user, event)
                assert 0.0 <= rho <= 1.0

    def test_shares_sum_below_sigma(self):
        """Sum of rho over co-scheduled events never exceeds sigma[u, t]."""
        instance = make_random_instance(seed=32, n_events=5, n_intervals=2)
        schedule = Schedule(
            instance, [Assignment(0, 0), Assignment(1, 0), Assignment(2, 0)]
        )
        for user in range(instance.n_users):
            total = sum(
                attendance_probability(instance, schedule, user, event)
                for event in (0, 1, 2)
            )
            assert total <= instance.activity.sigma(user, 0) + 1e-12


class TestExpectedAttendance:
    def test_hand_example_omega(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0)])
        # only u0 contributes: omega = 0.5
        assert expected_attendance(hand_instance, schedule, 0) == pytest.approx(0.5)

    def test_hand_example_two_events_same_interval(self, hand_instance):
        schedule = Schedule(hand_instance, [Assignment(0, 0), Assignment(1, 0)])
        # u0 denominator: 0.5 + 0.5 + 0.25 = 1.25
        # omega(e0) = 1.0 * 0.5 / 1.25 = 0.4
        # omega(e1) = u0: 1.0 * 0.25/1.25 = 0.2; u1: 0.8 * 1.0/1.0 = 0.8
        assert expected_attendance(hand_instance, schedule, 0) == pytest.approx(0.4)
        assert expected_attendance(hand_instance, schedule, 1) == pytest.approx(1.0)

    def test_omega_bounded_by_population_activity(self):
        instance = make_random_instance(seed=33)
        schedule = Schedule(instance, [Assignment(0, 1)])
        omega = expected_attendance(instance, schedule, 0)
        sigma_total = instance.activity.interval_column(1).sum()
        assert 0.0 <= omega <= sigma_total
