"""Tests of the calendar time-grid builder."""

import pytest

from repro.core.timegrid import (
    AFTERNOON_AND_EVENING,
    CalendarGrid,
    DayPart,
    EVENING_ONLY,
)


class TestDayPart:
    def test_valid_window(self):
        part = DayPart("brunch", 10.0, 13.0)
        assert part.name == "brunch"

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="start < end"):
            DayPart("x", 13.0, 10.0)

    def test_out_of_day_window_rejected(self):
        with pytest.raises(ValueError, match="start < end"):
            DayPart("x", 20.0, 26.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            DayPart("", 10.0, 12.0)


class TestCalendarGrid:
    def test_interval_count(self):
        grid = CalendarGrid(n_days=11, parts=AFTERNOON_AND_EVENING)
        assert grid.n_intervals == 22

    def test_single_part_preset(self):
        grid = CalendarGrid(n_days=7, parts=EVENING_ONLY)
        assert grid.n_intervals == 7

    def test_overlapping_parts_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            CalendarGrid(
                n_days=2,
                parts=(DayPart("a", 10.0, 14.0), DayPart("b", 13.0, 16.0)),
            )

    def test_touching_parts_allowed(self):
        grid = CalendarGrid(
            n_days=1,
            parts=(DayPart("a", 10.0, 14.0), DayPart("b", 14.0, 16.0)),
        )
        assert grid.n_intervals == 2

    def test_parts_sorted_by_start(self):
        grid = CalendarGrid(
            n_days=1,
            parts=(DayPart("late", 19.0, 23.0), DayPart("early", 9.0, 12.0)),
        )
        assert [part.name for part in grid.parts] == ["early", "late"]

    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="n_days"):
            CalendarGrid(n_days=0)
        with pytest.raises(ValueError, match="day part"):
            CalendarGrid(n_days=1, parts=())
        with pytest.raises(ValueError, match="first_weekday"):
            CalendarGrid(n_days=1, first_weekday=7)


class TestWeekdays:
    def test_weekday_cycle(self):
        grid = CalendarGrid(n_days=9, first_weekday=0)
        assert grid.weekday_of(0) == "mon"
        assert grid.weekday_of(6) == "sun"
        assert grid.weekday_of(7) == "mon"

    def test_first_weekday_offset(self):
        grid = CalendarGrid(n_days=3, first_weekday=4)  # friday start
        assert grid.weekday_of(0) == "fri"
        assert grid.is_weekend(1)  # saturday
        assert grid.is_weekend(2)  # sunday

    def test_day_out_of_range(self):
        with pytest.raises(IndexError):
            CalendarGrid(n_days=2).weekday_of(2)


class TestIntervalMapping:
    def test_day_and_part_of_interval(self):
        grid = CalendarGrid(n_days=3, parts=AFTERNOON_AND_EVENING)
        assert grid.day_of_interval(0) == 0
        assert grid.day_of_interval(5) == 2
        assert grid.part_of_interval(0).name == "afternoon"
        assert grid.part_of_interval(3).name == "evening"

    def test_interval_index_out_of_range(self):
        grid = CalendarGrid(n_days=1, parts=EVENING_ONLY)
        with pytest.raises(IndexError):
            grid.day_of_interval(1)
        with pytest.raises(IndexError):
            grid.part_of_interval(1)


class TestBuildIntervals:
    def test_intervals_are_disjoint_and_ordered(self):
        grid = CalendarGrid(n_days=4, parts=AFTERNOON_AND_EVENING)
        intervals = grid.build_intervals()
        assert len(intervals) == 8
        for before, after in zip(intervals, intervals[1:]):
            assert before.end <= after.start

    def test_labels_carry_day_weekday_part(self):
        grid = CalendarGrid(n_days=2, parts=EVENING_ONLY, first_weekday=5)
        labels = [interval.label for interval in grid.build_intervals()]
        assert labels == ["d01-sat-evening", "d02-sun-evening"]

    def test_indices_are_contiguous(self):
        grid = CalendarGrid(n_days=3, parts=AFTERNOON_AND_EVENING)
        intervals = grid.build_intervals()
        assert [interval.index for interval in intervals] == list(range(6))

    def test_grid_feeds_instance_validation(self):
        """Built intervals must satisfy SESInstance's disjointness check."""
        import numpy as np

        from repro.core import (
            ActivityModel,
            CandidateEvent,
            InterestMatrix,
            Organizer,
            SESInstance,
            User,
        )

        grid = CalendarGrid(n_days=2, parts=AFTERNOON_AND_EVENING)
        intervals = grid.build_intervals()
        instance = SESInstance(
            users=[User(index=0)],
            intervals=intervals,
            events=[CandidateEvent(index=0, location=0)],
            competing=[],
            interest=InterestMatrix.from_arrays(np.array([[0.5]])),
            activity=ActivityModel.constant(1, len(intervals)),
            organizer=Organizer(resources=5.0),
        )
        assert instance.n_intervals == 4
