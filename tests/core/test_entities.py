"""Unit tests for the domain entities (paper Section II vocabulary)."""

import pytest

from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)


class TestUser:
    def test_display_name_defaults_to_index(self):
        assert User(index=3).display_name == "user#3"

    def test_display_name_prefers_explicit_name(self):
        assert User(index=0, name="alice").display_name == "alice"

    def test_tags_default_empty(self):
        assert User(index=0).tags == frozenset()

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            User(index=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            User(index=0).index = 5


class TestTimeInterval:
    def test_unbounded_by_default(self):
        assert not TimeInterval(index=0).bounded

    def test_bounded_with_both_endpoints(self):
        assert TimeInterval(index=0, start=1.0, end=2.0).bounded

    def test_end_must_exceed_start(self):
        with pytest.raises(ValueError, match="end must exceed start"):
            TimeInterval(index=0, start=2.0, end=2.0)

    def test_overlap_detection(self):
        left = TimeInterval(index=0, start=0.0, end=2.0)
        right = TimeInterval(index=1, start=1.0, end=3.0)
        assert left.overlaps(right)
        assert right.overlaps(left)

    def test_adjacent_intervals_do_not_overlap(self):
        left = TimeInterval(index=0, start=0.0, end=2.0)
        right = TimeInterval(index=1, start=2.0, end=4.0)
        assert not left.overlaps(right)

    def test_unbounded_intervals_never_overlap(self):
        assert not TimeInterval(index=0).overlaps(TimeInterval(index=1))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TimeInterval(index=-2)

    def test_display_name(self):
        assert TimeInterval(index=1, label="monday").display_name == "monday"
        assert TimeInterval(index=1).display_name == "t#1"


class TestCandidateEvent:
    def test_required_resources_default_zero(self):
        assert CandidateEvent(index=0, location=0).required_resources == 0.0

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CandidateEvent(index=0, location=0, required_resources=-1.0)

    def test_negative_location_rejected(self):
        with pytest.raises(ValueError, match="location"):
            CandidateEvent(index=0, location=-1)

    def test_display_name(self):
        event = CandidateEvent(index=4, location=0, name="gala")
        assert event.display_name == "gala"
        assert CandidateEvent(index=4, location=0).display_name == "event#4"


class TestCompetingEvent:
    def test_holds_interval(self):
        assert CompetingEvent(index=0, interval=3).interval == 3

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            CompetingEvent(index=0, interval=-1)

    def test_display_name(self):
        assert CompetingEvent(index=2, interval=0).display_name == "competing#2"


class TestOrganizer:
    def test_resources_stored(self):
        assert Organizer(resources=20.0).resources == 20.0

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Organizer(resources=-0.5)

    def test_zero_resources_allowed(self):
        # an organizer with zero capacity can only host zero-cost events
        assert Organizer(resources=0.0).resources == 0.0
