"""Unit tests for the activity model (the paper's ``sigma``)."""

import numpy as np
import pytest

from repro.core.activity import ActivityModel
from repro.core.errors import InstanceValidationError


class TestConstruction:
    def test_shape_accessors(self):
        model = ActivityModel(np.full((3, 2), 0.5))
        assert model.n_users == 3
        assert model.n_intervals == 2

    def test_values_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ActivityModel(np.array([[1.2]]))

    def test_one_dimensional_rejected(self):
        with pytest.raises(InstanceValidationError, match="2-D"):
            ActivityModel(np.zeros(4))

    def test_matrix_read_only(self):
        model = ActivityModel(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            model.matrix[0, 0] = 1.0

    def test_sigma_scalar_access(self):
        model = ActivityModel(np.array([[0.2, 0.8]]))
        assert model.sigma(0, 1) == 0.8

    def test_interval_column(self):
        model = ActivityModel(np.array([[0.1, 0.2], [0.3, 0.4]]))
        np.testing.assert_array_equal(model.interval_column(0), [0.1, 0.3])


class TestConstant:
    def test_constant_fills(self):
        model = ActivityModel.constant(2, 3, 0.75)
        assert (model.matrix == 0.75).all()

    def test_default_value_is_one(self):
        assert (ActivityModel.constant(1, 1).matrix == 1.0).all()


class TestUniformRandom:
    def test_reproducible_with_seed(self):
        a = ActivityModel.uniform_random(5, 4, seed=9)
        b = ActivityModel.uniform_random(5, 4, seed=9)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_respects_bounds(self):
        model = ActivityModel.uniform_random(50, 10, seed=0, low=0.3, high=0.6)
        assert model.matrix.min() >= 0.3
        assert model.matrix.max() <= 0.6

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="low <= high"):
            ActivityModel.uniform_random(2, 2, low=0.8, high=0.2)


class TestFromCheckinRates:
    def test_zero_history_gives_uniform_smoothing(self):
        model = ActivityModel.from_checkin_rates(
            np.zeros((2, 3)), smoothing=1.0, max_observations=10
        )
        # (0 + 1) / (10 + 2) for every cell
        assert model.matrix == pytest.approx(np.full((2, 3), 1 / 12))

    def test_frequent_slot_approaches_one(self):
        counts = np.array([[10, 0]])
        model = ActivityModel.from_checkin_rates(
            counts, smoothing=0.0, max_observations=10
        )
        assert model.sigma(0, 0) == pytest.approx(1.0)
        assert model.sigma(0, 1) == pytest.approx(0.0)

    def test_per_user_normalization_without_observations(self):
        counts = np.array([[4, 2], [8, 8]])
        model = ActivityModel.from_checkin_rates(counts, smoothing=0.0)
        assert model.sigma(0, 0) == pytest.approx(4 / 8)  # global max 8
        assert model.sigma(1, 0) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InstanceValidationError, match="non-negative"):
            ActivityModel.from_checkin_rates(np.array([[-1.0]]))

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError, match="smoothing"):
            ActivityModel.from_checkin_rates(np.zeros((1, 1)), smoothing=-1.0)

    def test_output_always_valid_probability(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 30, size=(20, 7))
        model = ActivityModel.from_checkin_rates(counts, max_observations=15)
        assert model.matrix.min() >= 0.0
        assert model.matrix.max() <= 1.0
