"""Hypothesis strategies for SES instances and schedules.

Strategy design: rather than generating raw matrices element-by-element
(slow to shrink, slow to run), we generate *structure* — sizes, seeds,
densities — and materialize instances through the same deterministic
factory the unit tests use.  Shrinking then walks toward smaller sizes,
which is what actually simplifies counterexamples here.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

from tests.conftest import make_random_instance


@st.composite
def ses_instances(
    draw,
    max_users: int = 12,
    max_events: int = 6,
    max_intervals: int = 4,
    backends: tuple[str, ...] = ("dense",),
) -> SESInstance:
    """A random, always-valid SES instance of bounded size.

    ``backends`` lists the ``mu`` storage kinds to draw from; pass
    ``("dense", "sparse")`` for backend-agnostic properties.  The all-zero
    interest edge case (density 0) is part of the draw.
    """
    n_users = draw(st.integers(1, max_users))
    n_events = draw(st.integers(1, max_events))
    n_intervals = draw(st.integers(1, max_intervals))
    n_competing = draw(st.integers(0, 5))
    n_locations = draw(st.integers(1, 4))
    density = draw(st.sampled_from([0.0, 0.2, 0.5, 0.9]))
    theta = draw(st.sampled_from([4.0, 8.0, 100.0]))
    seed = draw(st.integers(0, 2**20))
    backend = draw(st.sampled_from(backends))
    return make_random_instance(
        n_users=n_users,
        n_events=n_events,
        n_intervals=n_intervals,
        n_competing=n_competing,
        n_locations=n_locations,
        theta=theta,
        xi_range=(0.5, min(3.0, theta)),
        interest_density=density,
        seed=seed,
        interest_backend=backend,
    )


@st.composite
def instances_with_schedules(
    draw,
    backends: tuple[str, ...] = ("dense",),
) -> tuple[SESInstance, Schedule]:
    """An instance plus a feasible schedule over it (possibly empty)."""
    instance = draw(ses_instances(backends=backends))
    seed = draw(st.integers(0, 2**20))
    target = draw(st.integers(0, instance.n_events))

    rng = np.random.default_rng(seed)
    checker = FeasibilityChecker(instance)
    schedule = Schedule(instance)
    order = rng.permutation(instance.n_events * instance.n_intervals)
    for flat in order:
        if len(schedule) >= target:
            break
        event, interval = divmod(int(flat), instance.n_intervals)
        assignment = Assignment(event=event, interval=interval)
        if checker.is_valid(assignment):
            checker.apply(assignment)
            schedule.add(assignment)
    return instance, schedule
