"""Property test: serialization is utility-preserving for any instance."""

import numpy as np
from hypothesis import given, settings

from repro.algorithms.greedy import GreedyScheduler
from repro.data.serialization import instance_from_dict, instance_to_dict

from tests.properties.conftest import ses_instances


@given(instance=ses_instances())
@settings(max_examples=30, deadline=None)
def test_round_trip_preserves_solver_behaviour(instance):
    """Solving before and after a JSON round trip gives identical results."""
    rebuilt = instance_from_dict(instance_to_dict(instance))
    k = min(3, instance.n_events)
    original = GreedyScheduler().solve(instance, k)
    restored = GreedyScheduler().solve(rebuilt, k)
    assert original.schedule.as_mapping() == restored.schedule.as_mapping()
    assert abs(original.utility - restored.utility) <= 1e-12 * max(
        1.0, original.utility
    )


@given(instance=ses_instances())
@settings(max_examples=30, deadline=None)
def test_round_trip_is_bitwise_for_matrices(instance):
    rebuilt = instance_from_dict(instance_to_dict(instance))
    np.testing.assert_array_equal(
        rebuilt.interest.candidate, instance.interest.candidate
    )
    np.testing.assert_array_equal(
        rebuilt.interest.competing, instance.interest.competing
    )
    np.testing.assert_array_equal(
        rebuilt.activity.matrix, instance.activity.matrix
    )
