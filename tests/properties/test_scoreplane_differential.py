"""ScorePlane warm-start contract: plane-fed solves == cold solves.

The acceptance property of the shared score plane: injecting a warm
plane into any batch solver yields a *bit-identical schedule* and a
utility within 1e-9 of the cold path, on both interest backends — even
after the plane has absorbed an arbitrary stream of live-instance deltas
(arrivals, cancellations, drift, rivals) and served earlier solves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.live import LiveInstance
from repro.core.scoreplane import ScorePlane

from tests.conftest import make_random_instance

BACKENDS = [("dense", "vectorized"), ("sparse", "sparse")]
#: Deterministic one-shot solvers whose first move sweeps initial scores.
SOLVERS = ("grd", "grd-heap", "top", "beam")


def build(backend, seed):
    if backend == "sparse":
        pytest.importorskip("scipy")
    return make_random_instance(
        seed=seed,
        n_users=25,
        n_events=7,
        n_intervals=5,
        interest_backend=backend,
    )


def solve_pair(instance, spec, solver_name, k, plane):
    cold = solver_registry.create(solver_name, engine=spec).solve(instance, k)
    warm = solver_registry.create(solver_name, engine=spec).solve(
        instance, k, plane=plane
    )
    return cold, warm


@pytest.mark.parametrize("backend,kind", BACKENDS)
@pytest.mark.parametrize("solver_name", SOLVERS)
@given(seed=st.integers(0, 40), k=st.integers(1, 6))
@settings(max_examples=12, deadline=None)
def test_plane_fed_solve_matches_cold(backend, kind, solver_name, seed, k):
    instance = build(backend, seed)
    spec = EngineSpec(kind=kind)
    plane = ScorePlane(spec.build(instance))
    cold, warm = solve_pair(instance, spec, solver_name, k, plane)
    assert warm.schedule.as_mapping() == cold.schedule.as_mapping()
    assert warm.utility == pytest.approx(cold.utility, abs=1e-9)
    # and the plane stays reusable: a second warm solve is identical too
    again = solver_registry.create(solver_name, engine=spec).solve(
        instance, k, plane=plane
    )
    assert again.schedule.as_mapping() == cold.schedule.as_mapping()


@pytest.mark.parametrize("backend,kind", BACKENDS)
@given(seed=st.integers(0, 30), data=st.data())
@settings(max_examples=10, deadline=None)
def test_plane_stays_exact_under_live_deltas(backend, kind, seed, data):
    """After random structural deltas, a warm GRD solve over the live
    view still equals a cold GRD solve by a fresh engine."""
    instance = build(backend, seed)
    live = LiveInstance(instance)
    spec = EngineSpec(kind=kind)
    plane = ScorePlane(spec.build(live))
    plane.ensure()
    rng = np.random.default_rng(seed)

    n_ops = data.draw(st.integers(1, 6))
    for _ in range(n_ops):
        op = data.draw(st.sampled_from(["arrive", "cancel", "drift", "rival"]))
        column = np.where(
            rng.random(live.n_users) < 0.4, rng.random(live.n_users), 0.0
        )
        if op == "arrive":
            delta = live.add_event(
                CandidateEvent(
                    index=live.n_events,
                    location=int(rng.integers(100, 200)),
                    required_resources=1.0,
                ),
                column,
            )
        elif op == "cancel":
            if live.n_events <= 1:
                continue
            delta = live.remove_event(int(rng.integers(live.n_events)))
        elif op == "drift":
            delta = live.replace_event_interest(
                int(rng.integers(live.n_events)), column
            )
        else:
            delta = live.add_competing(
                CompetingEvent(
                    index=live.n_competing,
                    interval=int(rng.integers(live.n_intervals)),
                ),
                column,
            )
        plane.apply_delta(delta)

    k = min(4, live.n_events)
    warm = solver_registry.create("grd", engine=spec).solve(
        live, k, plane=plane
    )
    cold = solver_registry.create("grd", engine=spec).solve(live, k)
    assert warm.schedule.as_mapping() == cold.schedule.as_mapping()
    assert warm.utility == pytest.approx(cold.utility, abs=1e-9)
