"""Property tests: the incremental checker agrees with the one-shot check.

The :class:`FeasibilityChecker` maintains per-interval state move by move;
:func:`is_schedule_feasible` re-derives everything from scratch.  Any
divergence between them means solvers (which trust the checker) and
validators (which trust the one-shot check) would disagree about the same
schedule — so we pin them to each other over random build histories,
including interleaved removals.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import FeasibilityChecker, is_schedule_feasible
from repro.core.schedule import Assignment, Schedule

from tests.properties.conftest import ses_instances

COMMON = settings(max_examples=50, deadline=None)


@given(
    instance=ses_instances(),
    seed=st.integers(0, 2**20),
    churn=st.floats(0.0, 0.5),
)
@COMMON
def test_checker_matches_oneshot_under_random_histories(instance, seed, churn):
    """Build a schedule via random valid moves (with removals); states agree."""
    rng = np.random.default_rng(seed)
    checker = FeasibilityChecker(instance)
    schedule = Schedule(instance)

    for _ in range(3 * instance.n_events):
        remove = schedule.scheduled_events() and rng.random() < churn
        if remove:
            victim = int(rng.choice(sorted(schedule.scheduled_events())))
            removed = schedule.remove(victim)
            checker.unapply(removed)
        else:
            event = int(rng.integers(instance.n_events))
            interval = int(rng.integers(instance.n_intervals))
            assignment = Assignment(event, interval)
            if checker.is_valid(assignment):
                checker.apply(assignment)
                schedule.add(assignment)
        # invariant: everything the checker accepted is one-shot feasible
        assert is_schedule_feasible(instance, schedule)

    # final cross-check: the checker's validity verdicts are consistent
    # with actually attempting the addition
    for event in range(instance.n_events):
        if schedule.contains_event(event):
            continue
        for interval in range(instance.n_intervals):
            assignment = Assignment(event, interval)
            if checker.is_valid(assignment):
                grown = schedule.copy()
                grown.add(assignment)
                assert is_schedule_feasible(instance, grown)
            break  # one interval per event bounds runtime


@given(instance=ses_instances(), seed=st.integers(0, 2**20))
@settings(max_examples=40, deadline=None)
def test_checker_rebuild_equals_incremental_state(instance, seed):
    """A checker rebuilt from the final schedule behaves identically."""
    rng = np.random.default_rng(seed)
    incremental = FeasibilityChecker(instance)
    schedule = Schedule(instance)
    for _ in range(2 * instance.n_events):
        event = int(rng.integers(instance.n_events))
        interval = int(rng.integers(instance.n_intervals))
        assignment = Assignment(event, interval)
        if incremental.is_valid(assignment):
            incremental.apply(assignment)
            schedule.add(assignment)

    rebuilt = FeasibilityChecker(instance, schedule)
    for event in range(instance.n_events):
        for interval in range(instance.n_intervals):
            assignment = Assignment(event, interval)
            assert incremental.is_valid(assignment) == rebuilt.is_valid(
                assignment
            )
    for interval in range(instance.n_intervals):
        assert incremental.remaining_resources(interval) == (
            rebuilt.remaining_resources(interval)
        )
