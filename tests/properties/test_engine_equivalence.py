"""Property test: the vectorized engine IS the reference engine, numerically.

The single most load-bearing invariant in the library — every solver
result, benchmark number and figure rests on it.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.engine import make_engine

from tests.properties.conftest import instances_with_schedules

COMMON = settings(max_examples=50, deadline=None)


@given(pair=instances_with_schedules())
@COMMON
def test_engines_agree_on_everything(pair):
    instance, schedule = pair
    reference = make_engine(instance, "reference")
    vectorized = make_engine(instance, "vectorized")
    for assignment in schedule:
        reference.assign(assignment.event, assignment.interval)
        vectorized.assign(assignment.event, assignment.interval)

    # total utility
    assert abs(
        reference.total_utility() - vectorized.total_utility()
    ) <= 1e-9

    # per-event omega
    for event in schedule.scheduled_events():
        assert abs(reference.omega(event) - vectorized.omega(event)) <= 1e-9

    # per-interval utility
    for interval in range(instance.n_intervals):
        assert abs(
            reference.interval_utility(interval)
            - vectorized.interval_utility(interval)
        ) <= 1e-9

    # marginal scores for every remaining event everywhere
    remaining = [
        event
        for event in range(instance.n_events)
        if not schedule.contains_event(event)
    ]
    for interval in range(instance.n_intervals):
        np.testing.assert_allclose(
            vectorized.scores_for_interval(interval, remaining),
            reference.scores_for_interval(interval, remaining),
            atol=1e-9,
        )


@given(pair=instances_with_schedules())
@settings(max_examples=30, deadline=None)
def test_unassign_round_trip_preserves_scores(pair):
    """assign + unassign must leave the vectorized engine's state intact."""
    instance, schedule = pair
    engine = make_engine(instance, "vectorized")
    for assignment in schedule:
        engine.assign(assignment.event, assignment.interval)
    remaining = [
        event
        for event in range(instance.n_events)
        if not schedule.contains_event(event)
    ]
    if not remaining:
        return
    probe = remaining[0]
    baseline = [
        engine.score(probe, interval)
        for interval in range(instance.n_intervals)
    ]
    other = remaining[-1]
    engine.assign(other, 0)
    engine.unassign(other)
    after = [
        engine.score(probe, interval)
        for interval in range(instance.n_intervals)
    ]
    np.testing.assert_allclose(after, baseline, atol=1e-9)
