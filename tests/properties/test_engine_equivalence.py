"""Property test: every engine IS the reference engine, numerically.

The single most load-bearing invariant in the library — every solver
result, benchmark number and figure rests on it.  Three engines
(reference / vectorized / sparse) times two interest backends
(dense / sparse) must agree to 1e-9 on every query a solver can issue,
through arbitrary assign/unassign sequences, including emptied intervals
and all-zero interest.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineSpec, make_engine

from tests.conftest import make_random_instance
from tests.properties.conftest import instances_with_schedules

COMMON = settings(max_examples=50, deadline=None)

BOTH_BACKENDS = ("dense", "sparse")
FAST_ENGINES = ("vectorized", "sparse")


def _assert_engines_agree(instance, schedule, engines):
    """Every query of every non-reference engine matches the reference."""
    reference = engines["reference"]

    for name in FAST_ENGINES:
        engine = engines[name]
        assert abs(reference.total_utility() - engine.total_utility()) <= 1e-9, name

        for event in schedule.scheduled_events():
            assert abs(reference.omega(event) - engine.omega(event)) <= 1e-9, name

        remaining = [
            event
            for event in range(instance.n_events)
            if not schedule.contains_event(event)
        ]
        for interval in range(instance.n_intervals):
            assert (
                abs(
                    reference.interval_utility(interval)
                    - engine.interval_utility(interval)
                )
                <= 1e-9
            ), name
            np.testing.assert_allclose(
                engine.scores_for_interval(interval, remaining),
                reference.scores_for_interval(interval, remaining),
                atol=1e-9,
                err_msg=name,
            )


@given(pair=instances_with_schedules(backends=BOTH_BACKENDS))
@COMMON
def test_engines_agree_on_everything(pair):
    instance, schedule = pair
    engines = {
        kind: make_engine(instance, EngineSpec(kind))
        for kind in ("reference", "vectorized", "sparse")
    }
    for assignment in schedule:
        for engine in engines.values():
            engine.assign(assignment.event, assignment.interval)
    _assert_engines_agree(instance, schedule, engines)


@given(
    pair=instances_with_schedules(backends=BOTH_BACKENDS),
    drop_seed=st.integers(0, 2**20),
)
@settings(max_examples=50, deadline=None)
def test_engines_agree_after_unassigns(pair, drop_seed):
    """Parity must survive removals, not just append-only growth.

    This is the property that catches subtraction residue: a user whose
    remaining scheduled mass should be exactly zero but carries ~1e-16
    contributes a whole sigma of phantom utility wherever the competing
    mass is also zero.
    """
    instance, schedule = pair
    engines = {
        kind: make_engine(instance, EngineSpec(kind))
        for kind in ("reference", "vectorized", "sparse")
    }
    for assignment in schedule:
        for engine in engines.values():
            engine.assign(assignment.event, assignment.interval)

    rng = np.random.default_rng(drop_seed)
    events = list(schedule.scheduled_events())
    to_drop = [e for e in events if rng.random() < 0.5]
    for event in to_drop:
        for engine in engines.values():
            engine.unassign(event)

    live = engines["reference"].schedule
    _assert_engines_agree(instance, live, engines)


@given(pair=instances_with_schedules(backends=BOTH_BACKENDS))
@settings(max_examples=30, deadline=None)
def test_emptied_intervals_leave_no_trace(pair):
    """Assigning then unassigning everything returns every engine to zero."""
    instance, schedule = pair
    engines = {
        kind: make_engine(instance, EngineSpec(kind))
        for kind in ("reference", "vectorized", "sparse")
    }
    for assignment in schedule:
        for engine in engines.values():
            engine.assign(assignment.event, assignment.interval)
    for event in list(schedule.scheduled_events()):
        for engine in engines.values():
            engine.unassign(event)

    all_events = list(range(instance.n_events))
    for kind, engine in engines.items():
        assert engine.total_utility() == 0.0, kind
        fresh = make_engine(instance, EngineSpec(kind))
        for interval in range(instance.n_intervals):
            assert engine.interval_utility(interval) == 0.0, kind
            np.testing.assert_allclose(
                engine.scores_for_interval(interval, all_events),
                fresh.scores_for_interval(interval, all_events),
                atol=1e-9,
                err_msg=kind,
            )


@given(
    backend=st.sampled_from(BOTH_BACKENDS),
    kind=st.sampled_from(("reference", "vectorized", "sparse")),
    seed=st.integers(0, 2**10),
)
@settings(max_examples=20, deadline=None)
def test_all_zero_interest_scores_nothing(backend, kind, seed):
    """With mu == 0 everywhere, every query answers exactly 0."""
    instance = make_random_instance(
        interest_density=0.0, seed=seed, interest_backend=backend
    )
    engine = make_engine(instance, EngineSpec(kind))
    engine.assign(0, 0)
    engine.assign(1, 0)
    assert engine.total_utility() == 0.0
    assert engine.omega(0) == 0.0
    for interval in range(instance.n_intervals):
        assert engine.interval_utility(interval) == 0.0
        assert engine.score(2, interval) == 0.0
    engine.unassign(0)
    engine.unassign(1)
    assert engine.total_utility() == 0.0


@given(
    pair=instances_with_schedules(backends=BOTH_BACKENDS),
    kind=st.sampled_from(FAST_ENGINES),
)
@settings(max_examples=30, deadline=None)
def test_unassign_round_trip_preserves_scores(pair, kind):
    """assign + unassign must leave a stateful engine's answers intact."""
    instance, schedule = pair
    engine = make_engine(instance, EngineSpec(kind))
    for assignment in schedule:
        engine.assign(assignment.event, assignment.interval)
    remaining = [
        event
        for event in range(instance.n_events)
        if not schedule.contains_event(event)
    ]
    if not remaining:
        return
    probe = remaining[0]
    baseline = [
        engine.score(probe, interval)
        for interval in range(instance.n_intervals)
    ]
    other = remaining[-1]
    engine.assign(other, 0)
    engine.unassign(other)
    after = [
        engine.score(probe, interval)
        for interval in range(instance.n_intervals)
    ]
    np.testing.assert_allclose(after, baseline, atol=1e-9)
