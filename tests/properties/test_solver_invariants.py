"""Property tests over all solvers: feasibility, sizing, quality ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler
from repro.algorithms.random_schedule import RandomScheduler
from repro.algorithms.top import TopKScheduler
from repro.core.feasibility import FeasibilityChecker, is_schedule_feasible
from repro.core.objective import total_utility
from repro.core.schedule import Assignment

from tests.properties.conftest import ses_instances

COMMON = settings(max_examples=40, deadline=None)


def _solvers(seed: int):
    return [
        GreedyScheduler(),
        LazyGreedyScheduler(),
        TopKScheduler(),
        RandomScheduler(seed=seed),
    ]


@given(instance=ses_instances(), k=st.integers(0, 6), seed=st.integers(0, 99))
@COMMON
def test_every_solver_feasible_and_bounded(instance, k, seed):
    for solver in _solvers(seed):
        result = solver.solve(instance, k)
        assert is_schedule_feasible(instance, result.schedule)
        assert result.achieved_k <= min(k, instance.n_events)
        assert result.utility >= -1e-12
        # reported utility is the schedule's true Omega
        assert abs(
            result.utility - total_utility(instance, result.schedule)
        ) <= 1e-9 * max(1.0, result.utility)


@given(instance=ses_instances(), k=st.integers(1, 6), seed=st.integers(0, 99))
@COMMON
def test_solvers_fill_k_whenever_a_valid_assignment_remains(instance, k, seed):
    """If a solver stops short of k, no valid assignment can exist.

    This is the termination contract of Algorithm 1: it only returns
    |S| < k when its list has emptied.
    """
    for solver in _solvers(seed):
        result = solver.solve(instance, k)
        if result.achieved_k >= min(k, instance.n_events):
            continue
        checker = FeasibilityChecker(instance, result.schedule)
        for event in range(instance.n_events):
            for interval in range(instance.n_intervals):
                assert not checker.is_valid(Assignment(event, interval)), (
                    f"{solver.name} stopped at {result.achieved_k} < {k} while "
                    f"a[e{event}@t{interval}] was still valid"
                )


@given(instance=ses_instances(), k=st.integers(1, 5))
@COMMON
def test_heap_grd_matches_list_grd_utility(instance, k):
    """The lazy heap must not change greedy's achieved utility.

    Only *utility* is asserted: the two implementations may break exact
    score ties differently.  All positive-score selections coincide (the
    candidates and their scores are identical and distinct almost surely);
    ties arise structurally at score 0 (events nobody wants), where
    different placement orders can dead-end feasibility differently —
    changing ``achieved_k`` but, since the tied scores are all zero, never
    the utility.
    """
    list_result = GreedyScheduler().solve(instance, k)
    heap_result = LazyGreedyScheduler().solve(instance, k)
    assert abs(list_result.utility - heap_result.utility) <= 1e-9 * max(
        1.0, list_result.utility
    )


@given(instance=ses_instances(max_users=8, max_events=5, max_intervals=3),
       k=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_grd_quality_floor_against_exact_optimum(instance, k):
    """GRD stays above 1/3 of the exact optimum on tiny instances.

    Note this is a *tripwire*, not the paper's claim: greedy on a monotone
    submodular objective under one matroid gives 1/2, and the per-interval
    location/resource constraints add further matroid/knapsack structure
    that dilutes the provable factor.  Empirically GRD sits near optimal;
    anything under 1/3 would indicate a scoring or update bug, which is
    what this test is for.  (GRD >= TOP / RAND is deliberately NOT asserted
    universally — with binding resource constraints greedy's early pick can
    block a better pair, so it is not a theorem; the paper-shaped workloads
    in the integration suite check the empirical ordering instead.)
    """
    from repro.algorithms.exhaustive import ExhaustiveScheduler

    grd = GreedyScheduler().solve(instance, k)
    exact = ExhaustiveScheduler().solve(instance, k)
    # both fill maximally; compare only at equal size (the exact solver
    # prefers larger schedules lexicographically, and utilities of
    # different-size schedules are not comparable)
    if grd.achieved_k == exact.achieved_k:
        assert exact.utility >= grd.utility - 1e-9
        if exact.utility > 1e-12:
            assert grd.utility >= exact.utility / 3.0 - 1e-9
