"""Property tests of Eq. 1–3 invariants (DESIGN.md §5).

These are the *proved* facts of the model — they must hold on every
instance, not just the unit-test fixtures:

* rho is a probability and co-scheduled rhos share sigma;
* Omega decomposes by interval and matches between implementations;
* Omega respects the sigma-sum upper bound;
* Omega is monotone under adding assignments (scores non-negative).
"""

from hypothesis import given, settings

from repro.core.attendance import attendance_probability
from repro.core.objective import (
    total_utility,
    total_utility_fast,
    utility_upper_bound,
)
from repro.core.schedule import Assignment
from repro.core.scoring import assignment_score
from repro.core.feasibility import FeasibilityChecker

from tests.properties.conftest import instances_with_schedules

COMMON = settings(max_examples=60, deadline=None)


@given(pair=instances_with_schedules())
@COMMON
def test_rho_is_a_probability(pair):
    instance, schedule = pair
    for event in schedule.scheduled_events():
        for user in range(instance.n_users):
            rho = attendance_probability(instance, schedule, user, event)
            assert 0.0 <= rho <= 1.0 + 1e-12


@given(pair=instances_with_schedules())
@COMMON
def test_cochedule_shares_bounded_by_sigma(pair):
    """Sum of rho over the events of one interval never exceeds sigma[u,t]."""
    instance, schedule = pair
    for interval in schedule.used_intervals():
        events = schedule.events_at(interval)
        for user in range(instance.n_users):
            share = sum(
                attendance_probability(instance, schedule, user, event)
                for event in events
            )
            assert share <= instance.activity.sigma(user, interval) + 1e-9


@given(pair=instances_with_schedules())
@COMMON
def test_fast_and_reference_utilities_agree(pair):
    instance, schedule = pair
    reference = total_utility(instance, schedule)
    fast = total_utility_fast(instance, schedule)
    assert abs(reference - fast) <= 1e-9 * max(1.0, abs(reference))


@given(pair=instances_with_schedules())
@COMMON
def test_utility_respects_upper_bound(pair):
    instance, schedule = pair
    assert total_utility(instance, schedule) <= utility_upper_bound(instance) + 1e-9


@given(pair=instances_with_schedules())
@COMMON
def test_scores_non_negative_and_utility_monotone(pair):
    """Every valid addition has non-negative Eq. 4 score (monotone Omega)."""
    instance, schedule = pair
    checker = FeasibilityChecker(instance, schedule)
    before = total_utility(instance, schedule)
    for event in range(instance.n_events):
        if schedule.contains_event(event):
            continue
        for interval in range(instance.n_intervals):
            assignment = Assignment(event, interval)
            if not checker.is_valid(assignment):
                continue
            score = assignment_score(instance, schedule, assignment)
            assert score >= -1e-12
            grown = schedule.copy()
            grown.add(assignment)
            assert total_utility(instance, grown) >= before - 1e-9
            break  # one interval per event keeps runtime bounded
