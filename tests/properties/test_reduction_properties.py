"""Property tests of the Theorem-1 reduction over random MKPI instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.core.engine import make_engine
from repro.hardness.mkpi import MKPIInstance, solve_mkpi_exact
from repro.hardness.reduction import reduce_mkpi_to_ses


@st.composite
def mkpi_instances(draw) -> MKPIInstance:
    n_items = draw(st.integers(1, 5))
    n_bins = draw(st.integers(1, 3))
    capacity = draw(st.sampled_from([3.0, 5.0, 8.0]))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    weights = rng.uniform(1.0, capacity, size=n_items)
    profits = rng.uniform(0.5, 10.0, size=n_items)
    return MKPIInstance(
        weights=tuple(weights),
        profits=tuple(profits),
        n_bins=n_bins,
        capacity=capacity,
    )


@given(mkpi=mkpi_instances())
@settings(max_examples=40, deadline=None)
def test_profit_encoding_is_exact(mkpi):
    """Scheduling any single event alone yields sigma * normalized profit."""
    reduced = reduce_mkpi_to_ses(mkpi, sigma=0.9)
    engine = make_engine(reduced.ses)
    normalized = np.array(mkpi.profits) / reduced.profit_scale
    for item in range(mkpi.n_items):
        for interval in range(mkpi.n_bins):
            gain = engine.score(item, interval)
            assert abs(gain - 0.9 * normalized[item]) <= 1e-10


@given(mkpi=mkpi_instances())
@settings(max_examples=40, deadline=None)
def test_interests_stay_in_range(mkpi):
    reduced = reduce_mkpi_to_ses(mkpi)
    assert reduced.ses.interest.candidate.max() <= 1.0 + 1e-12
    assert 0.0 < reduced.competing_interest <= 1.0 + 1e-12


@given(mkpi=mkpi_instances())
@settings(max_examples=15, deadline=None)
def test_optima_correspond(mkpi):
    """max over k of the SES optimum recovers the MKPI optimum exactly."""
    reduced = reduce_mkpi_to_ses(mkpi)
    mkpi_optimum = solve_mkpi_exact(mkpi).total_profit
    best = 0.0
    for k in range(mkpi.n_items + 1):
        result = ExhaustiveScheduler().solve(reduced.ses, k)
        best = max(best, reduced.utility_to_profit(result.utility))
    assert abs(best - mkpi_optimum) <= 1e-6 * max(1.0, mkpi_optimum)
