"""Stateful property test: the incremental scheduler under random histories.

Drives :class:`~repro.algorithms.incremental.IncrementalScheduler` through
random operation sequences (arrivals, cancellations, rival announcements,
interest drift, budget raises — maintained and repair-only) and checks
after every step that

* the maintained schedule passes a :class:`FeasibilityChecker` replay
  (every change op preserves feasibility),
* its size never exceeds the budget,
* the reported utility equals the schedule's true Omega,
* instance/bookkeeping shapes stay consistent, and
* :meth:`rebuild` after an arbitrary op sequence is **bit-identical** to
  a fresh greedy solve on the mutated instance (same schedule mapping,
  same float utility).
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.algorithms.incremental import IncrementalScheduler
from repro.core.feasibility import FeasibilityChecker
from repro.core.objective import total_utility
from repro.core.schedule import Assignment

from tests.conftest import make_random_instance


class IncrementalMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        instance = make_random_instance(
            seed=77, n_users=8, n_events=5, n_intervals=3, n_locations=3,
            theta=8.0, xi_range=(0.5, 2.5),
        )
        self.scheduler = IncrementalScheduler(instance, k=3)
        self.rng = np.random.default_rng(0)

    def _interest_column(self, density: float) -> np.ndarray:
        n_users = self.scheduler.instance.n_users
        interest = self.rng.uniform(0, 1, n_users)
        interest *= self.rng.random(n_users) < density
        return interest

    # ------------------------------------------------------------------
    @rule(
        density=st.sampled_from([0.0, 0.3, 0.9]),
        maintain=st.booleans(),
    )
    def arrival(self, density, maintain):
        self.scheduler.add_candidate_event(
            location=int(self.rng.integers(5)),
            required_resources=float(self.rng.uniform(0.5, 2.5)),
            interest_column=self._interest_column(density),
            maintain=maintain,
        )

    @rule(maintain=st.booleans())
    def cancellation(self, maintain):
        if self.scheduler.instance.n_events <= 1:
            return
        victim = int(self.rng.integers(self.scheduler.instance.n_events))
        self.scheduler.cancel_event(victim, maintain=maintain)

    @rule(maintain=st.booleans())
    def rival_announcement(self, maintain):
        interval = int(self.rng.integers(self.scheduler.instance.n_intervals))
        self.scheduler.add_competing_event(
            interval=interval,
            interest_column=self.rng.uniform(
                0, 1, self.scheduler.instance.n_users
            ),
            maintain=maintain,
        )

    @rule(
        density=st.sampled_from([0.0, 0.5, 1.0]),
        maintain=st.booleans(),
    )
    def interest_drift(self, density, maintain):
        event = int(self.rng.integers(self.scheduler.instance.n_events))
        self.scheduler.update_event_interest(
            event, self._interest_column(density), maintain=maintain
        )

    @rule(extra=st.integers(1, 2))
    def budget_raise(self, extra):
        self.scheduler.raise_budget(self.scheduler.k + extra)

    @rule()
    def rebuild(self):
        self.scheduler.rebuild()

    @rule()
    def rebuild_matches_fresh_solve(self):
        """rebuild() == a from-scratch solve on the mutated instance,
        bit for bit (same greedy, same engine kind, same instance)."""
        self.scheduler.rebuild()
        fresh = IncrementalScheduler(
            self.scheduler.instance,
            k=self.scheduler.k,
            engine=self.scheduler.engine_spec,
        )
        assert (
            self.scheduler.schedule.as_mapping() == fresh.schedule.as_mapping()
        )
        assert self.scheduler.utility() == fresh.utility()

    # ------------------------------------------------------------------
    @invariant()
    def schedule_passes_a_feasibility_checker_replay(self):
        checker = FeasibilityChecker(self.scheduler.instance)
        for event, interval in sorted(
            self.scheduler.schedule.as_mapping().items()
        ):
            # apply() raises InfeasibleAssignmentError on any violation
            checker.apply(Assignment(event, interval))

    @invariant()
    def size_within_budget(self):
        assert len(self.scheduler.schedule) <= self.scheduler.k

    @invariant()
    def utility_is_consistent(self):
        reported = self.scheduler.utility()
        truth = total_utility(self.scheduler.instance, self.scheduler.schedule)
        assert abs(reported - truth) <= 1e-9 * max(1.0, abs(truth))

    @invariant()
    def shapes_are_consistent(self):
        instance = self.scheduler.instance
        assert instance.interest.n_events == instance.n_events
        assert instance.interest.n_competing == instance.n_competing
        for event in self.scheduler.schedule.scheduled_events():
            assert event < instance.n_events

    @invariant()
    def score_cache_matches_engine_state(self):
        """Clean cached rows must equal freshly computed Eq. 4 scores."""
        plane = self.scheduler.plane
        scores = plane.array
        if scores is None:
            return
        instance = self.scheduler.instance
        engine = self.scheduler._engine
        unscheduled = [
            e
            for e in range(instance.n_events)
            if not self.scheduler.schedule.contains_event(e)
        ]
        for interval in range(instance.n_intervals):
            if interval in plane.dirty_intervals:
                continue
            if unscheduled:
                fresh = engine.scores_for_interval(interval, unscheduled)
                np.testing.assert_allclose(
                    scores[interval, unscheduled], fresh, atol=1e-12
                )
            scheduled = [
                e for e in range(instance.n_events) if e not in unscheduled
            ]
            assert np.all(np.isneginf(scores[interval, scheduled]))


TestIncrementalMachine = IncrementalMachine.TestCase
TestIncrementalMachine.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
