"""Stateful property test: the incremental scheduler under random histories.

Drives :class:`~repro.algorithms.incremental.IncrementalScheduler` through
random operation sequences (arrivals, cancellations, rival announcements,
budget raises) and checks after every step that

* the maintained schedule is feasible,
* its size never exceeds the budget,
* the reported utility equals the schedule's true Omega, and
* instance/bookkeeping shapes stay consistent.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.algorithms.incremental import IncrementalScheduler
from repro.core.feasibility import is_schedule_feasible
from repro.core.objective import total_utility

from tests.conftest import make_random_instance


class IncrementalMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        instance = make_random_instance(
            seed=77, n_users=8, n_events=5, n_intervals=3, n_locations=3,
            theta=8.0, xi_range=(0.5, 2.5),
        )
        self.scheduler = IncrementalScheduler(instance, k=3)
        self.rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    @rule(density=st.sampled_from([0.0, 0.3, 0.9]))
    def arrival(self, density):
        interest = self.rng.uniform(0, 1, self.scheduler.instance.n_users)
        interest *= self.rng.random(self.scheduler.instance.n_users) < density
        self.scheduler.add_candidate_event(
            location=int(self.rng.integers(5)),
            required_resources=float(self.rng.uniform(0.5, 2.5)),
            interest_column=interest,
        )

    @rule()
    def cancellation(self):
        if self.scheduler.instance.n_events <= 1:
            return
        victim = int(self.rng.integers(self.scheduler.instance.n_events))
        self.scheduler.cancel_event(victim)

    @rule()
    def rival_announcement(self):
        interval = int(self.rng.integers(self.scheduler.instance.n_intervals))
        self.scheduler.add_competing_event(
            interval=interval,
            interest_column=self.rng.uniform(0, 1, self.scheduler.instance.n_users),
        )

    @rule(extra=st.integers(1, 2))
    def budget_raise(self, extra):
        self.scheduler.raise_budget(self.scheduler.k + extra)

    @rule()
    def rebuild(self):
        self.scheduler.rebuild()

    # ------------------------------------------------------------------
    @invariant()
    def schedule_is_feasible(self):
        assert is_schedule_feasible(
            self.scheduler.instance, self.scheduler.schedule
        )

    @invariant()
    def size_within_budget(self):
        assert len(self.scheduler.schedule) <= self.scheduler.k

    @invariant()
    def utility_is_consistent(self):
        reported = self.scheduler.utility()
        truth = total_utility(self.scheduler.instance, self.scheduler.schedule)
        assert abs(reported - truth) <= 1e-9 * max(1.0, abs(truth))

    @invariant()
    def shapes_are_consistent(self):
        instance = self.scheduler.instance
        assert instance.interest.n_events == instance.n_events
        assert instance.interest.n_competing == instance.n_competing
        for event in self.scheduler.schedule.scheduled_events():
            assert event < instance.n_events


TestIncrementalMachine = IncrementalMachine.TestCase
TestIncrementalMachine.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
