"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ActivityModel,
    CandidateEvent,
    CompetingEvent,
    InterestMatrix,
    Organizer,
    SESInstance,
    TimeInterval,
    User,
)


def make_random_instance(
    n_users: int = 12,
    n_events: int = 6,
    n_intervals: int = 4,
    n_competing: int = 5,
    n_locations: int = 3,
    theta: float = 10.0,
    xi_range: tuple[float, float] = (1.0, 4.0),
    interest_density: float = 0.5,
    seed: int = 0,
    interest_backend: str = "dense",
) -> SESInstance:
    """Random SES instance for tests; deterministic given ``seed``.

    ``interest_backend`` selects ``mu`` storage; the values are identical
    across backends, so the same seed yields numerically equal instances.
    """
    rng = np.random.default_rng(seed)
    users = [User(index=i) for i in range(n_users)]
    intervals = [TimeInterval(index=t) for t in range(n_intervals)]
    events = [
        CandidateEvent(
            index=e,
            location=int(rng.integers(n_locations)),
            required_resources=float(rng.uniform(*xi_range)),
        )
        for e in range(n_events)
    ]
    competing = [
        CompetingEvent(index=c, interval=int(rng.integers(n_intervals)))
        for c in range(n_competing)
    ]
    candidate = rng.uniform(0, 1, (n_users, n_events))
    candidate *= rng.random((n_users, n_events)) < interest_density
    rivals = rng.uniform(0, 1, (n_users, n_competing))
    rivals *= rng.random((n_users, n_competing)) < interest_density
    interest = InterestMatrix.from_arrays(candidate, rivals).to_backend(
        interest_backend
    )
    activity = ActivityModel.uniform_random(n_users, n_intervals, seed=rng)
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=Organizer(resources=theta),
    )


@pytest.fixture(autouse=True)
def _plenty_of_cpus(monkeypatch: pytest.MonkeyPatch) -> None:
    """Pretend 8 CPUs are available so worker-count tests are box-independent.

    ``ShardExecutor`` clamps ``workers`` to the machine's CPU count; on a
    single-core CI box that would silently collapse every thread/process
    test to the serial kind.  Clamp-specific tests patch their own small
    values on top of this.
    """
    monkeypatch.setattr("repro.shard.executor._available_cpus", lambda: 8)


@pytest.fixture
def random_instance() -> SESInstance:
    """A small but non-trivial random instance."""
    return make_random_instance(seed=42)


@pytest.fixture
def hand_instance() -> SESInstance:
    """Hand-built instance with values chosen for pencil-and-paper checks.

    2 users, 2 candidate events, 2 intervals, 1 competing event at t0.

    * ``mu``: u0 -> (e0: 0.5, e1: 0.25), u1 -> (e0: 0.0, e1: 1.0)
    * competing: u0 -> 0.5, u1 -> 0.0
    * ``sigma``: u0 -> (t0: 1.0, t1: 0.5), u1 -> (t0: 0.8, t1: 0.4)
    * distinct locations; ample resources.

    Worked example used across the attendance/scoring tests: scheduling
    e0 alone at t0 gives ``rho(u0) = 1.0 * 0.5 / (0.5 + 0.5) = 0.5`` and
    ``rho(u1) = 0.8 * 0 / 0 = 0`` (0/0 convention), so ``omega = 0.5``.
    """
    users = [User(index=0, name="alice"), User(index=1, name="bob")]
    intervals = [TimeInterval(index=0, label="mon"), TimeInterval(index=1, label="tue")]
    events = [
        CandidateEvent(index=0, location=0, required_resources=1.0, name="pop-concert"),
        CandidateEvent(index=1, location=1, required_resources=1.0, name="fashion-show"),
    ]
    competing = [CompetingEvent(index=0, interval=0, name="rival-gig")]
    interest = InterestMatrix.from_arrays(
        np.array([[0.5, 0.25], [0.0, 1.0]]),
        np.array([[0.5], [0.0]]),
    )
    activity = ActivityModel(np.array([[1.0, 0.5], [0.8, 0.4]]))
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=Organizer(resources=10.0),
    )


@pytest.fixture
def tight_instance() -> SESInstance:
    """Instance where feasibility truly binds: 1 location, theta for ~2 events."""
    n_users, n_events, n_intervals = 4, 4, 2
    users = [User(index=i) for i in range(n_users)]
    intervals = [TimeInterval(index=t) for t in range(n_intervals)]
    events = [
        CandidateEvent(index=e, location=0, required_resources=2.0)
        for e in range(n_events)
    ]
    rng = np.random.default_rng(5)
    interest = InterestMatrix.from_arrays(rng.uniform(0.2, 1.0, (n_users, n_events)))
    activity = ActivityModel.constant(n_users, n_intervals, 0.9)
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=[],
        interest=interest,
        activity=activity,
        organizer=Organizer(resources=2.0),
    )
