"""Tests of the MKPI substrate (instances, exact and greedy solvers)."""

import itertools

import pytest

from repro.hardness.mkpi import (
    MKPIInstance,
    MKPIPacking,
    solve_mkpi_exact,
    solve_mkpi_greedy,
)


def brute_force_mkpi(instance: MKPIInstance) -> float:
    """Oracle: try every item->bin-or-none mapping (tiny sizes only)."""
    best = 0.0
    options = list(range(instance.n_bins)) + [None]
    for mapping in itertools.product(options, repeat=instance.n_items):
        loads = [0.0] * instance.n_bins
        profit = 0.0
        feasible = True
        for item, bin_index in enumerate(mapping):
            if bin_index is None:
                continue
            loads[bin_index] += instance.weights[item]
            if loads[bin_index] > instance.capacity + 1e-9:
                feasible = False
                break
            profit += instance.profits[item]
        if feasible:
            best = max(best, profit)
    return best


class TestInstanceValidation:
    def test_basic_construction(self):
        instance = MKPIInstance(
            weights=(1.0, 2.0), profits=(3.0, 4.0), n_bins=2, capacity=5.0
        )
        assert instance.n_items == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            MKPIInstance(weights=(1.0,), profits=(1.0, 2.0), n_bins=1, capacity=1.0)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            MKPIInstance(weights=(0.0,), profits=(1.0,), n_bins=1, capacity=1.0)

    def test_non_positive_profit_rejected(self):
        with pytest.raises(ValueError, match="profits"):
            MKPIInstance(weights=(1.0,), profits=(-1.0,), n_bins=1, capacity=1.0)

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError, match="n_bins"):
            MKPIInstance(weights=(1.0,), profits=(1.0,), n_bins=0, capacity=1.0)

    def test_random_factory_reproducible(self):
        a = MKPIInstance.random(5, 2, capacity=6.0, seed=1)
        b = MKPIInstance.random(5, 2, capacity=6.0, seed=1)
        assert a == b


class TestPackingValidation:
    def test_overflow_rejected(self):
        instance = MKPIInstance(
            weights=(3.0, 3.0), profits=(1.0, 1.0), n_bins=1, capacity=5.0
        )
        with pytest.raises(ValueError, match="overflows"):
            MKPIPacking(instance=instance, bin_of=(0, 0))

    def test_unknown_bin_rejected(self):
        instance = MKPIInstance(
            weights=(1.0,), profits=(1.0,), n_bins=1, capacity=5.0
        )
        with pytest.raises(ValueError, match="unknown bin"):
            MKPIPacking(instance=instance, bin_of=(7,))

    def test_profit_and_packed_items(self):
        instance = MKPIInstance(
            weights=(1.0, 1.0, 1.0), profits=(2.0, 3.0, 5.0),
            n_bins=2, capacity=2.0,
        )
        packing = MKPIPacking(instance=instance, bin_of=(0, None, 1))
        assert packing.total_profit == pytest.approx(7.0)
        assert packing.packed_items == (0, 2)


class TestExactSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        instance = MKPIInstance.random(5, 2, capacity=5.0, seed=seed)
        exact = solve_mkpi_exact(instance)
        assert exact.total_profit == pytest.approx(
            brute_force_mkpi(instance), abs=1e-9
        )

    def test_all_items_fit_when_capacity_ample(self):
        instance = MKPIInstance(
            weights=(1.0, 1.0, 1.0), profits=(1.0, 2.0, 3.0),
            n_bins=3, capacity=10.0,
        )
        exact = solve_mkpi_exact(instance)
        assert exact.total_profit == pytest.approx(6.0)
        assert len(exact.packed_items) == 3

    def test_single_bin_degenerates_to_knapsack(self):
        # classic 0/1 knapsack: capacity 10, expect items {1, 2} (profit 9)
        instance = MKPIInstance(
            weights=(6.0, 5.0, 5.0), profits=(7.0, 4.0, 5.0),
            n_bins=1, capacity=10.0,
        )
        assert solve_mkpi_exact(instance).total_profit == pytest.approx(9.0)


class TestGreedySolver:
    def test_feasible_and_bounded_by_exact(self):
        for seed in range(5):
            instance = MKPIInstance.random(6, 2, capacity=5.0, seed=seed)
            greedy = solve_mkpi_greedy(instance)
            exact = solve_mkpi_exact(instance)
            assert greedy.total_profit <= exact.total_profit + 1e-9

    def test_greedy_packs_everything_with_ample_capacity(self):
        instance = MKPIInstance(
            weights=(1.0, 1.0), profits=(1.0, 1.0), n_bins=2, capacity=4.0
        )
        assert len(solve_mkpi_greedy(instance).packed_items) == 2
