"""Tests of the Theorem-1 reduction: MKPI optima transfer to SES optima."""

import numpy as np
import pytest

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.hardness.mkpi import MKPIInstance, solve_mkpi_exact
from repro.hardness.reduction import reduce_mkpi_to_ses


@pytest.fixture
def small_mkpi():
    return MKPIInstance.random(5, 2, capacity=6.0, seed=13)


class TestConstruction:
    def test_restricted_shape(self, small_mkpi):
        reduced = reduce_mkpi_to_ses(small_mkpi)
        ses = reduced.ses
        # users as many as events; one competing event per interval
        assert ses.n_users == ses.n_events == small_mkpi.n_items
        assert ses.n_competing == ses.n_intervals == small_mkpi.n_bins
        # no location constraint: all locations distinct
        assert ses.distinct_locations == ses.n_events
        # capacity mapping
        assert ses.theta == small_mkpi.capacity

    def test_perfect_matching_interest(self, small_mkpi):
        """Each user likes exactly one event and vice versa (diagonal mu)."""
        reduced = reduce_mkpi_to_ses(small_mkpi)
        candidate = reduced.ses.interest.candidate
        off_diagonal = candidate[~np.eye(candidate.shape[0], dtype=bool)]
        assert (off_diagonal == 0).all()
        assert (np.diag(candidate) > 0).all()

    def test_uniform_competing_interest(self, small_mkpi):
        reduced = reduce_mkpi_to_ses(small_mkpi)
        competing = reduced.ses.interest.competing
        assert np.allclose(competing, reduced.competing_interest)

    def test_interest_values_within_range(self, small_mkpi):
        reduced = reduce_mkpi_to_ses(small_mkpi)
        assert reduced.ses.interest.candidate.max() <= 1.0
        assert reduced.competing_interest <= 1.0

    def test_weights_become_required_resources(self, small_mkpi):
        reduced = reduce_mkpi_to_ses(small_mkpi)
        for item in range(small_mkpi.n_items):
            assert reduced.ses.events[item].required_resources == pytest.approx(
                small_mkpi.weights[item]
            )

    def test_parameter_validation(self, small_mkpi):
        with pytest.raises(ValueError, match="sigma"):
            reduce_mkpi_to_ses(small_mkpi, sigma=0.0)
        with pytest.raises(ValueError, match="headroom"):
            reduce_mkpi_to_ses(small_mkpi, headroom=1.0)


class TestProfitTransfer:
    def test_scheduled_event_contributes_sigma_times_profit(self, small_mkpi):
        """The core identity: rho = sigma * p under the construction."""
        from repro.core.engine import make_engine

        reduced = reduce_mkpi_to_ses(small_mkpi, sigma=0.8)
        engine = make_engine(reduced.ses)
        normalized = np.array(small_mkpi.profits) / reduced.profit_scale
        for item in range(small_mkpi.n_items):
            gain = engine.score(item, 0)
            assert gain == pytest.approx(0.8 * normalized[item], abs=1e-12)

    def test_no_cross_event_interaction(self, small_mkpi):
        """Co-scheduling matched events does not cannibalize (disjoint fans)."""
        from repro.core.engine import make_engine

        reduced = reduce_mkpi_to_ses(small_mkpi)
        engine = make_engine(reduced.ses)
        solo_gain = engine.score(1, 0)
        engine.assign(0, 0)
        paired_gain = engine.score(1, 0)
        assert paired_gain == pytest.approx(solo_gain, abs=1e-12)

    def test_utility_profit_round_trip(self, small_mkpi):
        reduced = reduce_mkpi_to_ses(small_mkpi)
        profit = 17.5
        assert reduced.utility_to_profit(
            reduced.profit_to_utility(profit)
        ) == pytest.approx(profit)


class TestOptimaCorrespondence:
    @pytest.mark.parametrize("seed", range(3))
    def test_ses_optimum_recovers_mkpi_optimum(self, seed):
        """max_k Omega*(k) translated back equals the MKPI optimum."""
        mkpi = MKPIInstance.random(5, 2, capacity=6.0, seed=seed)
        reduced = reduce_mkpi_to_ses(mkpi)
        mkpi_opt = solve_mkpi_exact(mkpi).total_profit

        best_profit = 0.0
        for k in range(mkpi.n_items + 1):
            result = ExhaustiveScheduler().solve(reduced.ses, k)
            best_profit = max(best_profit, reduced.utility_to_profit(result.utility))
        assert best_profit == pytest.approx(mkpi_opt, abs=1e-6)

    def test_greedy_on_reduced_instance_is_feasible_knapsack(self):
        """GRD on the reduction yields a valid MKPI packing (not nec. optimal)."""
        from repro.algorithms.greedy import GreedyScheduler

        mkpi = MKPIInstance.random(6, 2, capacity=6.0, seed=99)
        reduced = reduce_mkpi_to_ses(mkpi)
        result = GreedyScheduler().solve(reduced.ses, mkpi.n_items)
        # translate the schedule into a packing and let MKPIPacking validate
        from repro.hardness.mkpi import MKPIPacking

        bin_of: list[int | None] = [None] * mkpi.n_items
        for event, interval in result.schedule.as_mapping().items():
            bin_of[event] = interval
        packing = MKPIPacking(instance=mkpi, bin_of=tuple(bin_of))
        assert packing.total_profit <= solve_mkpi_exact(mkpi).total_profit + 1e-9
