"""Tests of the scipy/HiGHS MILP solver for MKPI."""

import pytest

from repro.hardness.milp import solve_mkpi_milp
from repro.hardness.mkpi import MKPIInstance, solve_mkpi_exact, solve_mkpi_greedy


class TestMILPSolver:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_branch_and_bound(self, seed):
        """Two independent exact solvers must agree on the optimum."""
        instance = MKPIInstance.random(7, 3, capacity=6.0, seed=seed)
        milp_packing = solve_mkpi_milp(instance)
        bnb_packing = solve_mkpi_exact(instance)
        assert milp_packing.total_profit == pytest.approx(
            bnb_packing.total_profit, abs=1e-6
        )

    def test_produces_valid_packing(self):
        instance = MKPIInstance.random(8, 2, capacity=5.0, seed=42)
        # MKPIPacking's constructor validates capacity; reaching here = valid
        packing = solve_mkpi_milp(instance)
        assert packing.instance is instance

    def test_dominates_greedy(self):
        for seed in range(4):
            instance = MKPIInstance.random(8, 2, capacity=5.0, seed=seed)
            assert (
                solve_mkpi_milp(instance).total_profit
                >= solve_mkpi_greedy(instance).total_profit - 1e-9
            )

    def test_single_item_fits(self):
        instance = MKPIInstance(
            weights=(2.0,), profits=(5.0,), n_bins=1, capacity=3.0
        )
        packing = solve_mkpi_milp(instance)
        assert packing.total_profit == pytest.approx(5.0)
        assert packing.bin_of == (0,)

    def test_item_too_heavy_stays_out(self):
        instance = MKPIInstance(
            weights=(9.0, 1.0), profits=(100.0, 1.0), n_bins=1, capacity=3.0
        )
        packing = solve_mkpi_milp(instance)
        assert packing.bin_of[0] is None
        assert packing.total_profit == pytest.approx(1.0)

    def test_knapsack_classic(self):
        # same classic instance as the branch-and-bound test: optimum 9
        instance = MKPIInstance(
            weights=(6.0, 5.0, 5.0), profits=(7.0, 4.0, 5.0),
            n_bins=1, capacity=10.0,
        )
        assert solve_mkpi_milp(instance).total_profit == pytest.approx(9.0)

    def test_larger_than_bnb_budget_still_solves(self):
        """MILP scales past the DFS node budget comfortably."""
        instance = MKPIInstance.random(18, 3, capacity=8.0, seed=7)
        packing = solve_mkpi_milp(instance)
        greedy = solve_mkpi_greedy(instance)
        assert packing.total_profit >= greedy.total_profit - 1e-9
