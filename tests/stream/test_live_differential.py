"""Differential fuzz suite: LiveInstance vs. the frozen-rebuild semantics.

The pre-LiveInstance scheduler rebuilt an immutable ``SESInstance`` from
scratch on every structural op.  That path is gone from the library, so
this suite re-implements it as a *shadow*: a fresh ``SESInstance`` is
maintained per op with the same backend-preserving
``InterestMatrix.with_event_column`` / ``without_event_column`` /
``with_replaced_event_column`` / ``with_competing_column`` edits the old
code used.  Seeded random op sequences (both interest backends) then
assert, after **every** op:

* ``LiveInstance.freeze()`` equals the shadow instance field for field
  (entities, interest matrices, activity, organizer, derived ``K_t``);
* the delta-updated engine state matches a *fresh* engine built from the
  frozen instance to 1e-9 on every query the scheduler asks: full score
  tables, total utility, per-event omega, removal losses and
  displacement what-ifs;
* the maintained schedule replays cleanly through a feasibility checker
  on the frozen instance.

Sequences are drawn from :class:`TraceGenerator` (arrivals,
cancellations, rivals, drift, budget raises) and applied both maintained
and repair-only.
"""

import numpy as np
import pytest

from repro.algorithms.incremental import IncrementalScheduler
from repro.core.engine import EngineSpec
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Assignment
from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    DriftInterest,
    entries_from_column,
)
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

ATOL = 1e-9


def _column(entries, n_users: int) -> np.ndarray:
    column = np.zeros(n_users)
    for user, value in entries:
        column[user] = value
    return column


def shadow_apply(instance: SESInstance, op) -> SESInstance:
    """One structural op applied the way the old scheduler rebuilt."""
    from dataclasses import replace as dc_replace

    events = instance.events
    competing = instance.competing
    interest = instance.interest
    if isinstance(op, ArriveCandidate):
        from repro.core.entities import CandidateEvent

        event = CandidateEvent(
            index=instance.n_events,
            location=op.location,
            required_resources=op.required_resources,
            name=op.name or f"arrival-{instance.n_events}",
        )
        events = (*events, event)
        interest = interest.with_event_column(
            _column(op.interest, instance.n_users)
        )
    elif isinstance(op, CancelEvent):
        events = tuple(
            dc_replace(event, index=position)
            for position, event in enumerate(
                e for e in events if e.index != op.event
            )
        )
        interest = interest.without_event_column(op.event)
    elif isinstance(op, AnnounceRival):
        from repro.core.entities import CompetingEvent

        rival = CompetingEvent(
            index=instance.n_competing,
            interval=op.interval,
            name=op.name or f"rival-arrival-{instance.n_competing}",
        )
        competing = (*competing, rival)
        interest = interest.with_competing_column(
            _column(op.interest, instance.n_users)
        )
    elif isinstance(op, DriftInterest):
        interest = interest.with_replaced_event_column(
            op.event, _column(op.interest, instance.n_users)
        )
    else:  # RaiseBudget: no structural change
        return instance
    return SESInstance(
        users=instance.users,
        intervals=instance.intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=instance.activity,
        organizer=instance.organizer,
    )


def assert_instances_equal(frozen: SESInstance, shadow: SESInstance) -> None:
    """Field-for-field equality of two instances (exact, not approximate)."""
    assert frozen.users == shadow.users
    assert frozen.intervals == shadow.intervals
    assert frozen.events == shadow.events
    assert frozen.competing == shadow.competing
    assert frozen.organizer == shadow.organizer
    assert frozen.theta == shadow.theta
    assert np.array_equal(frozen.activity.matrix, shadow.activity.matrix)
    left, right = frozen.interest, shadow.interest
    assert left.backend == right.backend
    assert np.array_equal(left.candidate, right.candidate)
    assert np.array_equal(left.competing, right.competing)
    assert np.array_equal(frozen.competing_mass, shadow.competing_mass)


def assert_engine_matches_fresh(scheduler: IncrementalScheduler) -> None:
    """Delta-updated engine state == fresh engine from the frozen state."""
    frozen = scheduler.instance
    fresh = scheduler.engine_spec.build(frozen)
    mapping = scheduler.schedule.as_mapping()
    for event, interval in sorted(mapping.items()):
        fresh.assign(event, interval)

    live_engine = scheduler._engine
    assert live_engine.total_utility() == pytest.approx(
        fresh.total_utility(), abs=ATOL
    )
    unscheduled = [
        event for event in range(frozen.n_events) if event not in mapping
    ]
    for interval in range(frozen.n_intervals):
        np.testing.assert_allclose(
            live_engine.scores_for_interval(interval, unscheduled),
            fresh.scores_for_interval(interval, unscheduled),
            atol=ATOL,
        )
    scheduled = sorted(mapping)
    for event in scheduled:
        assert live_engine.omega(event) == pytest.approx(
            fresh.omega(event), abs=ATOL
        )
    if scheduled:
        np.testing.assert_allclose(
            live_engine.removal_losses(scheduled),
            fresh.removal_losses(scheduled),
            atol=ATOL,
        )
        # what-if queries: the pure exclusion math must agree with a
        # fresh engine actually mutated into the excluded state
        probe = unscheduled[0] if unscheduled else None
        if probe is not None:
            for event in scheduled[:3]:
                interval = mapping[event]
                fresh.unassign(event)
                truth = fresh.score(probe, interval)
                fresh.assign(event, interval)
                assert live_engine.score_excluding(
                    probe, interval, event
                ) == pytest.approx(truth, abs=ATOL)


def assert_schedule_feasible(scheduler: IncrementalScheduler) -> None:
    checker = FeasibilityChecker(scheduler.instance)
    for event, interval in sorted(scheduler.schedule.as_mapping().items()):
        checker.apply(Assignment(event, interval))


def run_case(
    backend: str, seed: int, maintain: bool, engine_kind: str | None = None
) -> int:
    config = ExperimentConfig(
        k=4,
        n_users=30,
        n_events=7,
        n_intervals=4,
        interest_backend=backend,
    )
    trace = TraceGenerator(
        config,
        TraceConfig(n_ops=25, interest_density=0.3),
        root_seed=seed,
    ).generate()
    instance = WorkloadGenerator(root_seed=seed).build(config)
    if engine_kind is None:
        engine_kind = "sparse" if backend == "sparse" else "vectorized"
    spec = EngineSpec(kind=engine_kind)

    scheduler = IncrementalScheduler(instance, config.k, engine=spec)
    shadow = instance
    for op in trace:
        op.apply(scheduler, maintain=maintain)
        shadow = shadow_apply(shadow, op)
        assert_instances_equal(scheduler.instance, shadow)
        assert_engine_matches_fresh(scheduler)
        assert_schedule_feasible(scheduler)
    assert scheduler.live.mutations > 0
    return len(trace)


@pytest.mark.parametrize("seed", [21, 22, 23])
@pytest.mark.parametrize("maintain", [True, False], ids=["maintained", "repair-only"])
class TestDifferentialFuzz:
    def test_dense_backend(self, seed, maintain):
        assert run_case("dense", seed, maintain) > 0

    def test_sparse_backend(self, seed, maintain):
        pytest.importorskip("scipy")
        assert run_case("sparse", seed, maintain) > 0

    def test_vectorized_engine_over_sparse_backend(self, seed, maintain):
        """The dense engine over sparse-backed live interest: deltas patch
        an engine-owned dense column buffer instead of re-materializing
        the full mu matrix per op."""
        pytest.importorskip("scipy")
        assert run_case("sparse", seed, maintain, engine_kind="vectorized") > 0


class TestFreezeCaching:
    """freeze() is cached between mutations and counted when re-taken."""

    def test_freeze_is_cached_until_mutation(self):
        config = ExperimentConfig(k=3, n_users=20, n_events=5, n_intervals=3)
        instance = WorkloadGenerator(root_seed=3).build(config)
        scheduler = IncrementalScheduler(instance, 3)
        # before any mutation the source instance doubles as the snapshot
        assert scheduler.instance is instance
        assert scheduler.live.freezes == 0
        scheduler.add_candidate_event(
            location=9, required_resources=0.5,
            interest_column=np.zeros(instance.n_users),
        )
        first = scheduler.instance
        assert first is not instance
        assert scheduler.live.freezes == 1
        assert scheduler.instance is first  # cached: no second freeze
        assert scheduler.live.freezes == 1
