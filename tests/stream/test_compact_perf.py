"""Regression tests for the order-statistics Trace.compact() rewrite.

``compact()`` used to renumber cancels by scanning a Python list
(``alive_compact.index(entity)`` + ``pop``) — O(n) per cancel, quadratic
over churn-heavy traces.  The Fenwick-backed :class:`_LiveIndexMap` must
(a) emit byte-identical rewrites to the old list walk, and (b) scale
sub-quadratically; a reference copy of the removed implementation pins
the former on a 10k-op stream, and a doubling experiment pins the
latter.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.stream.trace import (
    ArriveCandidate,
    CancelEvent,
    ChangeOp,
    DriftInterest,
    RaiseBudget,
    Trace,
    _LiveIndexMap,
)


def reference_compact_ops(trace: Trace) -> tuple[ChangeOp, ...]:
    """The pre-rewrite list-based compaction walk, verbatim semantics."""
    alive: list[int] = list(range(trace.n_events))
    next_id = trace.n_events
    cancelled_arrivals: set[int] = set()
    pool = list(alive)
    probe = next_id
    arrival_ids: set[int] = set()
    for op in trace.ops:
        if isinstance(op, ArriveCandidate):
            pool.append(probe)
            arrival_ids.add(probe)
            probe += 1
        elif isinstance(op, CancelEvent):
            victim = pool.pop(op.event)
            if victim in arrival_ids:
                cancelled_arrivals.add(victim)
    alive_compact: list[int] = list(range(trace.n_events))
    kept: list[ChangeOp] = []
    for op in trace.ops:
        if isinstance(op, ArriveCandidate):
            entity, next_id = next_id, next_id + 1
            alive.append(entity)
            if entity in cancelled_arrivals:
                continue
            alive_compact.append(entity)
            kept.append(op)
        elif isinstance(op, CancelEvent):
            entity = alive.pop(op.event)
            if entity in cancelled_arrivals:
                continue
            index = alive_compact.index(entity)
            alive_compact.pop(index)
            kept.append(replace(op, event=index))
        elif isinstance(op, DriftInterest):
            entity = alive[op.event]
            if entity in cancelled_arrivals:
                continue
            index = alive_compact.index(entity)
            remapped = replace(op, event=index)
            if (
                kept
                and isinstance(kept[-1], DriftInterest)
                and kept[-1].event == index
            ):
                kept[-1] = remapped
            else:
                kept.append(remapped)
        elif isinstance(op, RaiseBudget):
            if kept and isinstance(kept[-1], RaiseBudget):
                kept[-1] = op
            else:
                kept.append(op)
        else:
            kept.append(op)
    return tuple(kept)


def churn_trace(n_ops: int, seed: int = 17, n_events: int = 64) -> Trace:
    """A long arrival/cancel/drift-heavy stream (the quadratic worst case)."""
    rng = np.random.default_rng(seed)
    ops: list[ChangeOp] = []
    n_live = n_events
    for step in range(n_ops):
        clock = float(step)
        roll = rng.random()
        if roll < 0.40 or n_live <= 2:
            user = int(rng.integers(200))
            ops.append(
                ArriveCandidate(
                    time=clock,
                    location=int(rng.integers(3)),
                    required_resources=1.0,
                    interest=((user, 0.5),),
                )
            )
            n_live += 1
        elif roll < 0.75:
            ops.append(CancelEvent(time=clock, event=int(rng.integers(n_live))))
            n_live -= 1
        else:
            user = int(rng.integers(200))
            ops.append(
                DriftInterest(
                    time=clock,
                    event=int(rng.integers(n_live)),
                    interest=((user, float(rng.uniform(0.1, 1.0))),),
                )
            )
    return Trace(
        ops=tuple(ops),
        n_users=200,
        initial_k=4,
        n_events=n_events,
        n_intervals=5,
    )


class TestLiveIndexMap:
    def test_rank_select_roundtrip_under_churn(self):
        rng = np.random.default_rng(3)
        live = list(range(10))
        fenwick = _LiveIndexMap(10, 40)
        next_slot = 10
        for _ in range(200):
            if rng.random() < 0.5 and next_slot < 40:
                live.append(next_slot)
                fenwick.add(next_slot)
                next_slot += 1
            elif live:
                position = int(rng.integers(len(live)))
                assert fenwick.select(position) == live[position]
                assert fenwick.rank(live[position]) == position
                fenwick.remove(live.pop(position))
        for position, slot in enumerate(live):
            assert fenwick.rank(slot) == position
            assert fenwick.select(position) == slot


class TestCompactRegression:
    def test_identical_output_to_old_path_10k_ops(self):
        trace = churn_trace(10_000)
        assert trace.compact().ops == reference_compact_ops(trace)

    def test_identical_output_across_seeds(self):
        for seed in range(5):
            trace = churn_trace(800, seed=seed)
            assert trace.compact().ops == reference_compact_ops(trace)

    def test_subquadratic_runtime(self):
        """4x the ops must cost far less than the 16x a quadratic walk pays.

        Times only the compaction walk (validation of the result trace is
        linear either way) with generous slack for CI jitter.
        """
        small, large = churn_trace(2_500), churn_trace(10_000)

        def walk_seconds(trace: Trace, repeats: int = 3) -> float:
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                trace.compact()
                best = min(best, time.perf_counter() - started)
            return best

        ratio = walk_seconds(large) / max(walk_seconds(small), 1e-9)
        assert ratio < 10.0, (
            f"compact() scaled {ratio:.1f}x over a 4x op increase — "
            f"quadratic behavior has regressed (expected ~4x, quadratic ~16x)"
        )


class TestReplayabilityAfterRewrite:
    def test_compacted_churn_trace_revalidates(self):
        compact = churn_trace(2_000).compact()
        # Trace.__post_init__ re-validated the rewrite; spot-check shape
        assert compact.n_events == 64
        assert len(compact) <= 2_000
        assert pytest.approx(compact.ops[-1].time, abs=2000.0) == 0.0
