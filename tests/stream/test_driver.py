"""Tests of the stream replay driver: determinism, parity, observability."""

import json

import pytest

from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec
from repro.core.objective import total_utility
from repro.stream import POLICY_NAMES, StreamDriver, Trace, make_policy
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

_CONFIG_KWARGS = dict(k=4, n_users=40, n_events=8, n_intervals=5)


def config_for(backend: str) -> ExperimentConfig:
    return ExperimentConfig(interest_backend=backend, **_CONFIG_KWARGS)


def build_case(backend: str = "dense", n_ops: int = 14, seed: int = 9):
    config = config_for(backend)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=n_ops), root_seed=seed
    ).generate()
    instance = WorkloadGenerator(root_seed=seed).build(config)
    return instance, trace


def engine_for(backend: str) -> EngineSpec:
    return EngineSpec(kind="sparse" if backend == "sparse" else "vectorized")


class TestValidation:
    def test_user_count_mismatch_rejected(self):
        instance, _ = build_case()
        trace = Trace(ops=(), n_users=instance.n_users + 1, initial_k=2)
        with pytest.raises(ValueError, match="users"):
            StreamDriver(instance).run(trace)

    def test_unknown_policy_rejected(self):
        instance, _ = build_case()
        with pytest.raises(ValueError, match="unknown maintenance policy"):
            StreamDriver(instance, policy="nope")

    def test_policy_params_need_a_name(self):
        instance, _ = build_case()
        with pytest.raises(TypeError, match="policy name"):
            StreamDriver(
                instance, policy=make_policy("incremental"), rebuild_every=2
            )

    def test_bad_oracle_cadence_rejected(self):
        instance, _ = build_case()
        with pytest.raises(ValueError, match="oracle_every"):
            StreamDriver(instance, oracle_every=0)

    def test_k_defaults_to_trace_initial_k(self):
        instance, trace = build_case()
        result = StreamDriver(instance, policy="incremental").run(trace)
        # budget ops may have grown k beyond the trace's initial value
        assert result.final_k >= trace.initial_k

    def test_event_count_mismatch_rejected(self):
        instance, _ = build_case()
        trace = Trace(
            ops=(), n_users=instance.n_users, initial_k=2,
            n_events=instance.n_events + 3,
        )
        with pytest.raises(ValueError, match="candidate events"):
            StreamDriver(instance).run(trace)

    def test_interval_count_mismatch_rejected(self):
        instance, _ = build_case()
        trace = Trace(
            ops=(), n_users=instance.n_users, initial_k=2,
            n_intervals=instance.n_intervals + 1,
        )
        with pytest.raises(ValueError, match="intervals"):
            StreamDriver(instance).run(trace)

    def test_generated_traces_record_their_shape(self):
        instance, trace = build_case()
        assert trace.n_events == instance.n_events
        assert trace.n_intervals == instance.n_intervals

    def test_name_constructed_driver_replays_repeatedly(self):
        instance, trace = build_case()
        driver = StreamDriver(instance, policy="incremental")
        first = driver.run(trace)
        second = driver.run(trace)  # fresh policy per run
        assert first.utilities == second.utilities
        assert first.final_schedule == second.final_schedule

    def test_object_constructed_driver_is_single_use(self):
        instance, trace = build_case()
        driver = StreamDriver(instance, policy=make_policy("incremental"))
        driver.run(trace)
        with pytest.raises(RuntimeError, match="single-use"):
            driver.run(trace)


class TestReplayDeterminism:
    """Same trace + policy => identical op log, trajectory, final schedule."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_replay_is_deterministic(self, policy, backend):
        instance, trace = build_case(backend)
        spec = engine_for(backend)
        results = [
            StreamDriver(instance, policy=policy, engine=spec).run(trace)
            for _ in range(2)
        ]
        first, second = results
        assert first.op_log == second.op_log
        assert first.utilities == second.utilities
        assert first.final_schedule == second.final_schedule
        assert first.final_utility == second.final_utility

    def test_op_log_matches_trace_labels(self):
        instance, trace = build_case()
        result = StreamDriver(instance).run(trace)
        assert result.op_log == tuple(op.label() for op in trace)


class TestPeriodicParity:
    """The acceptance property: periodic-rebuild's final state IS a
    one-shot registry solve on the final instance state."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("rebuild_every", [1, 3])
    def test_final_state_matches_one_shot_solve(self, backend, rebuild_every):
        instance, trace = build_case(backend)
        spec = engine_for(backend)
        driver = StreamDriver(
            instance,
            policy="periodic-rebuild",
            engine=spec,
            rebuild_every=rebuild_every,
        )
        result = driver.run(trace)

        live = driver.policy.scheduler
        oracle = solver_registry.create("grd", engine=spec).solve(
            live.instance, live.k
        )
        assert result.final_schedule == oracle.schedule.as_mapping()
        assert result.final_utility == pytest.approx(oracle.utility, abs=1e-9)


class TestObservations:
    def test_every_op_is_recorded(self):
        instance, trace = build_case()
        result = StreamDriver(instance).run(trace)
        assert len(result.records) == len(trace)
        assert all(record.latency_seconds >= 0 for record in result.records)

    def test_utility_trajectory_matches_live_state(self):
        """The recorded trajectory ends exactly at the live schedule's
        true Eq. 3 utility."""
        instance, trace = build_case()
        driver = StreamDriver(instance, policy="incremental")
        result = driver.run(trace)
        live = driver.policy.scheduler
        truth = total_utility(live.instance, live.schedule)
        assert result.utilities[-1] == pytest.approx(truth, abs=1e-9)
        assert result.final_utility == pytest.approx(truth, abs=1e-9)

    def test_oracle_regret_sampling(self):
        instance, trace = build_case()
        result = StreamDriver(
            instance, policy="periodic-rebuild", oracle_every=2
        ).run(trace)
        assert len(result.regrets) == len(trace) // 2
        # the state was just re-solved by the same solver: regret ~ 0
        for regret in result.regrets:
            assert regret == pytest.approx(0.0, abs=1e-9)

    def test_latency_statistics(self):
        instance, trace = build_case()
        result = StreamDriver(instance).run(trace)
        assert result.max_latency() >= result.percentile_latency(0.95)
        assert result.percentile_latency(0.95) >= result.percentile_latency(0.0)
        assert result.mean_latency() > 0
        with pytest.raises(ValueError, match="quantile"):
            result.percentile_latency(1.5)

    def test_as_dict_is_json_ready(self):
        instance, trace = build_case()
        result = StreamDriver(instance).run(trace)
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["policy"] == "incremental"
        assert payload["ops"] == len(trace)
        assert len(payload["utilities"]) == len(trace)

    def test_summary_mentions_policy_and_latency(self):
        instance, trace = build_case()
        summary = StreamDriver(instance).run(trace).summary()
        assert "incremental" in summary and "mean-op" in summary


class TestPolicyQuality:
    def test_hybrid_never_worse_than_pure_incremental_at_end(self):
        """A rebuild reclaims global structure: on this seeded stream the
        hybrid end-state must be at least as good as never rebuilding."""
        instance, trace = build_case(n_ops=20)
        incremental = StreamDriver(instance, policy="incremental").run(trace)
        hybrid = StreamDriver(
            instance, policy="hybrid", drift_threshold=1.0
        ).run(trace)
        assert hybrid.final_utility >= incremental.final_utility - 1e-9


class TestStructuralFastPath:
    """The O(delta) live path must never fall back to instance rebuilds."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_incremental_replay_never_freezes(self, backend):
        if backend == "sparse":
            pytest.importorskip("scipy")
        instance, trace = build_case(backend)
        result = StreamDriver(
            instance, policy="incremental", engine=engine_for(backend)
        ).run(trace)
        assert result.freezes == 0

    def test_periodic_rebuild_never_freezes(self):
        """Warm re-solves run straight over the live view through the
        base plane — no O(instance) snapshot is ever materialized."""
        instance, trace = build_case()
        result = StreamDriver(
            instance, policy="periodic-rebuild", rebuild_every=3
        ).run(trace)
        assert result.rebuilds > 0
        assert result.freezes == 0
        assert result.base_plane_stats is not None
        # one initial cold fill, plus at most the odd refill when the
        # vectorized engine's chunk geometry moves (event count crossing
        # a power of two) — never one per rebuild
        assert 1 <= result.base_plane_stats["fills"] < result.rebuilds

    def test_warm_rebuilds_score_strictly_less_than_cold_fills(self):
        """Each warm re-solve after the first must re-score fewer cells
        than the cold fill it replaced (the ScorePlane acceptance bar)."""
        instance, trace = build_case()
        result = StreamDriver(
            instance, policy="periodic-rebuild", rebuild_every=1
        ).run(trace)
        stats = result.base_plane_stats
        warm_solves = result.rebuilds - stats["fills"]
        assert warm_solves > 0
        cold_cells_per_solve = stats["cells_filled"] // stats["fills"]
        assert stats["cells_refreshed"] < warm_solves * cold_cells_per_solve

    def test_oracle_sampling_runs_warm_without_freezes(self):
        instance, trace = build_case()
        result = StreamDriver(
            instance, policy="incremental", oracle_every=4
        ).run(trace)
        assert len(result.regrets) == len(trace) // 4
        assert result.freezes == 0
        assert result.base_plane_stats is not None

    def test_freezes_serialized_in_as_dict(self):
        instance, trace = build_case()
        payload = StreamDriver(instance).run(trace).as_dict()
        assert payload["freezes"] == 0
