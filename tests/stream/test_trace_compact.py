"""Tests of Trace.compact(): rewrite semantics and replay equivalence."""

import pytest

from repro.core.errors import TraceError
from repro.core.engine import EngineSpec
from repro.stream import POLICY_NAMES, StreamDriver, Trace
from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    DriftInterest,
    RaiseBudget,
)
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator


def manual_trace(ops, n_events=4, n_users=10, k=2):
    return Trace(
        ops=tuple(ops),
        n_users=n_users,
        initial_k=k,
        n_events=n_events,
        n_intervals=3,
    )


class TestRewrites:
    def test_cancelled_arrival_pair_is_dropped(self):
        trace = manual_trace(
            [
                ArriveCandidate(time=0.0, location=9, interest=((0, 0.5),)),
                DriftInterest(time=1.0, event=4, interest=((1, 0.4),)),
                CancelEvent(time=2.0, event=4),
            ]
        )
        compact = trace.compact()
        assert len(compact) == 0

    def test_cancel_of_preexisting_event_is_kept(self):
        trace = manual_trace([CancelEvent(time=0.0, event=1)])
        compact = trace.compact()
        assert [op.kind for op in compact] == ["cancel"]

    def test_indices_renumber_around_dropped_arrivals(self):
        """An op referencing a later live index shifts left once the
        dropped arrival below it vanishes from the live pool."""
        trace = manual_trace(
            [
                # arrival -> live index 4 (later cancelled)
                ArriveCandidate(time=0.0, location=9, interest=((0, 0.5),)),
                # arrival -> live index 5 (survives)
                ArriveCandidate(time=1.0, location=8, interest=((1, 0.6),)),
                DriftInterest(time=2.0, event=5, interest=((2, 0.3),)),
                CancelEvent(time=3.0, event=4),
            ]
        )
        compact = trace.compact()
        assert [op.kind for op in compact] == ["arrive", "drift"]
        # the surviving arrival is the compacted pool's index 4
        assert compact.ops[1].event == 4

    def test_consecutive_drifts_coalesce_to_last(self):
        trace = manual_trace(
            [
                DriftInterest(time=0.0, event=0, interest=((0, 0.2),)),
                DriftInterest(time=1.0, event=0, interest=((1, 0.9),)),
                DriftInterest(time=2.0, event=1, interest=((2, 0.5),)),
            ]
        )
        compact = trace.compact()
        assert len(compact) == 2
        assert compact.ops[0].interest == ((1, 0.9),)
        assert compact.ops[1].event == 1

    def test_interleaved_drifts_are_not_coalesced(self):
        """Only *adjacent* drifts merge: an intervening op on another
        entity pins the earlier drift (it shaped maintenance decisions)."""
        trace = manual_trace(
            [
                DriftInterest(time=0.0, event=0, interest=((0, 0.2),)),
                AnnounceRival(time=1.0, interval=1, interest=((3, 0.7),)),
                DriftInterest(time=2.0, event=0, interest=((1, 0.9),)),
            ]
        )
        assert len(trace.compact()) == 3

    def test_consecutive_budget_raises_keep_final(self):
        trace = manual_trace(
            [
                RaiseBudget(time=0.0, new_k=3),
                RaiseBudget(time=1.0, new_k=5),
            ]
        )
        compact = trace.compact()
        assert [op.new_k for op in compact] == [5]

    def test_compact_requires_known_n_events(self):
        trace = Trace(ops=(), n_users=10, initial_k=2)
        with pytest.raises(TraceError, match="n_events"):
            trace.compact()

    def test_compacted_trace_revalidates(self):
        """The rewrite produces a replayable trace (indices in range,
        budgets monotone) — guaranteed by Trace.__post_init__."""
        trace = manual_trace(
            [
                ArriveCandidate(time=0.0, location=9, interest=((0, 0.5),)),
                CancelEvent(time=1.0, event=2),
                CancelEvent(time=2.0, event=3),  # the arrival, renumbered
            ]
        )
        compact = trace.compact()  # would raise on a broken rewrite
        assert [op.kind for op in compact] == ["cancel"]


class TestReplayEquivalence:
    """Replaying original vs compacted traces lands on identical end
    states.

    For ``periodic-rebuild`` this is structural: compaction preserves
    the final instance state exactly, and the policy's end state IS a
    batch solve on it.  For the history-dependent policies
    (``incremental``, ``hybrid``) the equivalence is pinned on seeded
    streams — replay is deterministic, so these lock the compactor's
    semantics the way the golden traces lock the scheduler's.
    """

    SEEDS = (2, 3, 5, 6)

    @staticmethod
    def build(backend, seed):
        config = ExperimentConfig(
            k=4, n_users=40, n_events=8, n_intervals=5,
            interest_backend=backend,
        )
        trace = TraceGenerator(
            config, TraceConfig(n_ops=18), root_seed=seed
        ).generate()
        instance = WorkloadGenerator(root_seed=seed).build(config)
        spec = EngineSpec(
            kind="sparse" if backend == "sparse" else "vectorized"
        )
        return instance, trace, spec

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_final_states_match(self, backend, policy, seed):
        if backend == "sparse":
            pytest.importorskip("scipy")
        instance, trace, spec = self.build(backend, seed)
        compact = trace.compact()
        assert len(compact) < len(trace)  # seeds chosen to actually compact
        original = StreamDriver(instance, policy=policy, engine=spec).run(trace)
        rewritten = StreamDriver(instance, policy=policy, engine=spec).run(
            compact
        )
        assert rewritten.final_schedule == original.final_schedule
        assert rewritten.final_utility == pytest.approx(
            original.final_utility, abs=1e-9
        )
        assert rewritten.final_k == original.final_k
