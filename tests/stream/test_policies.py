"""Tests of the maintenance policies (construction, lifecycle, semantics)."""

import pytest

from repro.core.feasibility import is_schedule_feasible
from repro.stream import make_policy
from repro.stream.policies import (
    HybridPolicy,
    IncrementalPolicy,
    PeriodicRebuildPolicy,
    POLICY_NAMES,
)
from repro.stream.trace import ArriveCandidate, CancelEvent
from repro.workloads.config import ExperimentConfig
from repro.workloads.traces import TraceConfig, TraceGenerator

from tests.conftest import make_random_instance


def small_trace(n_ops=12, seed=3, **config_kwargs):
    config = ExperimentConfig(k=4, n_users=12, n_events=6, n_intervals=4, **config_kwargs)
    return TraceGenerator(config, TraceConfig(n_ops=n_ops), root_seed=seed).generate()


class TestFactory:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown maintenance policy"):
            make_policy("eager")

    def test_params_forwarded(self):
        policy = make_policy("periodic-rebuild", rebuild_every=4)
        assert "every=4" in policy.describe()


class TestLifecycle:
    def test_policy_is_single_use(self):
        instance = make_random_instance(seed=500, n_events=6, n_intervals=4)
        policy = IncrementalPolicy()
        policy.bind(instance, 3)
        with pytest.raises(RuntimeError, match="single-use"):
            policy.bind(instance, 3)

    def test_unbound_policy_has_no_scheduler(self):
        with pytest.raises(RuntimeError, match="not bound"):
            IncrementalPolicy().scheduler


class TestPeriodicRebuild:
    def test_rejects_non_batch_solver(self):
        with pytest.raises(ValueError, match="batch solver"):
            PeriodicRebuildPolicy(solver="ls")

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown solver"):
            PeriodicRebuildPolicy(solver="nope")

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            PeriodicRebuildPolicy(rebuild_every=0)

    def test_repair_only_between_rebuilds(self):
        """With a long rebuild period, ops apply structurally but nothing
        is re-optimized: a cancellation leaves the freed slot empty."""
        instance = make_random_instance(seed=501, n_events=6, n_intervals=4)
        policy = PeriodicRebuildPolicy(rebuild_every=100)
        policy.bind(instance, 4)
        victim = next(iter(policy.schedule.scheduled_events()))
        policy.apply(CancelEvent(time=0.0, event=victim))
        assert len(policy.schedule) == 3  # no greedy refill happened
        assert is_schedule_feasible(policy.scheduler.instance, policy.schedule)
        assert policy.rebuilds == 0

    def test_finish_flushes_pending_ops(self):
        instance = make_random_instance(seed=502, n_events=6, n_intervals=4)
        policy = PeriodicRebuildPolicy(rebuild_every=100)
        policy.bind(instance, 4)
        policy.apply(CancelEvent(time=0.0, event=0))
        policy.finish()
        assert policy.rebuilds == 1
        assert len(policy.schedule) == 4  # re-solve refilled the slot

    def test_rebuild_cadence(self):
        instance = make_random_instance(seed=503, n_events=8, n_intervals=4)
        policy = PeriodicRebuildPolicy(rebuild_every=2)
        policy.bind(instance, 3)
        for index in range(4):
            policy.apply(
                ArriveCandidate(
                    time=float(index),
                    location=50 + index,
                    required_resources=1.0,
                    interest=((0, 0.5),),
                )
            )
        assert policy.rebuilds == 2
        policy.finish()
        assert policy.rebuilds == 2  # nothing pending: no extra solve


class TestColdRebuildBaseline:
    def test_cold_and_warm_rebuilds_agree(self):
        """The legacy freeze+cold-fill path must produce the same
        maintained state as the warm plane path it now baselines."""
        instance = make_random_instance(seed=508, n_events=6, n_intervals=4)
        trace = small_trace(seed=9)
        states = {}
        for warm in (True, False):
            policy = PeriodicRebuildPolicy(rebuild_every=2, warm=warm)
            policy.bind(instance, 4)
            for op in trace:
                policy.apply(op)
            policy.finish()
            states[warm] = (
                policy.schedule.as_mapping(),
                policy.utility(),
                policy.rebuilds,
            )
        assert states[True][0] == states[False][0]
        assert states[True][1] == pytest.approx(states[False][1], abs=1e-9)
        assert states[True][2] == states[False][2]

    def test_cold_mode_is_labelled(self):
        assert ", cold" in PeriodicRebuildPolicy(warm=False).describe()
        assert ", cold" not in PeriodicRebuildPolicy().describe()


class TestHybrid:
    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError, match="positive"):
            HybridPolicy(drift_threshold=0.0)

    def test_default_threshold_set_at_bind(self):
        instance = make_random_instance(seed=504)
        policy = HybridPolicy()
        assert policy.drift_threshold is None
        policy.bind(instance, 3)
        assert policy.drift_threshold is not None and policy.drift_threshold > 0

    def test_pressure_accumulates_and_triggers_rebuild(self):
        instance = make_random_instance(seed=505, n_events=6, n_intervals=4)
        policy = HybridPolicy(drift_threshold=0.6)
        policy.bind(instance, 3)
        policy.apply(
            ArriveCandidate(
                time=0.0,
                location=77,
                required_resources=1.0,
                interest=((0, 0.5), (1, 0.4)),
            )
        )
        assert policy.rebuilds == 1  # 0.9 mass >= 0.6 threshold
        assert policy.pressure == 0.0  # reset after the rebuild

    def test_below_threshold_no_rebuild(self):
        instance = make_random_instance(seed=506, n_events=6, n_intervals=4)
        policy = HybridPolicy(drift_threshold=10.0)
        policy.bind(instance, 3)
        policy.apply(
            ArriveCandidate(
                time=0.0,
                location=77,
                required_resources=1.0,
                interest=((0, 0.5),),
            )
        )
        assert policy.rebuilds == 0
        assert policy.pressure == pytest.approx(0.5)

    def test_flush_subtracts_rather_than_zeroing(self, monkeypatch):
        """Pressure contributed while a rebuild runs survives the flush.

        The reset used to be ``_pressure = 0.0``, silently discarding
        mass added between the threshold check and the reset (reentrant
        apply via instrumentation/subclass hooks); the fix subtracts
        exactly the flushed amount.  On the plain non-reentrant path the
        two are identical — the golden-trace suite pins that.
        """
        instance = make_random_instance(seed=508, n_events=6, n_intervals=4)
        policy = HybridPolicy(drift_threshold=0.6)
        policy.bind(instance, 3)
        plain_rebuild = policy.scheduler.rebuild

        def rebuild_with_concurrent_drift() -> None:
            plain_rebuild()
            policy._pressure += 0.25  # mass landing mid-flush

        monkeypatch.setattr(
            policy.scheduler, "rebuild", rebuild_with_concurrent_drift
        )
        policy.apply(
            ArriveCandidate(
                time=0.0,
                location=77,
                required_resources=1.0,
                interest=((0, 0.5), (1, 0.4)),
            )
        )
        assert policy.rebuilds == 1
        assert policy.pressure == pytest.approx(0.25)


class TestTrajectories:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_schedules_stay_feasible_throughout(self, name):
        instance = make_random_instance(seed=507, n_events=6, n_intervals=4)
        policy = make_policy(name)
        policy.bind(instance, 4)
        for op in small_trace():
            policy.apply(op)
            assert is_schedule_feasible(
                policy.scheduler.instance, policy.schedule
            )
        policy.finish()
        assert is_schedule_feasible(policy.scheduler.instance, policy.schedule)
