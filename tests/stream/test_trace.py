"""Tests of the streaming trace model and its JSONL serialization."""

import numpy as np
import pytest

from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    ChangeOp,
    DriftInterest,
    RaiseBudget,
    Trace,
    TraceError,
    entries_from_column,
)

_OPS = (
    ArriveCandidate(
        time=0.5,
        location=3,
        required_resources=2.0,
        interest=((0, 0.4), (2, 1.0)),
        name="late-show",
    ),
    CancelEvent(time=1.0, event=1),
    AnnounceRival(time=1.5, interval=2, interest=((1, 0.9),)),
    DriftInterest(time=2.0, event=0, interest=((0, 0.2), (3, 0.7))),
    RaiseBudget(time=3.0, new_k=5),
)


def make_trace(**overrides):
    kwargs = dict(ops=_OPS, n_users=4, initial_k=3, seed=7, label="unit")
    kwargs.update(overrides)
    return Trace(**kwargs)


class TestOps:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CancelEvent(time=-1.0, event=0)

    def test_duplicate_interest_entries_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ArriveCandidate(time=0.0, interest=((1, 0.5), (1, 0.6)))

    def test_zero_interest_value_rejected(self):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            AnnounceRival(time=0.0, interval=0, interest=((1, 0.0),))

    def test_entries_sorted_by_user(self):
        op = DriftInterest(time=0.0, event=0, interest=((5, 0.3), (1, 0.8)))
        assert op.interest == ((1, 0.8), (5, 0.3))

    def test_labels_identify_targets(self):
        labels = [op.label() for op in _OPS]
        assert labels == ["arrive", "cancel:1", "rival:t2", "drift:0", "budget:5"]

    def test_entries_from_column_drops_zeros(self):
        entries = entries_from_column(np.array([0.0, 0.5, 0.0, 1.0]))
        assert entries == ((1, 0.5), (3, 1.0))

    def test_dict_roundtrip_every_kind(self):
        for op in _OPS:
            assert ChangeOp.from_dict(op.to_dict()) == op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown change-op kind"):
            ChangeOp.from_dict({"op": "merge", "time": 0.0})


class TestTrace:
    def test_validates_monotone_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            make_trace(
                ops=(CancelEvent(time=2.0, event=0), CancelEvent(time=1.0, event=1))
            )

    def test_op_counts(self):
        assert make_trace().op_counts() == {
            "arrive": 1,
            "budget": 1,
            "cancel": 1,
            "drift": 1,
            "rival": 1,
        }

    def test_describe_mentions_shape(self):
        text = make_trace().describe()
        assert "5 ops" in text and "4 users" in text and "k0=3" in text

    def test_len_and_iteration(self):
        trace = make_trace()
        assert len(trace) == 5
        assert tuple(trace) == _OPS


class TestJsonl:
    def test_roundtrip(self):
        trace = make_trace()
        assert Trace.from_jsonl(trace.to_jsonl()) == trace

    def test_serialization_is_deterministic(self):
        text = make_trace().to_jsonl()
        rebuilt = Trace.from_jsonl(text)
        assert rebuilt.to_jsonl() == text

    def test_file_roundtrip(self, tmp_path):
        trace = make_trace()
        path = trace.save(tmp_path / "trace.jsonl")
        assert Trace.load(path) == trace

    def test_header_is_first_line(self):
        first = make_trace().to_jsonl().splitlines()[0]
        assert '"format":"ses-trace/1"' in first

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            Trace.from_jsonl("")

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported trace format"):
            Trace.from_jsonl('{"format":"other/9","n_users":1,"initial_k":0}')


class TestReplayabilityValidation:
    """Regression: traces referencing dead/unknown events, duplicate live
    arrivals or shrinking budgets used to be accepted silently and only
    corrupted the replay; they now raise TraceError at construction,
    naming the offending op index."""

    def test_cancel_of_unknown_event_rejected(self):
        with pytest.raises(TraceError, match=r"op #0.*cancel:7"):
            make_trace(ops=(CancelEvent(time=0.0, event=7),), n_events=3)

    def test_cancel_index_space_tracks_prior_cancellations(self):
        # 3 live events; after one cancel only indices 0..1 remain
        with pytest.raises(TraceError, match=r"op #1.*cancel:2"):
            make_trace(
                ops=(
                    CancelEvent(time=0.0, event=0),
                    CancelEvent(time=1.0, event=2),
                ),
                n_events=3,
            )

    def test_drift_of_unknown_event_rejected(self):
        with pytest.raises(TraceError, match=r"op #0.*drift:3"):
            make_trace(
                ops=(DriftInterest(time=0.0, event=3, interest=((0, 0.5),)),),
                n_events=3,
            )

    def test_duplicate_live_arrival_name_rejected(self):
        arrival = ArriveCandidate(time=0.0, name="encore", interest=((0, 0.5),))
        again = ArriveCandidate(time=1.0, name="encore", interest=((1, 0.5),))
        with pytest.raises(TraceError, match=r"op #1.*duplicate.*encore"):
            make_trace(ops=(arrival, again), n_events=2)

    def test_rearrival_after_cancellation_is_fine(self):
        arrival = ArriveCandidate(time=0.0, name="encore", interest=((0, 0.5),))
        # the named arrival lands at live index 2; cancelling it frees the name
        cancel = CancelEvent(time=1.0, event=2)
        again = ArriveCandidate(time=2.0, name="encore", interest=((1, 0.5),))
        trace = make_trace(ops=(arrival, cancel, again), n_events=2)
        assert len(trace) == 3

    def test_rival_interval_out_of_range_rejected(self):
        with pytest.raises(TraceError, match=r"op #0.*rival:t9"):
            make_trace(
                ops=(AnnounceRival(time=0.0, interval=9, interest=((0, 0.5),)),),
                n_events=2,
                n_intervals=4,
            )

    def test_budget_shrink_rejected(self):
        with pytest.raises(TraceError, match=r"op #0.*shrink"):
            make_trace(ops=(RaiseBudget(time=0.0, new_k=1),), n_events=2)

    def test_validation_needs_known_shape(self):
        # without n_events the live index space is unknown: accepted as before
        trace = make_trace(ops=(CancelEvent(time=0.0, event=7),))
        assert len(trace) == 1

    def test_append_revalidates(self):
        trace = make_trace(ops=(), n_events=3)
        grown = trace.append(CancelEvent(time=1.0, event=0))
        assert len(grown) == 1 and len(trace) == 0
        with pytest.raises(TraceError, match=r"op #1"):
            grown.append(CancelEvent(time=2.0, event=2))
        with pytest.raises(ValueError, match="non-decreasing"):
            grown.append(CancelEvent(time=0.5, event=0))

    def test_generated_traces_always_validate(self):
        from repro.workloads.config import ExperimentConfig
        from repro.workloads.traces import TraceConfig, TraceGenerator

        config = ExperimentConfig(k=3, n_users=20, n_events=5, n_intervals=4)
        trace = TraceGenerator(
            config, TraceConfig(n_ops=40), root_seed=5
        ).generate()
        # round-tripping re-runs validation on the full shape metadata
        assert Trace.from_jsonl(trace.to_jsonl()) == trace
