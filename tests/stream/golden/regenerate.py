"""Regenerate the golden-trace fixtures in this directory.

Run from the repository root after an *intentional* behavior change::

    PYTHONPATH=src python tests/stream/golden/regenerate.py

Each case pins a seeded trace (JSONL) plus the exact expected replay
observations — per-op utility trajectory, final schedule, final utility,
rebuild and freeze counts — for every maintenance policy, on the engine
stack named by the case.  ``tests/stream/test_golden.py`` replays the
committed traces and compares **exactly** (floats included: replay is
deterministic, and JSON round-trips doubles losslessly via repr), so any
drift in scheduler, engine or policy behavior fails loudly.

Before being committed, the live-path trajectories were differentially
checked against the pre-LiveInstance frozen-rebuild scheduler on these
exact cases: bit-identical schedules everywhere, utilities equal except
one hybrid trajectory differing by 8.9e-16 (4 ulp) — so the fixtures
encode the paper-faithful semantics, not merely whatever the current
code happens to produce.
"""

import json
from pathlib import Path

from repro.core.engine import EngineSpec
from repro.stream import POLICY_NAMES, StreamDriver
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

GOLDEN_DIR = Path(__file__).parent

#: name -> (interest backend, root seed, instance shape, op count)
CASES = {
    "dense_a": ("dense", 11, dict(k=4, n_users=40, n_events=8, n_intervals=5), 16),
    "dense_b": ("dense", 12, dict(k=3, n_users=25, n_events=6, n_intervals=4), 12),
    "sparse_a": ("sparse", 13, dict(k=4, n_users=60, n_events=10, n_intervals=5), 16),
}

#: policy name -> constructor params used for the golden replays
POLICY_PARAMS = {"periodic-rebuild": {"rebuild_every": 2}}


def engine_for(backend: str) -> EngineSpec:
    return EngineSpec(kind="sparse" if backend == "sparse" else "vectorized")


def build_case(name: str):
    backend, seed, shape, n_ops = CASES[name]
    config = ExperimentConfig(interest_backend=backend, **shape)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=n_ops), root_seed=seed
    ).generate()
    instance = WorkloadGenerator(root_seed=seed).build(config)
    return instance, trace, engine_for(backend)


def replay(instance, trace, spec, policy: str):
    driver = StreamDriver(
        instance, policy=policy, engine=spec, **POLICY_PARAMS.get(policy, {})
    )
    return driver.run(trace)


def main() -> None:
    expected = {}
    for name in CASES:
        instance, trace, spec = build_case(name)
        trace.save(GOLDEN_DIR / f"{name}.jsonl")
        expected[name] = {"engine": spec.kind, "policies": {}}
        for policy in POLICY_NAMES:
            result = replay(instance, trace, spec, policy)
            expected[name]["policies"][policy] = {
                "utilities": list(result.utilities),
                "final_utility": result.final_utility,
                "final_schedule": {
                    str(event): interval
                    for event, interval in sorted(result.final_schedule.items())
                },
                "final_k": result.final_k,
                "rebuilds": result.rebuilds,
                "freezes": result.freezes,
            }
            print(f"{name}/{policy}: {result.summary()}")
    out = GOLDEN_DIR / "expected.json"
    out.write_text(json.dumps(expected, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
