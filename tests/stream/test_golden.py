"""Golden-trace regression suite: frozen streams, exact expected replays.

Three small seeded traces (two dense, one sparse) live as committed JSONL
fixtures under ``golden/`` together with their exact expected
observations per maintenance policy.  Replaying them must reproduce the
expected per-op utility trajectory **exactly** (float equality, not
approximately): replay is deterministic, and these numbers lock down the
whole streaming stack — LiveInstance delta application, engine
``apply_delta`` state, score-cache maintenance, policy decisions — so an
unintended behavioral drift anywhere fails this suite loudly.

After an *intentional* change, regenerate with::

    PYTHONPATH=src python tests/stream/golden/regenerate.py
"""

import json
from pathlib import Path

import pytest

from repro.stream import POLICY_NAMES, Trace

from tests.stream.golden.regenerate import CASES, build_case, replay

GOLDEN_DIR = Path(__file__).parent / "golden"

with (GOLDEN_DIR / "expected.json").open() as handle:
    EXPECTED = json.load(handle)


def case_params():
    for name in CASES:
        for policy in POLICY_NAMES:
            yield pytest.param(name, policy, id=f"{name}-{policy}")


class TestFixturesAreCurrent:
    @pytest.mark.parametrize("name", list(CASES))
    def test_committed_trace_matches_generator(self, name):
        """The JSONL fixture is byte-identical to its seeded generation."""
        _, trace, _ = build_case(name)
        committed = (GOLDEN_DIR / f"{name}.jsonl").read_text(encoding="utf-8")
        assert committed == trace.to_jsonl()

    def test_every_case_has_expectations(self):
        assert set(EXPECTED) == set(CASES)
        for name in CASES:
            assert set(EXPECTED[name]["policies"]) == set(POLICY_NAMES)


class TestGoldenReplays:
    @pytest.mark.parametrize("name,policy", case_params())
    def test_replay_matches_expected_exactly(self, name, policy):
        backend = CASES[name][0]
        if backend == "sparse":
            pytest.importorskip("scipy")
        instance, _, spec = build_case(name)
        trace = Trace.load(GOLDEN_DIR / f"{name}.jsonl")
        result = replay(instance, trace, spec, policy)

        expected = EXPECTED[name]["policies"][policy]
        assert EXPECTED[name]["engine"] == spec.kind
        # exact float equality: the contract is bit-level determinism
        assert list(result.utilities) == expected["utilities"]
        assert result.final_utility == expected["final_utility"]
        assert {
            str(event): interval
            for event, interval in sorted(result.final_schedule.items())
        } == expected["final_schedule"]
        assert result.final_k == expected["final_k"]
        assert result.rebuilds == expected["rebuilds"]
        assert result.freezes == expected["freezes"]

    @pytest.mark.parametrize("name", list(CASES))
    def test_incremental_policy_never_freezes(self, name):
        """The golden expectations themselves prove the O(delta) fast
        path: pure incremental replays materialize zero snapshots."""
        assert EXPECTED[name]["policies"]["incremental"]["freezes"] == 0
