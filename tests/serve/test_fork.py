"""ScorePlane.fork()/snapshot(): copy-on-write cloning of warm planes.

The load-bearing contract: a fork is an O(cells) *copy* — the forked
plane answers solves bit-identically to its parent while performing zero
engine score evaluations of its own, on every engine kind, including
after the parent absorbed live deltas.
"""

import numpy as np
import pytest

from repro.api import EngineSpec, solver_registry
from repro.core.entities import CompetingEvent
from repro.core.live import LiveInstance
from repro.core.scoreplane import PlaneSnapshot, ScorePlane

from tests.conftest import make_random_instance

KINDS = ("vectorized", "sparse", "reference")


def grd_solve(instance, k, plane):
    scheduler = solver_registry.create("grd")
    result = scheduler.solve(instance, k, plane=plane)
    return result.utility, tuple(sorted(result.schedule.as_mapping().items()))


@pytest.fixture
def instance():
    return make_random_instance(
        n_users=30, n_events=8, n_intervals=5, n_competing=6, seed=1711
    )


class TestFork:
    @pytest.mark.parametrize("kind", KINDS)
    def test_fork_is_bit_identical_and_zero_evaluation(self, instance, kind):
        plane = ScorePlane(EngineSpec(kind).build(instance))
        plane.ensure()  # warm the parent
        filled = plane.cells_filled
        fork = plane.fork()

        assert fork is not plane
        assert fork.engine is not plane.engine
        assert grd_solve(instance, 4, fork) == grd_solve(instance, 4, plane)
        # the fork never evaluated a single cell: all warm copies
        assert fork.cells_filled == 0
        assert fork.cells_refreshed == 0
        # and forking didn't charge the parent either
        assert plane.cells_filled == filled

    @pytest.mark.parametrize("kind", ("vectorized", "sparse"))
    def test_fork_of_cold_plane_matches_too(self, instance, kind):
        plane = ScorePlane(EngineSpec(kind).build(instance))
        fork = plane.fork()  # nothing warm to copy: fork fills itself
        assert grd_solve(instance, 4, fork) == grd_solve(instance, 4, plane)
        assert fork.cells_filled > 0

    def test_forks_are_independent(self, instance):
        plane = ScorePlane(EngineSpec("vectorized").build(instance))
        plane.ensure()
        fork = plane.fork()
        fork.mark_dirty(0)
        fork.flush()
        # dirtying + refreshing the fork never touches the parent
        assert plane.cells_refreshed == 0
        assert grd_solve(instance, 3, fork) == grd_solve(instance, 3, plane)

    @pytest.mark.parametrize("kind", ("vectorized", "sparse"))
    def test_fork_after_delta_stream(self, kind):
        """Parent absorbs live deltas in O(delta); forks taken afterwards
        still answer bit-identically to a cold solve over the new state."""
        rng = np.random.default_rng(77)
        base = make_random_instance(
            n_users=24, n_events=6, n_intervals=4, n_competing=4, seed=903
        )
        live = LiveInstance(base)
        plane = ScorePlane(EngineSpec(kind).build(live))
        plane.ensure()
        for step in range(3):
            rival = CompetingEvent(
                index=live.n_competing, interval=step % live.n_intervals
            )
            delta = live.add_competing(rival, rng.random(live.n_users))
            plane.apply_delta(delta)
        frozen = live.freeze()
        template = EngineSpec(kind).build(frozen)
        fork = plane.fork(template.clone())
        cold = ScorePlane(EngineSpec(kind).build(frozen))
        assert grd_solve(frozen, 4, fork) == grd_solve(frozen, 4, cold)
        assert fork.cells_filled == 0

    def test_fork_rejects_mismatched_engine_schedule(self, instance):
        engine = EngineSpec("vectorized").build(instance)
        plane = ScorePlane(engine, auto_reset=False)
        plane.ensure()
        other = EngineSpec("vectorized").build(instance)
        other.assign(0, 0)
        with pytest.raises(ValueError, match="different schedule"):
            plane.fork(other)


class TestSnapshot:
    def test_snapshot_roundtrip_warms_a_fresh_plane(self, instance):
        plane = ScorePlane(EngineSpec("vectorized").build(instance))
        plane.ensure()
        snap = plane.snapshot()
        assert isinstance(snap, PlaneSnapshot)

        adopter = ScorePlane(EngineSpec("vectorized").build(instance))
        adopter.adopt_snapshot(snap)
        assert grd_solve(instance, 4, adopter) == grd_solve(instance, 4, plane)
        assert adopter.cells_filled == 0

    def test_snapshot_is_isolated_from_the_source(self, instance):
        plane = ScorePlane(EngineSpec("vectorized").build(instance))
        plane.ensure()
        snap = plane.snapshot()
        assert snap.scores is not None
        before = snap.scores.copy()
        plane.mark_dirty(1)
        plane.flush()
        np.testing.assert_array_equal(snap.scores, before)

    def test_adopting_geometry_mismatch_invalidates(self, instance):
        plane = ScorePlane(EngineSpec("vectorized").build(instance))
        plane.ensure()
        snap = plane.snapshot()
        other_instance = make_random_instance(
            n_users=30, n_events=7, n_intervals=5, seed=4
        )
        adopter = ScorePlane(EngineSpec("vectorized").build(other_instance))
        adopter.adopt_snapshot(snap)
        # mismatch is a safe invalidate, not silent corruption
        fp = grd_solve(other_instance, 3, adopter)
        cold = ScorePlane(EngineSpec("vectorized").build(other_instance))
        assert fp == grd_solve(other_instance, 3, cold)

    def test_empty_snapshot_adoption_is_a_noop_invalidate(self, instance):
        plane = ScorePlane(EngineSpec("vectorized").build(instance))
        snap = plane.snapshot()  # never filled
        adopter = ScorePlane(EngineSpec("vectorized").build(instance))
        adopter.adopt_snapshot(snap)
        assert grd_solve(instance, 3, adopter)[0] > 0


class TestEngineClone:
    @pytest.mark.parametrize("kind", KINDS)
    def test_clone_scores_match_after_assignments(self, instance, kind):
        engine = EngineSpec(kind).build(instance)
        engine.assign(0, 1)
        engine.assign(2, 0)
        clone = engine.clone()
        assert clone is not engine
        assert clone.schedule.as_mapping() == engine.schedule.as_mapping()
        scheduled = set(engine.schedule.as_mapping())
        for event in range(instance.n_events):
            if event in scheduled:
                continue  # Eq. 4 scores only unscheduled candidates
            for interval in range(instance.n_intervals):
                assert clone.score(event, interval) == engine.score(
                    event, interval
                )

    @pytest.mark.parametrize("kind", ("vectorized", "sparse"))
    def test_clone_is_deep_for_mutable_state(self, instance, kind):
        engine = EngineSpec(kind).build(instance)
        engine.assign(0, 1)
        clone = engine.clone()
        clone.assign(3, 2)
        clone.unassign(0)
        # the original never observes the clone's moves
        assert engine.schedule.as_mapping() == {0: 1}
        fresh = EngineSpec(kind).build(instance)
        fresh.assign(0, 1)
        for event in range(1, instance.n_events):
            for interval in range(instance.n_intervals):
                assert engine.score(event, interval) == fresh.score(
                    event, interval
                )
