"""The serving benchmark's smoke mode and its CLI passthrough.

``bench_serving.py --smoke`` is a CI gate, not just a number printer:
its in-script checks (warm == cold fingerprints, zero replica cold
cells, pool hits, write invalidation) turn fast-path regressions into a
non-zero exit.  These tests pin that behavior at a scale small enough
for the tier-1 suite.
"""

import json

import pytest

from benchmarks.bench_serving import build_parser, main, percentiles
from repro.harness.cli import main as cli_main

SMALL = [
    "--smoke", "--users", "100", "-k", "5", "--clients", "4", "--seed", "7",
]


class TestBenchSmoke:
    def test_smoke_run_passes_all_checks(self, tmp_path, capsys):
        artifact = tmp_path / "bench.json"
        assert main([*SMALL, "--json", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "solves-per-second (bit-identical)" in out
        payload = json.loads(artifact.read_text())
        assert payload["benchmark"] == "bench_serving"
        results = payload["results"]
        assert all(results["checks"].values())
        assert results["pool_stats"]["replica_cold_cells"] == 0
        assert results["pool_stats"]["generation"] == 2
        assert results["solve_throughput"]["speedup"] > 0
        kinds = results["mixed"]["warm"]["kinds"]
        assert kinds["solve"] >= 1 and kinds["what-if"] >= 1
        assert kinds["stream"] >= 1

    def test_unreachable_min_speedup_fails_the_run(self):
        assert main([*SMALL, "--min-speedup", "1e9"]) == 1

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.clients == 8
        assert args.engine == "sparse"
        assert not args.smoke

    def test_percentiles_on_known_latencies(self):
        latencies = [float(i) for i in range(1, 101)]
        assert percentiles(latencies) == {
            "p50": 50.0, "p95": 95.0, "p99": 99.0,
        }
        assert percentiles([3.0]) == {"p50": 3.0, "p95": 3.0, "p99": 3.0}


class TestCliPassthrough:
    def test_serve_bench_subcommand_forwards_args(self, capsys):
        exit_code = cli_main(
            ["serve-bench", "--", "--smoke", "--users", "80", "-k", "4",
             "--clients", "2", "--seed", "7"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "checks:" in out
        assert "FAIL" not in out

    def test_serve_bench_without_separator(self, capsys):
        # argparse.REMAINDER passes flags through even without `--`
        exit_code = cli_main(
            ["serve-bench", "--smoke", "--users", "80", "-k", "4",
             "--clients", "2", "--seed", "7", "--min-speedup", "1e9"]
        )
        assert exit_code == 1  # forwarded checks still gate the exit code
