"""PlanePool lifecycle: leases, generation invalidation, LRU bounds.

The invariant under test everywhere: a lease can observe exactly the
generation it was forked at — a mutated pool never hands back (or
silently reuses) a stale replica — while replica forks stay O(cells)
copies (``replica_cold_cells`` == 0 through arbitrary churn).
"""

import numpy as np
import pytest

from repro.api import EngineSpec, solver_registry
from repro.core.entities import CompetingEvent
from repro.core.live import LiveInstance
from repro.serve import PlanePool

from tests.conftest import make_random_instance


def grd_solve(instance, k, plane):
    result = solver_registry.create("grd").solve(instance, k, plane=plane)
    return result.utility, tuple(sorted(result.schedule.as_mapping().items()))


def add_rival(pool, seed=0):
    """Commit one rival announcement through the pool's writer path."""
    rng = np.random.default_rng(seed)

    def mutate(live):
        rival = CompetingEvent(
            index=live.n_competing, interval=int(rng.integers(live.n_intervals))
        )
        return live.add_competing(rival, rng.random(live.n_users))

    return pool.write(mutate)


@pytest.fixture
def pool():
    instance = make_random_instance(
        n_users=26, n_events=7, n_intervals=5, n_competing=4, seed=2024
    )
    return PlanePool(LiveInstance(instance), max_replicas=8)


class TestLeaseEconomics:
    def test_first_lease_forks_release_then_hit(self, pool):
        replica = pool.acquire("vectorized")
        assert not replica.pool_hit
        assert replica.generation == 0
        pool.release(replica)
        again = pool.acquire("vectorized")
        assert again is replica
        assert again.pool_hit
        stats = pool.stats()
        assert (stats.forks, stats.hits) == (1, 1)

    def test_concurrent_leases_get_distinct_replicas(self, pool):
        a = pool.acquire("vectorized")
        b = pool.acquire("vectorized")
        assert a is not b
        assert a.plane is not b.plane
        assert pool.stats().forks == 2

    def test_specs_never_share_planes(self, pool):
        a = pool.acquire("vectorized")
        b = pool.acquire("sparse")
        assert a.plane is not b.plane
        assert type(a.plane.engine) is not type(b.plane.engine)

    def test_lease_context_manager_releases(self, pool):
        with pool.lease("vectorized") as replica:
            assert replica.generation == 0
        assert pool.acquire("vectorized") is replica

    def test_replicas_solve_warm_with_zero_cold_cells(self, pool):
        frozen = pool.version_instance()
        fingerprints = set()
        for _ in range(4):
            with pool.lease("vectorized") as replica:
                fingerprints.add(grd_solve(replica.frozen, 3, replica.plane))
        cold = solver_registry.create("grd").solve(frozen, 3)
        assert fingerprints == {
            (
                cold.utility,
                tuple(sorted(cold.schedule.as_mapping().items())),
            )
        }
        assert pool.stats().replica_cold_cells == 0


class TestGenerationInvalidation:
    def test_fork_then_mutate_invalidates_parked_replicas(self, pool):
        replica = pool.acquire("vectorized")
        pool.release(replica)
        add_rival(pool)
        stats = pool.stats()
        assert stats.generation == 1
        assert stats.invalidations == 1
        fresh = pool.acquire("vectorized")
        assert fresh is not replica
        assert fresh.generation == 1
        assert not fresh.pool_hit

    def test_outstanding_lease_survives_write_then_retires(self, pool):
        replica = pool.acquire("vectorized")
        before = replica.frozen
        add_rival(pool)
        # the in-flight read still solves safely against its own version
        fingerprint = grd_solve(replica.frozen, 3, replica.plane)
        assert replica.frozen is before
        cold = solver_registry.create("grd").solve(before, 3)
        assert fingerprint == (
            cold.utility,
            tuple(sorted(cold.schedule.as_mapping().items())),
        )
        pool.release(replica)  # stale on return: retired, not parked
        assert pool.stats().invalidations == 1
        assert pool.acquire("vectorized") is not replica

    def test_mutated_pool_serves_the_new_version_warm(self, pool):
        with pool.lease("vectorized") as replica:
            grd_solve(replica.frozen, 3, replica.plane)
        add_rival(pool, seed=9)
        with pool.lease("vectorized") as replica:
            assert replica.generation == 1
            warm = grd_solve(replica.frozen, 3, replica.plane)
        cold = solver_registry.create("grd").solve(pool.version_instance(), 3)
        assert warm == (
            cold.utility,
            tuple(sorted(cold.schedule.as_mapping().items())),
        )
        assert pool.stats().replica_cold_cells == 0

    def test_version_instance_cached_per_generation(self, pool):
        first = pool.version_instance()
        assert pool.version_instance() is first
        add_rival(pool)
        second = pool.version_instance()
        assert second is not first
        assert second.n_competing == first.n_competing + 1

    def test_write_returns_the_delta(self, pool):
        delta = add_rival(pool)
        assert delta.competing == 4  # the fixture instance has 4 rivals


class TestBoundedReuse:
    def test_lru_reclaim_under_small_bound(self):
        instance = make_random_instance(
            n_users=20, n_events=5, n_intervals=4, seed=77
        )
        pool = PlanePool(LiveInstance(instance), max_replicas=2)
        leased = [pool.acquire("vectorized") for _ in range(4)]
        for replica in leased:
            pool.release(replica)
        stats = pool.stats()
        assert stats.evictions == 2
        # the survivors are the two most recently released
        assert pool.acquire("vectorized") is leased[3]
        assert pool.acquire("vectorized") is leased[2]
        assert pool.acquire("vectorized") not in leased

    def test_max_replicas_must_be_positive(self):
        instance = make_random_instance(n_users=10, n_events=3, seed=5)
        with pytest.raises(ValueError, match="positive"):
            PlanePool(LiveInstance(instance), max_replicas=0)

    def test_evicted_replicas_keep_cold_cell_accounting(self):
        instance = make_random_instance(
            n_users=20, n_events=5, n_intervals=4, seed=78
        )
        pool = PlanePool(LiveInstance(instance), max_replicas=1)
        for replica in [pool.acquire("sparse") for _ in range(3)]:
            pool.release(replica)
        assert pool.stats().evictions == 2
        assert pool.stats().replica_cold_cells == 0


class TestStats:
    def test_as_dict_roundtrips_every_counter(self, pool):
        with pool.lease("vectorized"):
            pass
        payload = pool.stats().as_dict()
        assert payload["forks"] == 1
        assert set(payload) == {
            "forks",
            "hits",
            "invalidations",
            "evictions",
            "rebuilds",
            "generation",
            "freezes",
            "replica_cold_cells",
            "degraded",
            "writer_stalls",
        }

    def test_generation_zero_needs_no_freeze(self, pool):
        """The source instance doubles as generation 0's snapshot: serving
        an unmutated pool costs zero O(instance) freezes."""
        with pool.lease("vectorized") as replica:
            grd_solve(replica.frozen, 3, replica.plane)
        assert pool.stats().freezes == 0

    def test_template_rebuilt_once_per_generation(self, pool):
        for _ in range(3):
            with pool.lease("vectorized"):
                pass
        assert pool.stats().rebuilds == 1
        add_rival(pool)
        with pool.lease("vectorized"):
            pass
        assert pool.stats().rebuilds == 2
