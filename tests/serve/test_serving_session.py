"""ServingSession: K-thread serving == serial replay == cold baseline.

The acceptance differential: the same deterministic workload executed by
K concurrent client threads, by a serial replay on a fresh session, and
by per-request cold construction must produce identical response
fingerprints on the dense AND sparse engines — concurrency must be
invisible in the results, visible only in the latency.
"""

import queue
import threading

import numpy as np
import pytest

from repro.api import EngineSpec, SolveRequest
from repro.serve import ServingSession, make_workload, run_item, run_item_cold
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

from tests.conftest import make_random_instance

SEED = 424


def run_threaded(serving, items, n_threads=4):
    """Drain the workload with worker threads; fingerprints by item index."""
    pending = queue.Queue()
    for item in items:
        pending.put(item)
    fingerprints = [None] * len(items)
    errors = []

    def worker():
        while True:
            try:
                item = pending.get_nowait()
            except queue.Empty:
                return
            try:
                fingerprints[item.index] = run_item(serving, item)
            except BaseException as exc:
                errors.append(exc)
                return

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return fingerprints


def build_workload_instance(spec):
    config = ExperimentConfig(
        k=4, n_users=80, interest_backend=spec.interest_backend
    )
    instance = WorkloadGenerator(root_seed=SEED).build(config)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=3), root_seed=SEED
    ).generate()
    return instance, trace


class TestConcurrentDifferential:
    @pytest.mark.parametrize("kind", ("vectorized", "sparse"))
    def test_k_threads_match_serial_replay_and_cold(self, kind):
        spec = EngineSpec(kind)
        instance, trace = build_workload_instance(spec)
        items = make_workload(
            12,
            4,
            SEED,
            engine=spec,
            n_competing=instance.n_competing,
            whatif_every=5,
            trace=trace,
            stream_every=7,
        )
        assert {item.kind for item in items} == {"solve", "what-if", "stream"}

        threaded = run_threaded(
            ServingSession(instance, default_engine=spec), items, n_threads=4
        )
        serial_session = ServingSession(instance, default_engine=spec)
        serial = [run_item(serial_session, item) for item in items]
        cold = [
            run_item_cold(instance, item, default_engine=spec)
            for item in items
        ]
        assert threaded == serial == cold

    def test_two_runs_same_seed_identical_despite_interleaving(self):
        spec = EngineSpec("vectorized")
        instance, _ = build_workload_instance(spec)
        items = make_workload(10, 3, SEED, engine=spec, solvers=("grd", "sa"))
        assert any(
            item.request is not None and item.request.seed is not None
            for item in items
        ), "the mix should draw the seeded solver"
        first = run_threaded(
            ServingSession(instance, default_engine=spec), items, n_threads=5
        )
        second = run_threaded(
            ServingSession(instance, default_engine=spec), items, n_threads=2
        )
        assert first == second

    @pytest.mark.parametrize("kind", ("vectorized", "sparse"))
    def test_threads_against_a_mutating_writer_stay_version_consistent(
        self, kind
    ):
        """Solves racing a writer must each match the cold solve of *some*
        committed version — never a torn mix of two versions."""
        spec = EngineSpec(kind)
        instance, _ = build_workload_instance(spec)
        serving = ServingSession(instance, default_engine=spec)
        rng = np.random.default_rng(11)
        versions = {0: serving.version_instance()}
        responses = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                response = serving.solve(k=3)
                with lock:
                    responses.append(response)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(4):
            serving.add_competing(
                int(rng.integers(instance.n_intervals)),
                rng.random(instance.n_users),
            )
            versions[serving.version] = serving.version_instance()
        stop.set()
        for thread in threads:
            thread.join()

        assert responses
        from repro.api import solver_registry

        expected = {
            version: solver_registry.create(
                "grd", engine=spec
            ).solve(frozen, 3).utility
            for version, frozen in versions.items()
        }
        for response in responses:
            assert response.version in expected
            assert response.utility == expected[response.version]


class TestServingSessionApi:
    @pytest.fixture
    def serving(self):
        instance = make_random_instance(
            n_users=24, n_events=6, n_intervals=4, n_competing=3, seed=31
        )
        return ServingSession(instance)

    def test_solve_accepts_request_or_kwargs(self, serving):
        by_request = serving.solve(SolveRequest(k=3))
        by_kwargs = serving.solve(k=3)
        assert by_request.utility == by_kwargs.utility
        assert by_request.schedule.as_mapping() == (
            by_kwargs.schedule.as_mapping()
        )
        with pytest.raises(TypeError, match="not both"):
            serving.solve(SolveRequest(k=3), k=3)

    def test_responses_are_version_stamped(self, serving):
        first = serving.solve(k=2)
        assert first.version == 0
        assert not first.pool_hit
        second = serving.solve(k=2)
        assert second.pool_hit  # replica parked by the first solve
        assert second.response.reused_engine
        assert "@v0" in first.summary()

        serving.add_competing(0, np.full(24, 0.5))
        assert serving.version == 1
        third = serving.solve(k=2)
        assert third.version == 1
        assert not third.pool_hit

    def test_mutators_commit_and_renumber(self, serving):
        column = np.full(24, 0.25)
        event = serving.add_event(
            location=0, required_resources=2.0, interest_column=column
        )
        assert event == 6
        assert serving.version_instance().n_events == 7
        serving.update_event_interest(event, np.full(24, 0.75))
        assert serving.cancel_event(0) == 0
        assert serving.version_instance().n_events == 6
        assert serving.version == 3
        # post-mutation solves still match a cold solve of the new state
        from repro.api import solver_registry

        warm = serving.solve(k=3)
        cold = solver_registry.create("grd", engine=serving.default_engine)
        result = cold.solve(serving.version_instance(), 3)
        assert warm.utility == result.utility
        assert warm.schedule.as_mapping() == result.schedule.as_mapping()

    def test_whatif_and_report_serve_current_version(self, serving):
        cost = serving.competition_cost(3, 0)
        assert cost >= 0.0
        schedule = serving.solve(k=3).schedule
        report = serving.report(schedule)
        assert report.format()
        curve = serving.what_if_theta(3, [5.0, 20.0])
        assert len(curve.rows) == 2 if hasattr(curve, "rows") else True
        assert serving.requests_served == 4

    def test_describe_mentions_counters(self, serving):
        serving.solve(k=2)
        text = serving.describe()
        assert "1 request(s) served" in text
        assert "fork(s)" in text


class TestWorkloadFactory:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_workload(-1, 3, SEED)
        with pytest.raises(ValueError, match="at least one solver"):
            make_workload(4, 3, SEED, solvers=())

    def test_same_seed_same_workload(self):
        a = make_workload(8, 3, SEED, solvers=("grd", "sa"))
        b = make_workload(8, 3, SEED, solvers=("grd", "sa"))
        assert a == b
        c = make_workload(8, 3, SEED + 1, solvers=("grd", "sa"))
        assert a != c

    def test_item_labels_and_kinds(self):
        items = make_workload(6, 3, SEED, n_competing=2, whatif_every=3)
        assert [item.kind for item in items] == [
            "solve", "solve", "what-if", "solve", "solve", "what-if",
        ]
        assert items[2].label() == "2:what-if"
        assert items[0].label().startswith("0:")
