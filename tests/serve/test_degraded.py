"""Degraded serving + serving-session durability.

Covers the two degraded-response paths (deadline exhaustion, stalled
writer) and the serve half of the crash-recovery contract: journaled
mutations, checkpoint cadence, kill-point recovery bit-identical to an
uninterrupted session.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import RecoveryError
from repro.resilience import Durability, FaultPlan
from repro.serve import ServingSession

from tests.conftest import make_random_instance


def _session(**kwargs) -> ServingSession:
    return ServingSession(make_random_instance(seed=42), **kwargs)


def _mutate_n(session: ServingSession, n: int, seed: int = 0) -> None:
    """Apply n deterministic mutations across all four mutator kinds."""
    rng = np.random.default_rng(seed)
    for index in range(n):
        column = rng.uniform(0.0, 1.0, session.version_instance().n_users)
        kind = index % 4
        if kind == 0:
            session.add_event(
                location=int(rng.integers(3)),
                required_resources=float(rng.uniform(1.0, 2.0)),
                interest_column=column,
                name=f"evt-{index}",
                tags=frozenset({"late"}),
            )
        elif kind == 1:
            session.add_competing(
                interval=int(rng.integers(session.version_instance().n_intervals)),
                interest_column=column[: session.version_instance().n_users],
                name=f"rival-{index}",
            )
        elif kind == 2:
            session.update_event_interest(0, column)
        else:
            session.cancel_event(session.version_instance().n_events - 1)


class TestDeadlineServing:
    def test_zero_deadline_deterministically_degrades(self):
        response = _session().solve(k=4, deadline_ms=0)
        assert response.degraded
        assert response.result is not None
        assert len(response.schedule) > 0
        assert "[degraded]" in response.summary()

    def test_ample_deadline_is_not_degraded(self):
        response = _session().solve(k=4, deadline_ms=30_000)
        assert not response.degraded
        assert response.staleness == 0

    def test_degraded_baseline_matches_grd(self):
        session = _session()
        degraded = session.solve(k=4, deadline_ms=0)
        grd = session.solve(k=4, solver="grd")
        assert degraded.utility == grd.utility

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            _session().solve(k=4, deadline_ms=-1)


class TestStalledWriterDegradedReads:
    def test_stalled_writer_serves_stale_generation(self):
        session = _session(keep_stale_replica=True)
        session.solve(k=4)  # warms the pool and the last-good stash
        session.add_competing(
            interval=0,
            interest_column=np.full(
                session.version_instance().n_users, 0.5
            ),
        )
        release = threading.Event()
        entered = threading.Event()

        def slow_write():
            def mutate(live):
                entered.set()
                release.wait(timeout=5.0)
                return live.replace_event_interest(
                    0,
                    np.full(session.version_instance().n_users, 0.25),
                )

            session.pool.write(mutate)

        writer = threading.Thread(target=slow_write, daemon=True)
        writer.start()
        assert entered.wait(timeout=5.0)
        try:
            response = session.solve(k=4, max_wait_s=0.05)
        finally:
            release.set()
            writer.join(timeout=5.0)
        assert response.degraded
        assert response.staleness >= 1
        assert "staleness" in response.summary()
        assert session.pool_stats().degraded >= 1

    def test_writer_stall_injection_counts(self):
        plan = FaultPlan(seed=3, writer_stall=1.0, stall_seconds=1e-4)
        session = _session(fault_plan=plan)
        session.add_competing(
            interval=0,
            interest_column=np.full(
                session.version_instance().n_users, 0.5
            ),
        )
        assert session.pool_stats().writer_stalls == 1
        assert session.pool.fault_stats() == {"pool.write:writer_stall": 1}

    def test_unstalled_reads_are_never_stamped(self):
        session = _session(keep_stale_replica=True)
        for _ in range(3):
            response = session.solve(k=4, max_wait_s=1.0)
            assert not response.degraded
            assert response.staleness == 0


class TestDurableSession:
    def test_every_mutation_is_journaled(self, tmp_path):
        session = _session(durability=Durability(tmp_path / "ses"))
        _mutate_n(session, 8)
        assert session.journal_offset == 8
        session.close()

    def test_non_durable_session_has_no_offset(self):
        assert _session().journal_offset is None

    def test_recover_matches_uninterrupted(self, tmp_path):
        reference = _session()
        _mutate_n(reference, 6)

        durability = Durability(tmp_path / "ses", checkpoint_every=4)
        crashed = _session(durability=durability)
        _mutate_n(crashed, 6)
        expected = crashed.solve(k=4)
        crashed._journal.abandon()  # the crash simulator

        recovered = ServingSession.recover(durability)
        assert recovered.version == reference.version == 6
        response = recovered.solve(k=4)
        assert response.utility == expected.utility
        assert response.schedule.as_mapping() == expected.schedule.as_mapping()
        assert response.version == expected.version

    @pytest.mark.parametrize("kill_at", range(9))
    def test_kill_points_recover_and_converge(self, tmp_path, kill_at):
        durability = Durability(tmp_path / "ses", checkpoint_every=3)
        crashed = _session(durability=durability)
        _mutate_n(crashed, kill_at)
        crashed._journal.abandon()

        recovered = ServingSession.recover(durability)
        assert recovered.version == kill_at
        # the recovered session keeps journaling into the surviving WAL
        _mutate_n(recovered, 9 - kill_at, seed=100 + kill_at)
        assert recovered.journal_offset == 9
        recovered.close()

    def test_recovered_session_keeps_journaling(self, tmp_path):
        durability = Durability(tmp_path / "ses")
        session = _session(durability=durability)
        _mutate_n(session, 3)
        session._journal.abandon()

        recovered = ServingSession.recover(durability)
        _mutate_n(recovered, 2, seed=50)
        assert recovered.journal_offset == 5
        recovered.close()
        again = ServingSession.recover(durability)
        assert again.version == 5

    def test_close_then_recover(self, tmp_path):
        durability = Durability(tmp_path / "ses")
        session = _session(durability=durability)
        _mutate_n(session, 5)
        before = session.solve(k=4)
        session.close()
        recovered = ServingSession.recover(durability)
        assert recovered.solve(k=4).utility == before.utility

    def test_recover_rejects_stream_journal(self, tmp_path):
        from repro.stream import StreamDriver

        from tests.resilience.conftest import (
            engine_for,
            golden_instance,
            golden_trace,
        )

        durability = Durability(tmp_path / "ses")
        StreamDriver(
            golden_instance("dense_b"),
            policy="incremental",
            engine=engine_for("dense_b"),
            durability=durability,
        ).run(golden_trace("dense_b"), stop_after=2)
        with pytest.raises(RecoveryError, match="serv"):
            ServingSession.recover(durability)

    def test_unknown_journal_kind_rejected_on_replay(self):
        from repro.resilience.serve import replay_mutation

        with pytest.raises(RecoveryError, match="unknown"):
            replay_mutation(_session(), {"kind": "set_theta"})
