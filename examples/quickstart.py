"""Quickstart: build a small SES instance by hand and schedule it via repro.api.

This walks the whole public API surface in ~60 lines:

1. define users, intervals, candidate events and one competing event;
2. supply the interest function ``mu`` and activity probabilities ``sigma``;
3. open a :class:`repro.api.ScheduleSession` over the instance and serve
   several solve queries from it — the paper's GRD first, then a batch
   comparing other registered solvers against it, all sharing one cached
   score engine.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    ActivityModel,
    CandidateEvent,
    CompetingEvent,
    InterestMatrix,
    Organizer,
    SESInstance,
    TimeInterval,
    User,
)
from repro.api import ScheduleSession, SolveRequest


def build_instance() -> SESInstance:
    """Three users, four candidate events, two evenings, one rival show."""
    users = [
        User(index=0, name="alice"),
        User(index=1, name="bob"),
        User(index=2, name="carol"),
    ]
    intervals = [
        TimeInterval(index=0, label="mon-evening", start=18.0, end=22.0),
        TimeInterval(index=1, label="tue-evening", start=42.0, end=46.0),
    ]
    events = [
        CandidateEvent(index=0, location=0, required_resources=3.0, name="pop-concert"),
        CandidateEvent(index=1, location=1, required_resources=2.0, name="fashion-show"),
        CandidateEvent(index=2, location=0, required_resources=4.0, name="jazz-night"),
        CandidateEvent(index=3, location=1, required_resources=2.0, name="wine-tasting"),
    ]
    # a third-party concert already booked for Monday evening
    competing = [CompetingEvent(index=0, interval=0, name="rival-gig")]

    # mu: how much each user likes each event (rows: users, columns: events)
    interest = InterestMatrix.from_arrays(
        np.array(
            [
                [0.9, 0.7, 0.1, 0.2],  # alice: pop + fashion
                [0.2, 0.1, 0.8, 0.6],  # bob: jazz + wine
                [0.5, 0.5, 0.5, 0.5],  # carol: omnivore
            ]
        ),
        np.array([[0.6], [0.1], [0.3]]),  # interest in the rival gig
    )
    # sigma: probability of going out at all, per user and evening
    activity = ActivityModel(
        np.array(
            [
                [0.9, 0.3],  # alice is a Monday person
                [0.5, 0.8],  # bob prefers Tuesdays
                [0.7, 0.7],
            ]
        )
    )
    organizer = Organizer(resources=6.0, name="city-hall")
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=organizer,
    )


def main() -> None:
    instance = build_instance()
    print(instance.describe())

    session = ScheduleSession(instance)
    result = session.solve(k=3, solver="grd").result
    print(f"\n{result.summary()}\n")
    for assignment in result.schedule:
        event = instance.events[assignment.event]
        interval = instance.intervals[assignment.interval]
        print(
            f"  {event.display_name:>14} -> {interval.display_name} "
            f"(stage {event.location}, staff {event.required_resources:g})"
        )

    print("\nExpected attendance per scheduled event:")
    from repro.core import expected_attendance

    for assignment in result.schedule:
        omega = expected_attendance(instance, result.schedule, assignment.event)
        name = instance.events[assignment.event].display_name
        print(f"  {name:>14}: {omega:.3f} attendees")

    # the same session serves further queries without rebuilding the engine
    print("\nOther solvers on the same session:")
    for response in session.solve_many(
        [
            SolveRequest(k=3, solver="top"),
            SolveRequest(k=3, solver="rand", seed=7),
            SolveRequest(k=3, solver="exact"),
        ]
    ):
        print(f"  {response.summary()}")
    print(f"\n({session.describe()})")


if __name__ == "__main__":
    main()
