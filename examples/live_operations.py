"""Live operations: maintaining a schedule as the world changes.

A published program is not the end of scheduling.  After the initial GRD
run this example plays out a week of operational events:

1. a hot new act becomes available (arrival with displacement),
2. a scheduled act cancels (refill),
3. a rival venue announces a show opposite one of ours (relocation),
4. the sponsor funds five more slots (budget growth),

using :class:`repro.IncrementalScheduler`, and compares the incrementally
maintained schedule against a from-scratch rebuild.  Finally it prints the
explainable program via :class:`repro.harness.ScheduleReport`.

Run with::

    python examples/live_operations.py
"""

import numpy as np

from repro import ExperimentConfig, IncrementalScheduler, WorkloadGenerator
from repro.harness.inspect import ScheduleReport

K = 15
SEED = 11


def main() -> None:
    rng = np.random.default_rng(SEED)
    instance = WorkloadGenerator(root_seed=SEED).build(
        ExperimentConfig(k=K, n_users=400)
    )
    live = IncrementalScheduler(instance, k=K)
    print(f"initial program: {len(live.schedule)} events, "
          f"expected attendance {live.utility():.2f}\n")

    # -- 1. a headliner becomes available ----------------------------------
    headliner_interest = np.clip(rng.uniform(0.5, 1.0, instance.n_users), 0, 1)
    index = live.add_candidate_event(
        location=3,
        required_resources=4.0,
        interest_column=headliner_interest,
        name="headliner",
    )
    scheduled = live.schedule.contains_event(index)
    print(f"1. headliner arrives -> scheduled={scheduled}, "
          f"attendance {live.utility():.2f}")

    # -- 2. one of our scheduled acts cancels ------------------------------
    victim = next(iter(live.schedule.scheduled_events()))
    victim_name = live.instance.events[victim].display_name
    live.cancel_event(victim)
    print(f"2. '{victim_name}' cancels   -> refilled to "
          f"{len(live.schedule)} events, attendance {live.utility():.2f}")

    # -- 3. a rival venue books opposite our busiest slot -------------------
    busiest = max(
        live.schedule.used_intervals(),
        key=lambda t: len(live.schedule.events_at(t)),
    )
    rival_interest = np.clip(rng.uniform(0.4, 0.9, live.instance.n_users), 0, 1)
    live.add_competing_event(
        interval=busiest, interest_column=rival_interest, name="rival-arena-show"
    )
    print(f"3. rival show at t{busiest}   -> attendance {live.utility():.2f} "
          f"(events may have relocated)")

    # -- 4. sponsor funds a bigger program ----------------------------------
    live.raise_budget(K + 5)
    print(f"4. budget {K} -> {K + 5}      -> {len(live.schedule)} events, "
          f"attendance {live.utility():.2f}")

    # -- compare against a global rebuild -----------------------------------
    incremental_utility = live.utility()
    live.rebuild()
    print(f"\nincrementally maintained: {incremental_utility:.2f}")
    print(f"global greedy rebuild   : {live.utility():.2f}")
    print(
        "(neither dominates in general: the rebuild re-optimizes globally,\n"
        " while the maintained schedule benefits from displacement and\n"
        " relocation moves plain greedy never considers)\n"
    )

    print(ScheduleReport(live.instance, live.schedule).format())


if __name__ == "__main__":
    main()
