"""Full Meetup-style pipeline: synthetic EBSN -> SES instance -> comparison.

This reproduces the paper's experimental pipeline end to end, at a reduced
but realistic scale:

1. generate a calibrated Meetup-California-like EBSN (tag clusters, Zipf
   group popularity, check-in histories; mean event overlap ~ 8.1);
2. run the Section IV.A preprocessing — Jaccard tag interest, uniform
   per-interval competing events, 25 locations, theta = 20, xi ~ U[1, 20/3];
3. compare GRD / GRD-heap / TOP / RAND / SA on the paper-default shape
   |E| = 2k, |T| = 3k/2;
4. estimate sigma from check-ins instead of U[0, 1] and show the effect
   (the "real pipeline" the paper describes but does not evaluate).

Run with::

    python examples/meetup_campaign.py
"""

from repro import (
    AnnealingScheduler,
    GreedyScheduler,
    LazyGreedyScheduler,
    RandomScheduler,
    TopKScheduler,
)
from repro.data.meetup import InstanceBuildParams, build_instance
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.ebsn.stats import summarize

K = 40
SEED = 7


def main() -> None:
    # -- step 1: the dataset substitute -----------------------------------
    config = EBSNConfig.meetup_california(scale=0.05)  # ~2100 users, ~800 events
    snapshot = MeetupStyleGenerator(config).generate(seed=SEED)
    stats = summarize(snapshot.network)
    print("Synthetic Meetup-CA snapshot:")
    for key, value in sorted(stats.items()):
        print(f"  {key:>18}: {value:,.2f}")
    print(f"  {'target overlap':>18}: {config.target_overlap} (paper-measured 8.1)\n")

    # -- step 2: the paper's preprocessing ---------------------------------
    params = InstanceBuildParams(
        n_candidate_events=2 * K,
        n_intervals=3 * K // 2,
        mean_competing_per_interval=8.1,
        n_locations=25,
        theta=20.0,
    )
    instance = build_instance(snapshot, params, seed=SEED)
    print(f"SES instance: {instance.describe()}\n")

    # -- step 3: method comparison at the paper-default shape --------------
    methods = {
        "GRD": GreedyScheduler(),
        "GRD-heap": LazyGreedyScheduler(),
        "TOP": TopKScheduler(),
        "RAND": RandomScheduler(seed=SEED),
        "SA": AnnealingScheduler(seed=SEED, steps=2000),
    }
    print(f"Scheduling k={K} events:")
    for name, solver in methods.items():
        result = solver.solve(instance, K)
        print(
            f"  {name:<9} utility={result.utility:9.2f}  "
            f"time={result.runtime_seconds * 1e3:8.1f} ms  "
            f"(pops={result.stats.pops}, updates={result.stats.score_updates})"
        )

    # -- step 4: sigma from check-ins instead of U[0,1] --------------------
    checkin_params = InstanceBuildParams(
        n_candidate_events=2 * K,
        n_intervals=3 * K // 2,
        mean_competing_per_interval=8.1,
        n_locations=25,
        theta=20.0,
        sigma_source="checkins",
    )
    checkin_instance = build_instance(snapshot, checkin_params, seed=SEED)
    uniform_result = GreedyScheduler().solve(instance, K)
    checkin_result = GreedyScheduler().solve(checkin_instance, K)
    print(
        "\nsigma source comparison (GRD):\n"
        f"  U[0,1] sigma (paper's experiments): {uniform_result.utility:9.2f}\n"
        f"  check-in estimated sigma          : {checkin_result.utility:9.2f}\n"
        "  (absolute utilities differ because the sigma distributions do;\n"
        "   the scheduling pipeline is identical)"
    )


if __name__ == "__main__":
    main()
