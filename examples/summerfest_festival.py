"""The paper's motivating scenario: scheduling a Summerfest-style festival.

Section I of the paper describes an 11-day festival with 11 stages, where
the organizer must pick which candidate events to host and when, against
third-party venues that compete for the same crowd (remember Alice: a Pop
concert, a fashion show and a rival Pop gig all on Monday evening).

This example builds that world synthetically:

* 11 festival days x 2 day-parts = 22 disjoint time intervals;
* 11 stages (locations) and a staffing budget per interval;
* 60 candidate events across themed genres, with tag-based user interest
  (Jaccard — the paper's Section IV.A construction);
* a competing third-party event landscape;
* user availability patterns (some users only go out on weekends).

It then compares GRD with TOP and RAND and prints the festival program.

Run with::

    python examples/summerfest_festival.py
"""

import numpy as np

from repro import (
    ActivityModel,
    CalendarGrid,
    CandidateEvent,
    CompetingEvent,
    GreedyScheduler,
    InterestMatrix,
    Organizer,
    RandomScheduler,
    SESInstance,
    TopKScheduler,
    User,
)
from repro.ebsn.jaccard import jaccard_matrix
from repro.ebsn.tags import TagVocabulary

RNG = np.random.default_rng(2018)

N_DAYS = 11
PARTS = ("afternoon", "evening")
N_STAGES = 11
N_USERS = 800
N_CANDIDATES = 60
N_COMPETING = 40
STAFF_PER_INTERVAL = 20.0

#: the festival calendar: 11 days x {afternoon, evening}, starting Friday
GRID = CalendarGrid(n_days=N_DAYS, first_weekday=4)


def build_world() -> SESInstance:
    vocabulary = TagVocabulary(n_tags=120)

    # --- time grid: 11 days x 2 parts, disjoint by construction ----------
    intervals = GRID.build_intervals()

    # --- candidate events: themed, staged, staffed ------------------------
    events = []
    event_tagsets = []
    for index in range(N_CANDIDATES):
        topic = vocabulary.sample_topic(RNG)
        tags = vocabulary.sample_tagset(RNG, size=6, primary_topic=topic)
        events.append(
            CandidateEvent(
                index=index,
                location=int(RNG.integers(N_STAGES)),
                required_resources=float(RNG.uniform(2.0, 7.0)),
                name=f"{topic}-act-{index}",
                tags=tags,
            )
        )
        event_tagsets.append(tags)

    # --- competing events: rival venues across the same 11 days ----------
    competing = []
    competing_tagsets = []
    for index in range(N_COMPETING):
        topic = vocabulary.sample_topic(RNG)
        tags = vocabulary.sample_tagset(RNG, size=6, primary_topic=topic)
        competing.append(
            CompetingEvent(
                index=index,
                interval=int(RNG.integers(len(intervals))),
                name=f"rival-{topic}-{index}",
                tags=tags,
            )
        )
        competing_tagsets.append(tags)

    # --- users: tag profiles + availability rhythms ----------------------
    users = []
    user_tagsets = []
    for index in range(N_USERS):
        topic = vocabulary.sample_topic(RNG)
        tags = vocabulary.sample_tagset(RNG, size=8, primary_topic=topic)
        users.append(User(index=index, tags=tags))
        user_tagsets.append(tags)

    interest = InterestMatrix.from_arrays(
        jaccard_matrix(user_tagsets, event_tagsets),
        jaccard_matrix(user_tagsets, competing_tagsets),
    )

    # availability: weekday-evening people, weekend people, and afternooners
    sigma = np.empty((N_USERS, len(intervals)))
    archetype = RNG.integers(3, size=N_USERS)
    for t, interval in enumerate(intervals):
        day = GRID.day_of_interval(t)
        is_weekend = GRID.is_weekend(day)
        is_evening = GRID.part_of_interval(t).name == "evening"
        base = np.where(
            archetype == 0,
            0.7 if is_evening else 0.2,          # evening-goers
            np.where(
                archetype == 1,
                0.8 if is_weekend else 0.15,      # weekend-goers
                0.5 if not is_evening else 0.35,  # afternoon crowd
            ),
        )
        sigma[:, t] = np.clip(base + RNG.normal(0, 0.05, N_USERS), 0.0, 1.0)

    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=ActivityModel(sigma),
        organizer=Organizer(resources=STAFF_PER_INTERVAL, name="summerfest"),
    )


def main() -> None:
    instance = build_world()
    print(instance.describe())
    k = 30  # the festival hosts 30 of the 60 candidate acts

    print(f"\nScheduling k={k} events, {len(PARTS)} parts/day, "
          f"{N_STAGES} stages, {STAFF_PER_INTERVAL:g} staff per interval\n")

    results = {
        "GRD": GreedyScheduler().solve(instance, k),
        "TOP": TopKScheduler().solve(instance, k),
        "RAND": RandomScheduler(seed=7).solve(instance, k),
    }
    for name, result in results.items():
        print(f"  {name:<5} -> expected total attendance "
              f"{result.utility:8.1f}   ({result.runtime_seconds * 1e3:6.1f} ms)")

    grd = results["GRD"]
    print("\nFestival program (GRD):")
    for interval_index in sorted(grd.schedule.used_intervals()):
        interval = instance.intervals[interval_index]
        names = [
            instance.events[event].display_name
            for event in grd.schedule.events_at(interval_index)
        ]
        print(f"  {interval.display_name:>16}: {', '.join(names)}")


if __name__ == "__main__":
    main()
