"""Capacity planning: how venues and staffing shape achievable attendance.

An organizer deciding how many stages to rent and how much staff to hire
can use the SES machinery *in reverse*: sweep the constraint knobs and
watch the attainable utility.  This example sweeps

* the number of available locations (the paper fixes 25 after measuring
  spatio-temporal conflicts), and
* the per-interval resource capacity theta (the paper fixes 20),

and also demonstrates refinement: polishing GRD's schedule with local
search, and exact optimality gaps on a downsized instance.

Run with::

    python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    ExhaustiveScheduler,
    GreedyScheduler,
    LocalSearchRefiner,
)
from repro.data.meetup import InstanceBuildParams, build_instance
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator

K = 24
SEED = 5


def build(snapshot, n_locations: int, theta: float):
    params = InstanceBuildParams(
        n_candidate_events=2 * K,
        n_intervals=3 * K // 2,
        mean_competing_per_interval=8.1,
        n_locations=n_locations,
        theta=theta,
        xi_range=(1.0, min(theta, 20.0 / 3.0)),
    )
    return build_instance(snapshot, params, seed=SEED)


def main() -> None:
    snapshot = MeetupStyleGenerator(
        EBSNConfig(n_users=600, n_groups=40, n_events=900)
    ).generate(seed=SEED)

    # -- sweep 1: number of venues ----------------------------------------
    print(f"Venue sweep (theta=20, k={K}):")
    print(f"  {'locations':>10} {'GRD utility':>12} {'scheduled':>10}")
    for n_locations in (1, 2, 4, 8, 25):
        instance = build(snapshot, n_locations=n_locations, theta=20.0)
        result = GreedyScheduler().solve(instance, K)
        print(
            f"  {n_locations:>10} {result.utility:>12.2f} "
            f"{result.achieved_k:>7}/{K}"
        )
    print("  (few venues -> location conflicts bind; utility and even |S| drop)\n")

    # -- sweep 2: staffing levels -----------------------------------------
    print(f"Staffing sweep (25 locations, k={K}):")
    print(f"  {'theta':>10} {'GRD utility':>12} {'scheduled':>10}")
    for theta in (4.0, 8.0, 12.0, 20.0, 40.0):
        instance = build(snapshot, n_locations=25, theta=theta)
        result = GreedyScheduler().solve(instance, K)
        print(
            f"  {theta:>10.0f} {result.utility:>12.2f} "
            f"{result.achieved_k:>7}/{K}"
        )
    print("  (tight staffing caps events per interval, forcing spread or drops)\n")

    # -- refinement and optimality gap on a downsized instance -------------
    small_params = InstanceBuildParams(
        n_candidate_events=9,
        n_intervals=4,
        mean_competing_per_interval=4.0,
        n_locations=3,
        theta=8.0,
        xi_range=(1.0, 4.0),
    )
    small = build_instance(snapshot, small_params, seed=SEED)
    k_small = 5
    grd = GreedyScheduler().solve(small, k_small)
    refined = LocalSearchRefiner(seed=1).refine_result(small, grd)
    exact = ExhaustiveScheduler().solve(small, k_small)
    print("Optimality check on a downsized instance (exact search feasible):")
    print(f"  GRD    : {grd.utility:8.3f}")
    print(f"  GRD+LS : {refined.utility:8.3f}")
    print(f"  EXACT  : {exact.utility:8.3f}")
    ratio = grd.utility / exact.utility if exact.utility else 1.0
    print(f"  greedy/optimal ratio: {ratio:.4f}")


if __name__ == "__main__":
    main()
