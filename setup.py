"""Legacy setup shim.

The sandbox ships setuptools 65 without the ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
