"""Abl 7 — empirical validation of the paper's complexity analysis.

Section III derives GRD's cost as ``O(|E||T||U| + k|E||T| + k|E||U|)`` —
in particular *linear in the number of users* at fixed (k, |E|, |T|).
This ablation measures GRD wall-clock at growing populations over
otherwise-identical workloads and asserts sub-quadratic growth (linear up
to cache effects and constant overheads).
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_K = 40
_POPULATIONS = (250, 500, 1000, 2000)
_TIMES: dict[int, float] = {}
_GENERATOR = WorkloadGenerator(root_seed=77)
_INSTANCES: dict[int, object] = {}


def _instance(n_users: int):
    if n_users not in _INSTANCES:
        config = ExperimentConfig(k=_K, n_users=n_users)
        _INSTANCES[n_users] = _GENERATOR.build(config, seed=n_users)
    return _INSTANCES[n_users]


@pytest.mark.benchmark(group="ablation7-scaling")
@pytest.mark.parametrize("n_users", _POPULATIONS)
def test_grd_scaling_in_users(benchmark, n_users: int):
    instance = _instance(n_users)
    solver = GreedyScheduler()

    started = time.perf_counter()
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _TIMES[n_users] = time.perf_counter() - started

    assert result.achieved_k == _K
    benchmark.extra_info["n_users"] = n_users
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation7-scaling")
def test_growth_is_subquadratic(benchmark):
    def check():
        if set(_POPULATIONS) - set(_TIMES):
            pytest.skip("run the population grid first")
        # time must grow with users...
        assert _TIMES[_POPULATIONS[-1]] > _TIMES[_POPULATIONS[0]]
        # ...but an 8x population may cost at most ~24x (linear would be 8x;
        # the slack absorbs constant overheads and cache-tier changes)
        ratio = _TIMES[_POPULATIONS[-1]] / max(_TIMES[_POPULATIONS[0]], 1e-9)
        assert ratio < 3.0 * (
            _POPULATIONS[-1] / _POPULATIONS[0]
        ), f"superlinear blowup: {ratio:.1f}x for 8x users"
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
