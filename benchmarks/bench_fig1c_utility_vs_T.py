"""Fig 1c — total utility versus the number of time intervals |T|.

Fixes k = 100 (the paper default) and sweeps |T| over the paper grid
(k/5 .. 3k).  More intervals mean fewer co-scheduled events per interval
(less cannibalization) and more candidate assignments, so GRD's and TOP's
utilities climb; RAND profits too but less systematically.

Shapes asserted: GRD wins everywhere; GRD and TOP strictly improve from
the smallest to the largest |T|.
"""

from __future__ import annotations

import pytest

from repro.api import solver_registry

from benchmarks.conftest import INTERVAL_GRID, instance_for_intervals

_K = 100
_RESULTS: dict[tuple[str, int], float] = {}


def _method(name: str, seed: int):
    seeded = solver_registry.get(name.lower()).seeded
    return solver_registry.create(name.lower(), seed=seed if seeded else None)


@pytest.mark.benchmark(group="fig1c-utility-vs-T")
@pytest.mark.parametrize("n_intervals", INTERVAL_GRID)
@pytest.mark.parametrize("method", ["GRD", "TOP", "RAND"])
def test_fig1c_point(benchmark, method: str, n_intervals: int):
    instance = instance_for_intervals(n_intervals, k=_K)
    solver = _method(method, n_intervals)
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _RESULTS[(method, n_intervals)] = result.utility
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["n_intervals"] = n_intervals
    benchmark.extra_info["method"] = method


@pytest.mark.benchmark(group="fig1c-utility-vs-T")
def test_fig1c_shape(benchmark):
    def check():
        for n_intervals in INTERVAL_GRID:
            if ("GRD", n_intervals) not in _RESULTS:
                pytest.skip("run the full fig1c group to check shapes")
        for n_intervals in INTERVAL_GRID:
            assert (
                _RESULTS[("GRD", n_intervals)]
                > _RESULTS[("TOP", n_intervals)]
            )
            assert (
                _RESULTS[("GRD", n_intervals)]
                > _RESULTS[("RAND", n_intervals)]
            )
        smallest, largest = INTERVAL_GRID[0], INTERVAL_GRID[-1]
        assert _RESULTS[("GRD", largest)] > _RESULTS[("GRD", smallest)]
        assert _RESULTS[("TOP", largest)] > _RESULTS[("TOP", smallest)]
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
