"""Shared fixtures for the benchmark suite.

Scale knobs (environment variables):

``SES_BENCH_USERS``
    Population size per instance (default 1200).  The paper ran 42,444
    Meetup users on C++; the default keeps the whole suite laptop-sized
    while preserving every qualitative shape.  Set to 42444 for a
    full-scale parity run.
``SES_BENCH_FULL``
    When set (to anything non-empty), use the paper's full grids
    (k in {100..500}, |T| in {k/5..3k}); default grids drop the two most
    expensive points of each sweep.

Instances are materialized once per grid point and cached for the whole
pytest session, so pytest-benchmark timings measure *solving*, never
workload generation.
"""

from __future__ import annotations

import os

import pytest

from repro.core.instance import SESInstance
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

BENCH_USERS = int(os.environ.get("SES_BENCH_USERS", "1200"))
FULL_GRIDS = bool(os.environ.get("SES_BENCH_FULL", ""))

#: Fig 1a/1b x-axis. The paper sweeps k up to 500; the default grid stops
#: at 300 to keep the suite under a few minutes (SES_BENCH_FULL restores it).
K_GRID: tuple[int, ...] = (100, 200, 300, 400, 500) if FULL_GRIDS else (100, 200, 300)

#: Fig 1c/1d x-axis, as |T| values for k = 100 (paper: k/5 .. 3k).
INTERVAL_GRID: tuple[int, ...] = (
    (20, 50, 100, 150, 200, 300) if FULL_GRIDS else (20, 50, 100, 150, 200)
)

_BASE = ExperimentConfig(n_users=BENCH_USERS)
_GENERATOR = WorkloadGenerator(root_seed=2018)  # the paper's year
_CACHE: dict[tuple, SESInstance] = {}


def instance_for_k(k: int) -> SESInstance:
    """Paper-default instance at budget ``k`` (|E| = 2k, |T| = 3k/2)."""
    key = ("k", k)
    if key not in _CACHE:
        _CACHE[key] = _GENERATOR.build(_BASE.with_k(k), seed=k)
    return _CACHE[key]


def instance_for_intervals(n_intervals: int, k: int = 100) -> SESInstance:
    """Instance with pinned |T| at the paper-default k = 100."""
    key = ("T", n_intervals, k)
    if key not in _CACHE:
        config = _BASE.with_k(k).with_intervals(n_intervals)
        _CACHE[key] = _GENERATOR.build(config, seed=10_000 + n_intervals)
    return _CACHE[key]


def instance_for_competing(mean_competing: float, k: int = 60) -> SESInstance:
    """Instance with non-default competing-event density (Abl 3)."""
    key = ("C", mean_competing, k)
    if key not in _CACHE:
        config = ExperimentConfig(
            k=k, n_users=BENCH_USERS, mean_competing=mean_competing
        )
        _CACHE[key] = _GENERATOR.build(config, seed=20_000 + int(mean_competing * 10))
    return _CACHE[key]


@pytest.fixture(scope="session")
def bench_users() -> int:
    return BENCH_USERS
