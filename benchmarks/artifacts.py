"""Machine-readable benchmark artifacts: one writer, one envelope.

Every benchmark that emits evidence for a PR writes it through
:func:`write_artifact`, which wraps the payload in a common envelope —
schema tag, benchmark name, scale/config echo — and serializes it as
deterministic, diff-friendly JSON (sorted keys, 1-space indent, trailing
newline).  The committed ``BENCH_*.json`` files at the repository root
are produced this way, so the perf trajectory of the serving loop is
tracked *in the history itself*: a regression shows up as a diff against
the previous PR's numbers, not as a vague memory of a log line.

CI consumes the same files: the stream benchmark's ``--smoke --json``
run uploads its artifact and the threshold checks read the recorded
plane accounting (see ``bench_stream_policies.py``).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

#: Envelope schema tag; bump when the envelope layout changes.
ARTIFACT_FORMAT = "ses-bench/1"


def artifact_envelope(
    name: str, scale: dict[str, Any], payload: dict[str, Any]
) -> dict[str, Any]:
    """The common envelope around one benchmark's payload.

    ``name`` identifies the producing benchmark, ``scale`` echoes the
    knobs the run used (users, ops, k, engine, seed, ...) so a reader
    never has to guess what a number was measured at, and ``payload``
    is the benchmark-specific body.
    """
    return {
        "format": ARTIFACT_FORMAT,
        "benchmark": name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": dict(scale),
        "results": payload,
    }


def write_artifact(
    path: str | Path,
    name: str,
    scale: dict[str, Any],
    payload: dict[str, Any],
) -> Path:
    """Serialize one benchmark artifact; returns the written path."""
    path = Path(path)
    envelope = artifact_envelope(name, scale, payload)
    path.write_text(
        json.dumps(envelope, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def read_artifact(path: str | Path) -> dict[str, Any]:
    """Load and validate an artifact written by :func:`write_artifact`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"unsupported artifact format {payload.get('format')!r}; "
            f"expected {ARTIFACT_FORMAT!r}"
        )
    return payload
