"""Abl 2 — list-based GRD (Algorithm 1) versus the lazy-heap variant.

Algorithm 1 pays a full scan of the assignment list per pop and rescores
the whole selected interval per pick; the heap variant pops in O(log) and
rescores only entries it actually pops stale.  Both must select
schedules of identical size and utility (the heap's tie-break is pinned
to GRD's flat-index order; at this scale, with hundreds of near-equal
real-valued candidates, BLAS batch-width rounding at the 1-ulp level can
still swap which of two ~equal-gain picks lands first — exact schedule
parity on structural ties is pinned by
``tests/algorithms/test_tiebreak_parity.py``) — this benchmark verifies
that while measuring the constant-factor gap and the difference in
score-update counts.

The agreement check runs through a module-scoped fixture accumulator
(not a module global), and the fixture's *teardown* enforces
completeness: if only one variant ran — whether because
``test_variants_agree`` was deselected (``-k list``) or the other
variant was filtered out — the teardown errors naming the missing
variant.  A partial run can never read as a passing agreement.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler

from benchmarks.conftest import instance_for_k

_K = 100
_VARIANTS = ("list", "heap")


@pytest.fixture(scope="module")
def variant_results():
    """Accumulates each variant's full result for the agreement check.

    The teardown is the loud-failure backstop: a run that recorded some
    variants but not all of them errors here even when the agreement
    test itself was deselected.
    """
    results: dict[str, object] = {}
    yield results
    missing = [v for v in _VARIANTS if v not in results]
    if results and missing:
        raise RuntimeError(
            f"partial ablation run: variant(s) {missing} never ran, so "
            f"list-GRD and heap-GRD were not compared — run the module "
            f"unfiltered"
        )


@pytest.mark.benchmark(group="ablation2-heap")
@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_grd_variant(benchmark, variant: str, variant_results):
    instance = instance_for_k(_K)
    solver = GreedyScheduler() if variant == "list" else LazyGreedyScheduler()
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    variant_results[variant] = result
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["score_updates"] = result.stats.score_updates
    benchmark.extra_info["pops"] = result.stats.pops


@pytest.mark.benchmark(group="ablation2-heap")
def test_variants_agree(benchmark, variant_results):
    def check():
        missing = [v for v in _VARIANTS if v not in variant_results]
        if missing:
            pytest.fail(
                f"variant(s) {missing} did not run — the agreement check "
                f"needs both; run the module unfiltered"
            )
        list_result = variant_results["list"]
        heap_result = variant_results["heap"]
        assert len(heap_result.schedule) == len(list_result.schedule)
        assert heap_result.utility == pytest.approx(
            list_result.utility, rel=1e-9
        )
        assert heap_result.stats.score_updates <= (
            list_result.stats.score_updates
        ), "the lazy heap's whole point is fewer score updates"
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
