"""Abl 2 — list-based GRD (Algorithm 1) versus the lazy-heap variant.

Algorithm 1 pays a full scan of the assignment list per pop and rescores
the whole selected interval per pick; the heap variant pops in O(log) and
rescores only entries it actually pops stale.  Both must select schedules
of identical utility (diminishing returns make lazy revalidation exact) —
this benchmark verifies that while measuring the constant-factor gap and
the difference in score-update counts.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler

from benchmarks.conftest import instance_for_k

_K = 100
_UTILITIES: dict[str, float] = {}


@pytest.mark.benchmark(group="ablation2-heap")
@pytest.mark.parametrize("variant", ["list", "heap"])
def test_grd_variant(benchmark, variant: str):
    instance = instance_for_k(_K)
    solver = GreedyScheduler() if variant == "list" else LazyGreedyScheduler()
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES[variant] = result.utility
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["score_updates"] = result.stats.score_updates
    benchmark.extra_info["pops"] = result.stats.pops


@pytest.mark.benchmark(group="ablation2-heap")
def test_variants_agree(benchmark):
    def check():
        if set(_UTILITIES) != {"list", "heap"}:
            pytest.skip("run both variants first")
        assert _UTILITIES["heap"] == pytest.approx(
            _UTILITIES["list"], rel=1e-9
        )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
