"""Abl 3 — sensitivity to competing-event density.

The paper fixes the mean competing events per interval at the
Meetup-measured 8.1.  This ablation sweeps the density from 0 (monopoly:
the organizer owns the calendar) to 16.2 (doubled competition) and
measures the utility GRD can still extract, timing each solve.  Expected
monotone decrease — competition inflates every Luce denominator.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import GreedyScheduler

from benchmarks.conftest import instance_for_competing

_K = 60
_DENSITIES = (0.0, 4.0, 8.1, 16.2)
_UTILITIES: dict[float, float] = {}


@pytest.mark.benchmark(group="ablation3-competing")
@pytest.mark.parametrize("density", _DENSITIES)
def test_grd_under_competition(benchmark, density: float):
    instance = instance_for_competing(density, k=_K)
    solver = GreedyScheduler()
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES[density] = result.utility
    benchmark.extra_info["mean_competing_per_interval"] = density
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["n_competing_total"] = instance.n_competing


@pytest.mark.benchmark(group="ablation3-competing")
def test_competition_hurts_monotonically(benchmark):
    def check():
        if set(_UTILITIES) != set(_DENSITIES):
            pytest.skip("run the density grid first")
        ordered = [_UTILITIES[d] for d in _DENSITIES]
        assert all(a > b for a, b in zip(ordered, ordered[1:]))
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
