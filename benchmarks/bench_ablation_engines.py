"""Abl 1 — vectorized numpy engine versus the pure-Python reference engine.

DESIGN.md commits to two interchangeable Eq. 1–4 evaluators.  This
benchmark quantifies why the vectorized engine is the default: bulk
scoring of one interval (the inner loop of GRD/TOP) and a full GRD run are
timed under both engines on the *same* instance, with outputs asserted
equal.  The reference engine uses a deliberately reduced instance — it is
the semantic oracle, not a contender.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.core.engine import make_engine
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_K = 10
_GENERATOR = WorkloadGenerator(root_seed=99)
_CONFIG = ExperimentConfig(k=_K, n_users=200)
_INSTANCE = None


def _instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = _GENERATOR.build(_CONFIG)
    return _INSTANCE


@pytest.mark.benchmark(group="ablation1-engines")
@pytest.mark.parametrize("kind", ["vectorized", "reference"])
def test_bulk_interval_scoring(benchmark, kind: str):
    instance = _instance()
    engine = make_engine(instance, kind)
    events = list(range(instance.n_events))

    scores = benchmark(engine.scores_for_interval, 0, events)
    # both engines must produce the same numbers
    oracle = make_engine(instance, "reference").scores_for_interval(0, events)
    np.testing.assert_allclose(scores, oracle, atol=1e-9)
    benchmark.extra_info["engine"] = kind


@pytest.mark.benchmark(group="ablation1-engines")
@pytest.mark.parametrize("kind", ["vectorized", "reference"])
def test_full_grd_run(benchmark, kind: str):
    instance = _instance()
    solver = GreedyScheduler(engine_kind=kind)
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    benchmark.extra_info["engine"] = kind
    benchmark.extra_info["utility"] = result.utility
    # the choice of engine must not affect the outcome
    oracle = GreedyScheduler(engine_kind="vectorized").solve(instance, _K)
    assert result.utility == pytest.approx(oracle.utility, abs=1e-6)
