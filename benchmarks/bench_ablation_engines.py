"""Abl 1 — score-engine ablation: vectorized vs sparse vs the reference oracle.

DESIGN.md commits to interchangeable Eq. 1–4 evaluators.  This benchmark
quantifies the choice three ways:

* bulk scoring of one interval (the inner loop of GRD/TOP) and a full GRD
  run are timed under every engine on the *same* instance, with outputs
  asserted equal.  The reference engine uses a deliberately reduced
  instance — it is the semantic oracle, not a contender.
* a **scale panel** runs the same workload at 10x the suite's default
  population (2,000 users) under the dense pipeline (dense ``mu`` +
  vectorized engine) and the sparse pipeline (CSC ``mu`` + sparse
  engine), asserting identical utilities and *lower peak memory* for
  sparse — the property that unlocks Meetup-scale populations.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.algorithms.greedy import GreedyScheduler
from repro.core.engine import EngineSpec, make_engine
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_K = 10
_USERS = 200
#: The scale panel runs at 10x the default population of this module.
_SCALE_FACTOR = 10
_GENERATOR = WorkloadGenerator(root_seed=99)
_CONFIG = ExperimentConfig(k=_K, n_users=_USERS)
_INSTANCE = None


def _instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = _GENERATOR.build(_CONFIG)
    return _INSTANCE


@pytest.mark.benchmark(group="ablation1-engines")
@pytest.mark.parametrize("kind", ["vectorized", "sparse", "reference"])
def test_bulk_interval_scoring(benchmark, kind: str):
    instance = _instance()
    engine = make_engine(instance, EngineSpec(kind))
    events = list(range(instance.n_events))

    scores = benchmark(engine.scores_for_interval, 0, events)
    # every engine must produce the same numbers
    oracle = make_engine(instance, EngineSpec("reference")).scores_for_interval(0, events)
    np.testing.assert_allclose(scores, oracle, atol=1e-9)
    benchmark.extra_info["engine"] = kind


@pytest.mark.benchmark(group="ablation1-engines")
@pytest.mark.parametrize("kind", ["vectorized", "sparse", "reference"])
def test_full_grd_run(benchmark, kind: str):
    instance = _instance()
    solver = GreedyScheduler(engine=EngineSpec(kind))
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    benchmark.extra_info["engine"] = kind
    benchmark.extra_info["utility"] = result.utility
    # the choice of engine must not affect the outcome
    oracle = GreedyScheduler(engine="vectorized").solve(instance, _K)
    assert result.utility == pytest.approx(oracle.utility, abs=1e-6)


# ----------------------------------------------------------------------
# scale panel: dense vs sparse pipeline at 10x users
# ----------------------------------------------------------------------

#: pipeline name -> engine spec (backend pairing follows the spec)
_PIPELINES = {
    "dense": EngineSpec(kind="vectorized", backend="dense"),
    "sparse": EngineSpec(kind="sparse", backend="sparse"),
}


def _scale_config(backend: str) -> ExperimentConfig:
    return ExperimentConfig(
        k=_K, n_users=_USERS * _SCALE_FACTOR, interest_backend=backend
    )


def _run_scale_pipeline(pipeline: str) -> tuple[float, int]:
    """Build + solve the 10x workload; return (utility, traced peak bytes).

    The EBSN snapshot is generated before tracing starts — it is byte-for-
    byte identical for both pipelines (same root seed, same sizes), so the
    measured peak isolates what actually differs: mu mining, mu storage
    and the engine's scoring temporaries.
    """
    spec = _PIPELINES[pipeline]
    generator = WorkloadGenerator(root_seed=99)
    config = _scale_config(spec.interest_backend)
    generator.snapshot_for(config)  # shared, pre-traced

    tracemalloc.start()
    try:
        instance = generator.build(config, seed=1)
        result = GreedyScheduler(engine=spec).solve(instance, _K)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result.utility, peak


@pytest.mark.benchmark(group="ablation1-engines-scale")
@pytest.mark.parametrize("pipeline", sorted(_PIPELINES))
def test_scale_panel_runtime(benchmark, pipeline: str):
    """Wall-clock of the full 10x-user pipeline (build mu + GRD solve)."""
    spec = _PIPELINES[pipeline]
    generator = WorkloadGenerator(root_seed=99)
    config = _scale_config(spec.interest_backend)
    generator.snapshot_for(config)

    def run():
        instance = generator.build(config, seed=1)
        return GreedyScheduler(engine=spec).solve(instance, _K)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pipeline"] = pipeline
    benchmark.extra_info["n_users"] = config.n_users
    benchmark.extra_info["utility"] = result.utility


def test_scale_panel_sparse_uses_less_memory_than_dense():
    """At 10x users the sparse pipeline must beat dense on peak memory
    while producing the identical schedule utility."""
    dense_utility, dense_peak = _run_scale_pipeline("dense")
    sparse_utility, sparse_peak = _run_scale_pipeline("sparse")

    assert sparse_utility == pytest.approx(dense_utility, abs=1e-9)
    assert sparse_peak < dense_peak, (
        f"sparse pipeline peaked at {sparse_peak / 1e6:.1f} MB, dense at "
        f"{dense_peak / 1e6:.1f} MB — sparse must be lower"
    )
