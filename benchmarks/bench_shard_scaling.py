"""Shard scaling benchmark: user-count x shard-count panel with parity gates.

For each user count the instance is synthesized block-by-block
(:func:`repro.workloads.generator.synthesize_sharded_instance` — the
dense ``n_users x n_events`` matrix never materializes), then filled and
solved through :class:`repro.shard.engine.ShardedEngine` at every shard
count in the panel.  The largest tier stores interest as float32 memmap
blocks, exercising the million-user path end to end: synthesize ->
memmap blocks on disk -> parallel plane fill -> GRD solve.

Always-on gates (a regression fails the run, smoke included):

* **parity** — the filled score plane is *bit-identical* across shard
  counts (same ``block_users`` => same merge order), and every solve
  returns the same schedule and utility as the P=1 baseline;
* **fast path** — one cold fill is exactly one fan-out with every block
  partial merged exactly once (``merged_partials == blocks``), and the
  live-delta refresh phase completes with 0 snapshot freezes.

Wall-clock speedups are reported honestly for whatever hardware runs the
benchmark; single-core machines will see ~1x and that is recorded as-is
(``--min-speedup`` defaults to 0, so CI gates correctness, not cores).

Usage::

    python benchmarks/bench_shard_scaling.py             # full panel, 10^6 top tier
    python benchmarks/bench_shard_scaling.py --smoke     # CI-sized
    python benchmarks/bench_shard_scaling.py --json BENCH_shard.json
    ses-repro shard-bench --smoke                        # CLI passthrough
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.artifacts import write_artifact

from repro.api import solver_registry
from repro.core.engine import EngineSpec
from repro.core.entities import CompetingEvent
from repro.core.live import LiveInstance
from repro.core.scoreplane import ScorePlane
from repro.workloads.generator import synthesize_sharded_instance

LARGE = {
    "user_grid": (50_000, 250_000, 1_000_000),
    "shard_grid": (1, 2, 4, 8),
    "n_events": 64,
    "n_intervals": 12,
    "density": 0.001,
    "k": 12,
    "block_users": None,  # DEFAULT_BLOCK_USERS (16384)
    "memmap_from": 1_000_000,
    "replay_deltas": 6,
}
SMOKE = {
    "user_grid": (5_000, 20_000),
    "shard_grid": (1, 2, 4),
    "n_events": 16,
    "n_intervals": 6,
    "density": 0.01,
    "k": 6,
    "block_users": 2_048,
    "memmap_from": 20_000,
    "replay_deltas": 4,
}

_SEED = 2018


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--users", type=int, nargs="+", default=None, metavar="N",
        help="override the user-count grid",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=None, metavar="P",
        help="override the shard-count grid",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="executor threads per fill (default: one per shard)",
    )
    parser.add_argument("--block-users", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the best fill speedup over P=1 >= this",
    )
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    return parser


def fill_and_solve(
    instance, spec: EngineSpec, k: int
) -> tuple[float, float, np.ndarray, object, dict[str, int]]:
    """One cold plane fill + one warm GRD solve; returns timings, the
    filled matrix, the schedule result and the engine's fan-out stats."""
    engine = spec.build(instance)
    plane = ScorePlane(engine)
    started = time.perf_counter()
    matrix = plane.ensure().copy()
    fill_seconds = time.perf_counter() - started
    # capture the fan-out accounting before the solver issues its own
    # incremental queries — the gate is about the cold fill only
    stats = engine.stats() if hasattr(engine, "stats") else {}
    solver = solver_registry.create("grd")
    started = time.perf_counter()
    result = solver.solve(instance, k, plane=plane)
    solve_seconds = time.perf_counter() - started
    return fill_seconds, solve_seconds, matrix, result, stats


def replay_freezes(instance, spec: EngineSpec, n_deltas: int, seed: int) -> int:
    """Apply a short live-delta stream through a sharded plane; the
    fast-path contract is 0 snapshot freezes on the refresh path."""
    live = LiveInstance(instance)
    plane = ScorePlane(spec.build(live))
    plane.ensure()
    rng = np.random.default_rng(seed)
    for step in range(n_deltas):
        if step % 2 == 0:
            column = rng.uniform(0, 1, live.n_users) * (
                rng.random(live.n_users) < 0.05
            )
            delta = live.add_competing(
                CompetingEvent(
                    index=live.n_competing, interval=step % live.n_intervals
                ),
                column,
            )
        else:
            drift = rng.uniform(0, 1, live.n_users) * (
                rng.random(live.n_users) < 0.05
            )
            delta = live.replace_event_interest(step % live.n_events, drift)
        plane.apply_delta(delta)
        plane.ensure()
    return live.freezes


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["user_grid"] = tuple(args.users)
    if args.shards is not None:
        scale["shard_grid"] = tuple(args.shards)
    if args.block_users is not None:
        scale["block_users"] = args.block_users
    shard_grid = scale["shard_grid"]

    rows: list[dict] = []
    checks: dict[str, bool] = {}
    best_speedup = 0.0
    with tempfile.TemporaryDirectory(prefix="ses-shard-bench-") as tmp:
        for n_users in scale["user_grid"]:
            storage = "memmap32" if n_users >= scale["memmap_from"] else "csc"
            directory = (
                Path(tmp) / f"blocks-{n_users}" if storage == "memmap32" else None
            )
            started = time.perf_counter()
            instance = synthesize_sharded_instance(
                n_users,
                n_events=scale["n_events"],
                n_intervals=scale["n_intervals"],
                density=scale["density"],
                block_users=scale["block_users"],
                storage=storage,
                directory=directory,
                seed=args.seed,
            )
            build_seconds = time.perf_counter() - started
            plan = instance.interest.plan
            print(
                f"users={n_users:>9,}  storage={storage:<8} "
                f"blocks={plan.n_blocks:<3} [built in {build_seconds:.1f}s]"
            )

            baseline = None
            for shards in shard_grid:
                workers = args.workers if args.workers is not None else shards
                spec = EngineSpec(
                    kind="sparse",
                    shards=shards,
                    workers=workers,
                    block_users=plan.block_users,
                )
                fill_s, solve_s, matrix, result, stats = fill_and_solve(
                    instance, spec, scale["k"]
                )
                tag = f"{n_users}/{shards}"
                checks[f"one_fanout[{tag}]"] = stats.get("fanouts") == 1
                checks[f"partials_merged_once[{tag}]"] = (
                    stats.get("merged_partials") == stats.get("blocks")
                )
                if baseline is None:
                    baseline = (matrix, result, fill_s)
                else:
                    checks[f"fill_bitwise[{tag}]"] = np.array_equal(
                        baseline[0], matrix
                    )
                    checks[f"solve_parity[{tag}]"] = (
                        result.utility == baseline[1].utility
                        and list(result.schedule) == list(baseline[1].schedule)
                    )
                speedup = baseline[2] / fill_s if fill_s else float("inf")
                best_speedup = max(best_speedup, speedup)
                rows.append(
                    {
                        "users": n_users,
                        "shards": shards,
                        "workers": workers,
                        "storage": storage,
                        "blocks": plan.n_blocks,
                        "build_seconds": build_seconds,
                        "fill_seconds": fill_s,
                        "solve_seconds": solve_s,
                        "fill_speedup": speedup,
                        "utility": result.utility,
                    }
                )
                print(
                    f"  P={shards:<2} W={workers:<2} fill {fill_s * 1e3:8.1f}ms "
                    f"({speedup:4.2f}x)  solve {solve_s * 1e3:8.1f}ms  "
                    f"utility {result.utility:.4f}"
                )

        # -- live-delta refresh phase: 0 freezes on the hot path ---------
        smallest = scale["user_grid"][0]
        replay_instance = synthesize_sharded_instance(
            smallest,
            n_events=scale["n_events"],
            n_intervals=scale["n_intervals"],
            density=scale["density"],
            block_users=scale["block_users"],
            seed=args.seed + 1,
        )
        freezes = replay_freezes(
            replay_instance,
            EngineSpec(
                kind="sparse",
                shards=shard_grid[-1],
                block_users=replay_instance.interest.plan.block_users,
            ),
            scale["replay_deltas"],
            args.seed + 2,
        )
        checks["zero_hot_path_freezes"] = freezes == 0
        print(
            f"delta replay: {scale['replay_deltas']} deltas, "
            f"{freezes} snapshot freezes"
        )

    if args.min_speedup:
        checks["min_speedup"] = best_speedup >= args.min_speedup
    passed = all(checks.values())
    failed = [name for name, ok in checks.items() if not ok]
    print(
        "checks: "
        + (f"{len(checks)} ok" if passed else "FAIL " + ", ".join(failed))
    )

    if args.json is not None:
        path = write_artifact(
            args.json,
            "bench_shard_scaling",
            dict(
                scale,
                seed=args.seed,
                smoke=args.smoke,
                workers=args.workers,
            ),
            {
                "panel": rows,
                "best_fill_speedup": best_speedup,
                "replay_freezes": freezes,
                "checks": checks,
            },
        )
        print(f"wrote {path}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
