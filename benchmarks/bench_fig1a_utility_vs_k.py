"""Fig 1a — total utility versus the number of scheduled events k.

Regenerates the utility series of the paper's Figure 1a: GRD, TOP and RAND
at k over the paper grid with |E| = 2k, |T| = 3k/2 and all other knobs at
their Section IV.A defaults.  Each benchmark case times one solver at one
grid point; the achieved utility — the actual Fig 1a y-value — is recorded
in ``extra_info`` (``pytest benchmarks/ --benchmark-only`` prints it via
the saved JSON, and EXPERIMENTS.md tabulates it).

Paper shapes asserted here:

* GRD attains the highest utility at every k;
* TOP trails RAND from mid-grid on (TOP "reports considerably low
  utility scores in all cases").
"""

from __future__ import annotations

import pytest

from repro.api import solver_registry

from benchmarks.conftest import K_GRID, instance_for_k

_RESULTS: dict[tuple[str, int], float] = {}


def _method(name: str, k: int):
    seeded = solver_registry.get(name.lower()).seeded
    return solver_registry.create(name.lower(), seed=k if seeded else None)


@pytest.mark.benchmark(group="fig1a-utility-vs-k")
@pytest.mark.parametrize("k", K_GRID)
@pytest.mark.parametrize("method", ["GRD", "TOP", "RAND"])
def test_fig1a_point(benchmark, method: str, k: int):
    instance = instance_for_k(k)
    solver = _method(method, k)
    result = benchmark.pedantic(
        solver.solve, args=(instance, k), rounds=1, iterations=1
    )
    assert result.achieved_k == k
    _RESULTS[(method, k)] = result.utility
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["k"] = k
    benchmark.extra_info["method"] = method


@pytest.mark.benchmark(group="fig1a-utility-vs-k")
def test_fig1a_shape(benchmark):
    """Assert the figure's qualitative shape over the recorded series."""

    def check():
        for k in K_GRID:
            if (("GRD", k)) not in _RESULTS:
                pytest.skip("run the full fig1a group to check shapes")
        for k in K_GRID:
            assert _RESULTS[("GRD", k)] > _RESULTS[("TOP", k)]
            assert _RESULTS[("GRD", k)] > _RESULTS[("RAND", k)]
        # TOP's self-cannibalization: RAND passes it by mid-grid
        for k in K_GRID[1:]:
            assert _RESULTS[("RAND", k)] > _RESULTS[("TOP", k)]
        # GRD's lead over RAND grows with k
        first, last = K_GRID[0], K_GRID[-1]
        early_gap = _RESULTS[("GRD", first)] - _RESULTS[("RAND", first)]
        late_gap = _RESULTS[("GRD", last)] - _RESULTS[("RAND", last)]
        assert late_gap > early_gap
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
