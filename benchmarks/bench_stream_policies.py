"""Streaming-policy benchmark: maintenance cost under a live change stream.

Replays one seeded change trace (arrivals, cancellations, rivals, drift,
budget raises) against every maintenance policy and reports what a
serving operator cares about: per-op latency (mean / p95 / max), final
utility, and the number of full re-solves each policy paid for.

The headline comparison is **incremental maintenance vs. full re-solve
per change op**: the ``periodic-rebuild`` policy with ``rebuild_every=1``
is exactly the "re-solve after every change" baseline, while the
``incremental`` policy absorbs each op with O(delta) LiveInstance
mutations, engine ``apply_delta`` updates and row/column-local score
refreshes.  At the default large setting — the paper's full 42,444-user
Meetup population on the sparse interest backend — the incremental
policy's mean per-op latency beats the rebuild baseline by well over an
order of magnitude at equal final utility (both are GRD-quality).

Since the ScorePlane PR the rebuild policy itself has a measured A/B:
``periodic-rebuild`` runs *warm* (batch re-solves through the live
scheduler's base plane, re-scoring only rows dirtied since the previous
re-solve, zero snapshot freezes) and the benchmark additionally replays
the same trace with ``warm=False`` — the legacy freeze-plus-cold-fill
path — so the warm speedup is measured, not asserted.  Two checks run on
every invocation (CI exercises them via ``--smoke``):

* **fast path** — the pure incremental policy must freeze 0 snapshots
  (:attr:`repro.core.live.LiveInstance.freezes`), and since the warm
  rebuild PR the periodic/hybrid policies must too;
* **warm scoring** — across the warm periodic replay, every re-solve
  after the first must re-score strictly fewer cells than the cold fill
  it replaced (the plane's ``cells_refreshed`` accounting).

A per-kind *structural latency* panel breaks each policy's cost down by
op kind (arrive / cancel / rival / drift / budget).

Usage::

    python benchmarks/bench_stream_policies.py            # large: Meetup scale
    python benchmarks/bench_stream_policies.py --smoke    # seconds-scale CI run
    python benchmarks/bench_stream_policies.py --users 8000 --ops 20
    python benchmarks/bench_stream_policies.py --json BENCH_stream.json

``--json`` writes the machine-readable artifact (per-op latencies,
utility trajectories, rebuild/freeze counts, plane accounting, warm-vs-
cold speedup) through ``benchmarks/artifacts.py``; the committed
``BENCH_stream.json`` tracks these numbers across PRs.

Unlike the pytest-benchmark suites next door, this is a plain script so
CI can smoke it exactly like the examples (no extra deps).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.artifacts import write_artifact

from repro.core.engine import EngineSpec
from repro.stream import POLICY_NAMES, StreamDriver, StreamResult, make_policy
from repro.workloads.config import MEETUP_USERS, ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

#: The large setting: full Meetup population, sparse pipeline.
LARGE = {"users": MEETUP_USERS, "k": 60, "ops": 10}
#: The CI smoke setting: seconds-scale, same code path.
SMOKE = {"users": 250, "k": 10, "ops": 8}

_SEED = 2018  # the paper's year, as everywhere in the benchmark suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-scale run for CI (seconds, not minutes)",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine",
        choices=("sparse", "vectorized"),
        default="sparse",
        help="engine/backend pipeline (default: the sparse stack)",
    )
    parser.add_argument(
        "--oracle-every",
        type=int,
        default=None,
        help="sample regret vs a fresh GRD solve every N ops",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the machine-readable artifact (BENCH_stream.json)",
    )
    return parser


def run_policies(
    args: argparse.Namespace,
) -> tuple[list[StreamResult], dict]:
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k
    if args.ops is not None:
        scale["ops"] = args.ops

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["ops"]), root_seed=args.seed
    ).generate()
    print(trace.describe())

    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    print(
        f"{instance.describe()} "
        f"[built in {time.perf_counter() - started:.1f}s, "
        f"mu nnz={instance.interest.nnz_candidate()}]"
    )

    results = []
    walls = {}
    # the three maintained policies, the warm heap-GRD rebuild variant
    # (same utility as GRD, lazy rescoring instead of full row sweeps),
    # and the legacy cold-rebuild baseline both warm paths are measured
    # against
    runs = [
        (name, {"rebuild_every": 1} if name == "periodic-rebuild" else {})
        for name in POLICY_NAMES
    ]
    runs.append(
        ("periodic-rebuild", {"rebuild_every": 1, "solver": "grd-heap"})
    )
    runs.append(("periodic-rebuild", {"rebuild_every": 1, "warm": False}))
    for name, params in runs:
        driver = StreamDriver(
            instance,
            policy=make_policy(name, **params),
            engine=spec,
            oracle_every=args.oracle_every,
        )
        started = time.perf_counter()
        result = driver.run(trace)
        walls[result.policy] = time.perf_counter() - started
        print(
            f"  {result.summary()} "
            f"[replay wall {walls[result.policy]:.1f}s]"
        )
        results.append(result)
    return results, scale, walls


def latency_by_kind(result: StreamResult) -> dict[str, list[float]]:
    """Per-op-kind latency samples (op labels are ``kind[:target]``)."""
    samples: dict[str, list[float]] = {}
    for record in result.records:
        samples.setdefault(record.label.split(":")[0], []).append(
            record.latency_seconds
        )
    return samples


def report(results: Sequence[StreamResult]) -> None:
    print()
    header = (
        f"{'policy':<28} {'final utility':>14} {'mean op':>10} "
        f"{'p95 op':>10} {'max op':>10} {'rebuilds':>9} {'freezes':>8}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.policy:<28} {result.final_utility:>14.4f} "
            f"{result.mean_latency() * 1e3:>8.1f}ms "
            f"{result.percentile_latency(0.95) * 1e3:>8.1f}ms "
            f"{result.max_latency() * 1e3:>8.1f}ms "
            f"{result.rebuilds:>9} {result.freezes:>8}"
        )

    kinds = sorted(
        {kind for result in results for kind in latency_by_kind(result)}
    )
    print("\nstructural latency by op kind (mean ms):")
    header = f"{'policy':<28}" + "".join(f" {kind:>9}" for kind in kinds)
    print(header)
    print("-" * len(header))
    for result in results:
        samples = latency_by_kind(result)
        cells = []
        for kind in kinds:
            kind_samples = samples.get(kind)
            cells.append(
                f" {sum(kind_samples) / len(kind_samples) * 1e3:>7.1f}ms"
                if kind_samples
                else f" {'-':>9}"
            )
        print(f"{result.policy:<28}" + "".join(cells))

    incremental = find_policy(results, "incremental")
    rebuild = find_policy(results, "periodic-rebuild")
    heap_rebuild = find_policy(results, "periodic-rebuild", solver="grd-heap")
    cold = find_policy(results, "periodic-rebuild", cold=True)
    if incremental and rebuild and incremental.mean_latency() > 0:
        speedup = rebuild.mean_latency() / incremental.mean_latency()
        print(
            f"\nincremental maintenance vs warm re-solve per change op: "
            f"{incremental.mean_latency() * 1e3:.1f}ms vs "
            f"{rebuild.mean_latency() * 1e3:.1f}ms per op "
            f"-> {speedup:.1f}x faster"
        )
    if rebuild and cold and rebuild.mean_latency() > 0:
        speedup = cold.mean_latency() / rebuild.mean_latency()
        print(
            f"warm vs cold periodic rebuild per change op (GRD): "
            f"{rebuild.mean_latency() * 1e3:.1f}ms vs "
            f"{cold.mean_latency() * 1e3:.1f}ms "
            f"-> {speedup:.1f}x faster (ScorePlane warm re-solves)"
        )
    if heap_rebuild and cold and heap_rebuild.mean_latency() > 0:
        speedup = cold.mean_latency() / heap_rebuild.mean_latency()
        print(
            f"warm heap-GRD rebuild vs cold GRD rebuild per change op: "
            f"{heap_rebuild.mean_latency() * 1e3:.1f}ms vs "
            f"{cold.mean_latency() * 1e3:.1f}ms "
            f"-> {speedup:.1f}x faster (same utility; lazy rescoring)"
        )


def find_policy(
    results: Sequence[StreamResult],
    name: str,
    cold: bool = False,
    solver: str | None = None,
) -> StreamResult | None:
    for result in results:
        if result.policy.split("(")[0] != name:
            continue
        if (", cold" in result.policy) != cold:
            continue
        if solver is not None and f" {solver}" not in result.policy:
            continue
        if solver is None and "grd-heap" in result.policy:
            continue
        return result
    return None


def check_fast_path(results: Sequence[StreamResult]) -> int:
    """Assert the O(delta) structural fast path was actually taken.

    Runs on every invocation (CI exercises it via ``--smoke``).  Since
    batch re-solves and oracle regret samples run warm over the live
    view, *no* warm policy may materialize a single O(instance)
    snapshot; only the legacy ``warm=False`` baseline is allowed its
    one freeze per re-solve.  A regression that silently reroutes change
    ops (or re-solves) through full-instance rebuilds shows up here.
    """
    failures = []
    for result in results:
        cold = ", cold" in result.policy
        if cold:
            if result.freezes > result.rebuilds:
                failures.append(
                    f"cold baseline froze {result.freezes} snapshot(s) for "
                    f"{result.rebuilds} re-solve(s); expected at most one "
                    f"each"
                )
        elif result.freezes:
            failures.append(
                f"{result.policy} froze {result.freezes} snapshot(s); warm "
                f"policies must never materialize one"
            )
    for failure in failures:
        print(f"FAST-PATH CHECK FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("fast-path check: ok (all warm replays froze 0 snapshots)")
    return len(failures)


def check_warm_scoring(results: Sequence[StreamResult]) -> int:
    """Assert warm re-solves re-score strictly less than cold fills.

    The warm periodic replay pays one cold fill up front (plus, on the
    vectorized engine, the odd geometry refill when the live event
    count crosses a power of two); every remaining re-solve is warm,
    and the plane's accounting must show those warm re-solves re-scored
    strictly fewer cells *in total* than the cold fills they replaced —
    the ScorePlane acceptance bar.
    """
    result = find_policy(results, "periodic-rebuild")
    failures = []
    if result is None or result.base_plane_stats is None:
        failures.append("warm periodic replay reported no plane accounting")
    else:
        stats = result.base_plane_stats
        warm_solves = result.rebuilds - stats["fills"]
        if not 1 <= stats["fills"] <= max(1, result.rebuilds // 2):
            failures.append(
                f"measured {stats['fills']} cold fill(s) across "
                f"{result.rebuilds} re-solve(s); warm re-solving is not "
                f"actually happening"
            )
        cold_cells = stats["cells_filled"] // max(1, stats["fills"])
        if warm_solves > 0 and not (
            stats["cells_refreshed"] < warm_solves * cold_cells
        ):
            failures.append(
                f"warm re-solves re-scored {stats['cells_refreshed']} cells "
                f"over {warm_solves} solve(s) — not fewer than the "
                f"{warm_solves * cold_cells} a cold path would sweep"
            )
    for failure in failures:
        print(f"WARM-SCORING CHECK FAILED: {failure}", file=sys.stderr)
    if not failures:
        stats = result.base_plane_stats
        print(
            f"warm-scoring check: ok ({stats['cells_refreshed']} cells "
            f"re-scored across {result.rebuilds - stats['fills']} warm "
            f"re-solve(s) vs {stats['cells_filled'] // stats['fills']} per "
            f"cold fill)"
        )
    return len(failures)


def artifact_payload(
    results: Sequence[StreamResult], walls: dict[str, float]
) -> dict:
    payload = {"policies": [result.as_dict() for result in results]}
    for record, wall in walls.items():
        for entry in payload["policies"]:
            if entry["policy"] == record:
                entry["replay_wall_seconds"] = wall
    warm = find_policy(results, "periodic-rebuild")
    heap = find_policy(results, "periodic-rebuild", solver="grd-heap")
    cold = find_policy(results, "periodic-rebuild", cold=True)
    incremental = find_policy(results, "incremental")
    if warm and cold and warm.mean_latency() > 0:
        payload["warm_vs_cold_rebuild_speedup"] = (
            cold.mean_latency() / warm.mean_latency()
        )
    if heap and cold and heap.mean_latency() > 0:
        payload["warm_heap_vs_cold_rebuild_speedup"] = (
            cold.mean_latency() / heap.mean_latency()
        )
    if warm and incremental and incremental.mean_latency() > 0:
        payload["rebuild_vs_incremental_ratio"] = (
            warm.mean_latency() / incremental.mean_latency()
        )
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    results, scale, walls = run_policies(args)
    report(results)
    failures = check_fast_path(results)
    failures += check_warm_scoring(results)
    if args.json is not None:
        scale_record = dict(
            scale, engine=args.engine, seed=args.seed, smoke=args.smoke
        )
        path = write_artifact(
            args.json,
            "bench_stream_policies",
            scale_record,
            artifact_payload(results, walls),
        )
        print(f"wrote {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
