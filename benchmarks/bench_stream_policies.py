"""Streaming-policy benchmark: maintenance cost under a live change stream.

Replays one seeded change trace (arrivals, cancellations, rivals, drift,
budget raises) against every maintenance policy and reports what a
serving operator cares about: per-op latency (mean / p95 / max), final
utility, and the number of full re-solves each policy paid for.

The headline comparison is **incremental maintenance vs. full re-solve
per change op**: the ``periodic-rebuild`` policy with ``rebuild_every=1``
is exactly the "re-solve after every change" baseline, while the
``incremental`` policy absorbs each op with row/column-local score
refreshes.  At the default large setting — the paper's full 42,444-user
Meetup population on the sparse interest backend — the incremental
policy's mean per-op latency beats the rebuild baseline by well over an
order of magnitude at equal final utility (both are GRD-quality).

Usage::

    python benchmarks/bench_stream_policies.py            # large: Meetup scale
    python benchmarks/bench_stream_policies.py --smoke    # seconds-scale CI run
    python benchmarks/bench_stream_policies.py --users 8000 --ops 20

Unlike the pytest-benchmark suites next door, this is a plain script so
CI can smoke it exactly like the examples (no extra deps).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.core.engine import EngineSpec
from repro.stream import POLICY_NAMES, StreamDriver, StreamResult, make_policy
from repro.workloads.config import MEETUP_USERS, ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

#: The large setting: full Meetup population, sparse pipeline.
LARGE = {"users": MEETUP_USERS, "k": 60, "ops": 10}
#: The CI smoke setting: seconds-scale, same code path.
SMOKE = {"users": 250, "k": 10, "ops": 8}

_SEED = 2018  # the paper's year, as everywhere in the benchmark suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-scale run for CI (seconds, not minutes)",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine",
        choices=("sparse", "vectorized"),
        default="sparse",
        help="engine/backend pipeline (default: the sparse stack)",
    )
    parser.add_argument(
        "--oracle-every",
        type=int,
        default=None,
        help="sample regret vs a fresh GRD solve every N ops",
    )
    return parser


def run_policies(
    args: argparse.Namespace,
) -> tuple[list[StreamResult], dict]:
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k
    if args.ops is not None:
        scale["ops"] = args.ops

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["ops"]), root_seed=args.seed
    ).generate()
    print(trace.describe())

    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    print(
        f"{instance.describe()} "
        f"[built in {time.perf_counter() - started:.1f}s, "
        f"mu nnz={instance.interest.nnz_candidate()}]"
    )

    results = []
    for name in POLICY_NAMES:
        params = {"rebuild_every": 1} if name == "periodic-rebuild" else {}
        driver = StreamDriver(
            instance,
            policy=make_policy(name, **params),
            engine=spec,
            oracle_every=args.oracle_every,
        )
        started = time.perf_counter()
        result = driver.run(trace)
        print(
            f"  {result.summary()} "
            f"[replay wall {time.perf_counter() - started:.1f}s]"
        )
        results.append(result)
    return results, scale


def report(results: Sequence[StreamResult]) -> None:
    print()
    header = (
        f"{'policy':<28} {'final utility':>14} {'mean op':>10} "
        f"{'p95 op':>10} {'max op':>10} {'rebuilds':>9}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.policy:<28} {result.final_utility:>14.4f} "
            f"{result.mean_latency() * 1e3:>8.1f}ms "
            f"{result.percentile_latency(0.95) * 1e3:>8.1f}ms "
            f"{result.max_latency() * 1e3:>8.1f}ms "
            f"{result.rebuilds:>9}"
        )

    by_name = {result.policy.split("(")[0]: result for result in results}
    incremental = by_name.get("incremental")
    rebuild = by_name.get("periodic-rebuild")
    if incremental and rebuild and incremental.mean_latency() > 0:
        speedup = rebuild.mean_latency() / incremental.mean_latency()
        print(
            f"\nincremental maintenance vs full re-solve per change op: "
            f"{incremental.mean_latency() * 1e3:.1f}ms vs "
            f"{rebuild.mean_latency() * 1e3:.1f}ms per op "
            f"-> {speedup:.1f}x faster"
        )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    results, _ = run_policies(args)
    report(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
