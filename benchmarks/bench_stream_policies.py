"""Streaming-policy benchmark: maintenance cost under a live change stream.

Replays one seeded change trace (arrivals, cancellations, rivals, drift,
budget raises) against every maintenance policy and reports what a
serving operator cares about: per-op latency (mean / p95 / max), final
utility, and the number of full re-solves each policy paid for.

The headline comparison is **incremental maintenance vs. full re-solve
per change op**: the ``periodic-rebuild`` policy with ``rebuild_every=1``
is exactly the "re-solve after every change" baseline, while the
``incremental`` policy absorbs each op with O(delta) LiveInstance
mutations, engine ``apply_delta`` updates and row/column-local score
refreshes.  At the default large setting — the paper's full 42,444-user
Meetup population on the sparse interest backend — the incremental
policy's mean per-op latency beats the rebuild baseline by well over an
order of magnitude at equal final utility (both are GRD-quality).

A per-kind *structural latency* panel breaks each policy's cost down by
op kind (arrive / cancel / rival / drift / budget), and the ``freezes``
column counts O(instance) snapshot materializations
(:attr:`repro.core.live.LiveInstance.freezes`): the pure incremental
fast path must show 0 — ``--smoke`` asserts it, so CI catches any silent
fallback to full-instance rebuilds.

Usage::

    python benchmarks/bench_stream_policies.py            # large: Meetup scale
    python benchmarks/bench_stream_policies.py --smoke    # seconds-scale CI run
    python benchmarks/bench_stream_policies.py --users 8000 --ops 20

Unlike the pytest-benchmark suites next door, this is a plain script so
CI can smoke it exactly like the examples (no extra deps).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.core.engine import EngineSpec
from repro.stream import POLICY_NAMES, StreamDriver, StreamResult, make_policy
from repro.workloads.config import MEETUP_USERS, ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

#: The large setting: full Meetup population, sparse pipeline.
LARGE = {"users": MEETUP_USERS, "k": 60, "ops": 10}
#: The CI smoke setting: seconds-scale, same code path.
SMOKE = {"users": 250, "k": 10, "ops": 8}

_SEED = 2018  # the paper's year, as everywhere in the benchmark suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-scale run for CI (seconds, not minutes)",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine",
        choices=("sparse", "vectorized"),
        default="sparse",
        help="engine/backend pipeline (default: the sparse stack)",
    )
    parser.add_argument(
        "--oracle-every",
        type=int,
        default=None,
        help="sample regret vs a fresh GRD solve every N ops",
    )
    return parser


def run_policies(
    args: argparse.Namespace,
) -> tuple[list[StreamResult], dict]:
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k
    if args.ops is not None:
        scale["ops"] = args.ops

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["ops"]), root_seed=args.seed
    ).generate()
    print(trace.describe())

    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    print(
        f"{instance.describe()} "
        f"[built in {time.perf_counter() - started:.1f}s, "
        f"mu nnz={instance.interest.nnz_candidate()}]"
    )

    results = []
    for name in POLICY_NAMES:
        params = {"rebuild_every": 1} if name == "periodic-rebuild" else {}
        driver = StreamDriver(
            instance,
            policy=make_policy(name, **params),
            engine=spec,
            oracle_every=args.oracle_every,
        )
        started = time.perf_counter()
        result = driver.run(trace)
        print(
            f"  {result.summary()} "
            f"[replay wall {time.perf_counter() - started:.1f}s]"
        )
        results.append(result)
    return results, scale


def latency_by_kind(result: StreamResult) -> dict[str, list[float]]:
    """Per-op-kind latency samples (op labels are ``kind[:target]``)."""
    samples: dict[str, list[float]] = {}
    for record in result.records:
        samples.setdefault(record.label.split(":")[0], []).append(
            record.latency_seconds
        )
    return samples


def report(results: Sequence[StreamResult]) -> None:
    print()
    header = (
        f"{'policy':<28} {'final utility':>14} {'mean op':>10} "
        f"{'p95 op':>10} {'max op':>10} {'rebuilds':>9} {'freezes':>8}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.policy:<28} {result.final_utility:>14.4f} "
            f"{result.mean_latency() * 1e3:>8.1f}ms "
            f"{result.percentile_latency(0.95) * 1e3:>8.1f}ms "
            f"{result.max_latency() * 1e3:>8.1f}ms "
            f"{result.rebuilds:>9} {result.freezes:>8}"
        )

    kinds = sorted(
        {kind for result in results for kind in latency_by_kind(result)}
    )
    print("\nstructural latency by op kind (mean ms):")
    header = f"{'policy':<28}" + "".join(f" {kind:>9}" for kind in kinds)
    print(header)
    print("-" * len(header))
    for result in results:
        samples = latency_by_kind(result)
        cells = []
        for kind in kinds:
            kind_samples = samples.get(kind)
            cells.append(
                f" {sum(kind_samples) / len(kind_samples) * 1e3:>7.1f}ms"
                if kind_samples
                else f" {'-':>9}"
            )
        print(f"{result.policy:<28}" + "".join(cells))

    by_name = {result.policy.split("(")[0]: result for result in results}
    incremental = by_name.get("incremental")
    rebuild = by_name.get("periodic-rebuild")
    if incremental and rebuild and incremental.mean_latency() > 0:
        speedup = rebuild.mean_latency() / incremental.mean_latency()
        print(
            f"\nincremental maintenance vs full re-solve per change op: "
            f"{incremental.mean_latency() * 1e3:.1f}ms vs "
            f"{rebuild.mean_latency() * 1e3:.1f}ms per op "
            f"-> {speedup:.1f}x faster"
        )


def check_fast_path(
    results: Sequence[StreamResult], oracle_samples: int = 0
) -> int:
    """Assert the O(delta) structural fast path was actually taken.

    Runs on every invocation (CI exercises it via ``--smoke``).  The
    pure incremental policy must absorb every op without a single
    O(instance) snapshot materialization beyond what opt-in oracle
    regret sampling legitimately pays (one freeze per sample); the
    periodic policy must freeze at most once per batch re-solve plus
    those samples.  A regression that silently reroutes change ops
    through full-instance rebuilds shows up here.
    """
    failures = []
    for result in results:
        name = result.policy.split("(")[0]
        if name == "incremental" and result.freezes > oracle_samples:
            failures.append(
                f"incremental policy froze {result.freezes} snapshot(s) "
                f"for {oracle_samples} oracle sample(s); the structural "
                f"fast path must not rebuild the instance"
            )
        if name == "periodic-rebuild" and (
            result.freezes > result.rebuilds + oracle_samples
        ):
            # at most one freeze per re-solve / oracle sample: a re-solve
            # preceded only by non-structural ops (budget raises) even
            # reuses the cached snapshot
            failures.append(
                f"periodic-rebuild froze {result.freezes} snapshot(s) for "
                f"{result.rebuilds} re-solve(s) and {oracle_samples} "
                f"oracle sample(s); expected at most one each"
            )
    for failure in failures:
        print(f"FAST-PATH CHECK FAILED: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"fast-path check: ok (incremental replay froze "
            f"{oracle_samples} snapshot(s), all accounted to oracle "
            f"sampling)"
            if oracle_samples
            else "fast-path check: ok (incremental replay froze 0 snapshots)"
        )
    return len(failures)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    results, scale = run_policies(args)
    report(results)
    oracle_samples = (
        scale["ops"] // args.oracle_every if args.oracle_every else 0
    )
    if check_fast_path(results, oracle_samples):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
