"""Concurrent serving benchmark: warm PlanePool vs cold per-request solves.

N client threads hammer one :class:`repro.serve.ServingSession` with a
pre-sampled workload (see :mod:`repro.serve.workload` — randomness is
bound to items, not workers, so a fixed seed gives the same response
fingerprints regardless of thread interleaving).  Three phases:

* **solve throughput** — the acceptance metric: the same solve-only
  request list served warm (pool of forked replicas) and cold (solver +
  engine built per request), at the same client count.  Reports
  solves-per-second both ways, the speedup, and p50/p95/p99 latency;
* **mixed workload** — solve / what-if / stream items interleaved, for
  latency percentiles per kind and the warm-vs-cold parity check
  (fingerprints must match bit for bit);
* **mutation churn** — writer commits (rival announcements, interest
  drift) between read batches: generations bump, parked replicas
  invalidate, re-forks stay O(cells) warm.

Always-on fast-path checks (a regression fails the run, smoke included):
replica forks must be O(cells) copies — aggregate replica
``cells_filled`` stays 0; the workload must produce at least one pool
hit; and every phase's fingerprints must equal the cold baseline's.

Usage::

    python benchmarks/bench_serving.py                  # 20k users, sparse
    python benchmarks/bench_serving.py --smoke          # CI-sized
    python benchmarks/bench_serving.py --json BENCH_serving.json

The full-scale ``--json`` artifact is committed as ``BENCH_serving.json``
— the evidence for the ISSUE's ">=3x solves-per-second at >=8 concurrent
clients" acceptance bar.
"""

from __future__ import annotations

import argparse
import math
import queue
import sys
import threading
import time
from collections.abc import Callable, Sequence
from pathlib import Path

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.artifacts import write_artifact

from repro.core.engine import EngineSpec
from repro.serve import ServingSession, WorkItem, make_workload, run_item
from repro.serve.workload import run_item_cold
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

LARGE = {
    "users": 20_000,
    "k": 60,
    "solve_requests": 40,
    "mixed_requests": 12,
    "mutations": 3,
    "post_requests": 6,
    "trace_ops": 6,
}
SMOKE = {
    "users": 250,
    "k": 10,
    "solve_requests": 12,
    "mixed_requests": 8,
    "mutations": 2,
    "post_requests": 4,
    "trace_ops": 4,
}

_SEED = 2018


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine", choices=("sparse", "vectorized"), default="sparse"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless warm solves/sec >= this multiple of cold",
    )
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    return parser


def run_concurrent(
    items: Sequence[WorkItem],
    clients: int,
    execute: Callable[[WorkItem], tuple],
) -> tuple[float, list[float], list[tuple]]:
    """Drain ``items`` with ``clients`` worker threads; returns
    (wall seconds, per-item latencies, per-item fingerprints), both
    indexed by item position so results are interleaving-independent."""
    pending: queue.Queue[WorkItem] = queue.Queue()
    for item in items:
        pending.put(item)
    latencies: list[float] = [0.0] * len(items)
    fingerprints: list[tuple] = [()] * len(items)
    errors: list[BaseException] = []

    def worker() -> None:
        while True:
            try:
                item = pending.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            try:
                fingerprints[item.index] = execute(item)
            except BaseException as exc:  # surface, don't swallow
                errors.append(exc)
                return
            latencies[item.index] = time.perf_counter() - started

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, latencies, fingerprints


def percentiles(latencies: Sequence[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    def at(q: float) -> float:
        return ordered[min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))]
    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def phase_row(
    name: str, n_items: int, wall: float, latencies: Sequence[float]
) -> dict:
    row = {
        "phase": name,
        "items": n_items,
        "wall_seconds": wall,
        "items_per_second": n_items / wall if wall else None,
        **{f"latency_{k}": v for k, v in percentiles(latencies).items()},
    }
    print(
        f"  {name:<18} {n_items:3d} items in {wall:7.2f}s  "
        f"({row['items_per_second']:6.2f}/s)  "
        f"p50 {row['latency_p50'] * 1e3:7.1f}ms  "
        f"p95 {row['latency_p95'] * 1e3:7.1f}ms  "
        f"p99 {row['latency_p99'] * 1e3:7.1f}ms"
    )
    return row


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["trace_ops"]), root_seed=args.seed
    ).generate()
    print(
        f"{instance.describe()} [built in {time.perf_counter() - started:.1f}s]"
        f" | {args.clients} clients"
    )

    serving = ServingSession(instance, default_engine=spec)
    checks: dict[str, bool] = {}

    # -- phase 1: solve throughput, warm vs cold -------------------------
    solve_items = make_workload(
        scale["solve_requests"], scale["k"], args.seed, engine=spec
    )
    print("solve throughput (same requests, same client count):")
    cold_wall, cold_lat, cold_fps = run_concurrent(
        solve_items, args.clients,
        lambda item: run_item_cold(instance, item, default_engine=spec),
    )
    cold_row = phase_row("cold per-request", len(solve_items), cold_wall, cold_lat)
    warm_wall, warm_lat, warm_fps = run_concurrent(
        solve_items, args.clients, lambda item: run_item(serving, item)
    )
    warm_row = phase_row("warm pool", len(solve_items), warm_wall, warm_lat)
    speedup = cold_wall / warm_wall if warm_wall else float("inf")
    checks["solve_parity"] = warm_fps == cold_fps
    print(
        f"  -> {speedup:.2f}x solves-per-second "
        f"({'bit-identical' if checks['solve_parity'] else 'PARITY FAILURE'})"
    )

    # -- phase 2: mixed workload (solve / what-if / stream) --------------
    mixed_items = make_workload(
        scale["mixed_requests"],
        scale["k"],
        args.seed + 1,
        engine=spec,
        n_competing=instance.n_competing,
        whatif_every=5,
        trace=trace,
        stream_every=7,
    )
    print("mixed workload (solve / what-if / stream):")
    mixed_wall, mixed_lat, mixed_fps = run_concurrent(
        mixed_items, args.clients, lambda item: run_item(serving, item)
    )
    mixed_row = phase_row("warm mixed", len(mixed_items), mixed_wall, mixed_lat)
    mixed_cold_wall, mixed_cold_lat, mixed_cold_fps = run_concurrent(
        mixed_items, args.clients,
        lambda item: run_item_cold(instance, item, default_engine=spec),
    )
    mixed_cold_row = phase_row(
        "cold mixed", len(mixed_items), mixed_cold_wall, mixed_cold_lat
    )
    checks["mixed_parity"] = mixed_fps == mixed_cold_fps
    mixed_row["kinds"] = {
        kind: sum(1 for item in mixed_items if item.kind == kind)
        for kind in ("solve", "what-if", "stream")
    }

    # -- phase 3: mutation churn -----------------------------------------
    factory = SeedSequenceFactory(args.seed + 2)
    mutation_rng = factory.spawn()
    for _ in range(scale["mutations"]):
        if mutation_rng.random() < 0.5:
            serving.add_competing(
                int(mutation_rng.integers(instance.n_intervals)),
                mutation_rng.random(instance.n_users),
            )
        else:
            serving.update_event_interest(
                int(mutation_rng.integers(instance.n_events)),
                mutation_rng.random(instance.n_users),
            )
    post_items = make_workload(
        scale["post_requests"], scale["k"], args.seed + 3, engine=spec
    )
    print(f"after {scale['mutations']} writer commit(s):")
    post_wall, post_lat, post_fps = run_concurrent(
        post_items, args.clients, lambda item: run_item(serving, item)
    )
    post_row = phase_row("warm re-forked", len(post_items), post_wall, post_lat)
    version_instance = serving.version_instance()
    _, _, post_cold_fps = run_concurrent(
        post_items, args.clients,
        lambda item: run_item_cold(
            version_instance, item, default_engine=spec
        ),
    )
    checks["post_mutation_parity"] = post_fps == post_cold_fps

    # -- fast-path checks -------------------------------------------------
    stats = serving.pool_stats()
    checks["zero_replica_cold_cells"] = stats.replica_cold_cells == 0
    checks["pool_hits"] = stats.hits >= 1
    checks["invalidations_on_write"] = stats.invalidations >= 1
    checks["generation_tracks_writes"] = stats.generation == scale["mutations"]
    if args.min_speedup:
        checks["min_speedup"] = speedup >= args.min_speedup
    print(f"pool stats: {stats.as_dict()}")
    passed = all(checks.values())
    print(
        "checks: "
        + ", ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in checks.items())
    )

    if args.json is not None:
        path = write_artifact(
            args.json,
            "bench_serving",
            dict(
                scale,
                engine=args.engine,
                seed=args.seed,
                smoke=args.smoke,
                clients=args.clients,
            ),
            {
                "solve_throughput": {
                    "cold": cold_row,
                    "warm": warm_row,
                    "speedup": speedup,
                },
                "mixed": {"warm": mixed_row, "cold": mixed_cold_row},
                "post_mutation": post_row,
                "pool_stats": stats.as_dict(),
                "checks": checks,
            },
        )
        print(f"wrote {path}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
