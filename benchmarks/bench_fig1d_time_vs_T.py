"""Fig 1d — execution time versus the number of time intervals |T|.

Same sweep as Fig 1c, read on the time axis.  Initial scoring is
proportional to |T| x |E| x |U| for both GRD and TOP, so both climb with
|T|; GRD adds k rounds of per-interval updates on top, so the GRD–TOP gap
widens (the paper's stated observation).  RAND remains near-free.
"""

from __future__ import annotations

import time

import pytest

from repro.api import solver_registry

from benchmarks.conftest import INTERVAL_GRID, instance_for_intervals

_K = 100
_TIMES: dict[tuple[str, int], float] = {}


def _method(name: str, seed: int):
    seeded = solver_registry.get(name.lower()).seeded
    return solver_registry.create(name.lower(), seed=seed if seeded else None)


@pytest.mark.benchmark(group="fig1d-time-vs-T")
@pytest.mark.parametrize("n_intervals", INTERVAL_GRID)
@pytest.mark.parametrize("method", ["GRD", "TOP", "RAND"])
def test_fig1d_point(benchmark, method: str, n_intervals: int):
    instance = instance_for_intervals(n_intervals, k=_K)
    solver = _method(method, n_intervals)

    started = time.perf_counter()
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _TIMES[(method, n_intervals)] = time.perf_counter() - started

    benchmark.extra_info["n_intervals"] = n_intervals
    benchmark.extra_info["method"] = method
    benchmark.extra_info["achieved_k"] = result.achieved_k


@pytest.mark.benchmark(group="fig1d-time-vs-T")
def test_fig1d_shape(benchmark):
    def check():
        for n_intervals in INTERVAL_GRID:
            if ("GRD", n_intervals) not in _TIMES:
                pytest.skip("run the full fig1d group to check shapes")
        smallest, largest = INTERVAL_GRID[0], INTERVAL_GRID[-1]
        # scoring cost climbs with |T| for both scoring methods
        assert _TIMES[("GRD", largest)] > _TIMES[("GRD", smallest)]
        assert _TIMES[("TOP", largest)] > _TIMES[("TOP", smallest)]
        # RAND cheapest everywhere
        for n_intervals in INTERVAL_GRID:
            assert _TIMES[("RAND", n_intervals)] < _TIMES[("GRD", n_intervals)]
            assert _TIMES[("RAND", n_intervals)] < _TIMES[("TOP", n_intervals)]
        # the GRD-TOP gap widens with |T|
        assert (
            _TIMES[("GRD", largest)] - _TIMES[("TOP", largest)]
            > _TIMES[("GRD", smallest)] - _TIMES[("TOP", smallest)]
        )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
