"""Warm-start ablation: ScorePlane-fed solves vs cold solves.

Two serving-loop scenarios, both dominated until this PR by the
O(|T| * |E|) initial score sweep every batch solver re-paid per solve:

* **session re-solve** — repeated ``solve`` requests against one
  immutable instance through :class:`repro.api.ScheduleSession`.  The
  session's per-spec :class:`~repro.core.scoreplane.ScorePlane` makes
  every request after the first skip the sweep outright; this benchmark
  times cold vs warm per solver (GRD, heap-GRD, TOP).
* **oracle sampling** — the stream driver's regret oracle re-solves the
  *live* state mid-replay.  The legacy path froze an O(instance)
  snapshot and cold-filled a fresh engine per sample; the warm path
  solves over the live view through the scheduler's base plane,
  re-scoring only rows the ops since the last sample dirtied.

Usage::

    python benchmarks/bench_solver_warm.py                 # 20k users, sparse
    python benchmarks/bench_solver_warm.py --smoke         # CI-sized
    python benchmarks/bench_solver_warm.py --json BENCH_solvers.json

The ``--json`` artifact (see ``benchmarks/artifacts.py``) is committed
as ``BENCH_solvers.json`` — the evidence for the ISSUE's ">=5x faster
oracle sampling" acceptance bar.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.artifacts import write_artifact

from repro.algorithms.incremental import IncrementalScheduler
from repro.algorithms.registry import solver_registry
from repro.api import ScheduleSession
from repro.core.engine import EngineSpec
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

LARGE = {"users": 20_000, "k": 60, "ops": 10}
SMOKE = {"users": 250, "k": 10, "ops": 8}

_SEED = 2018
#: Solvers whose first move is the initial sweep (the warm beneficiaries).
SOLVERS = ("grd", "grd-heap", "top")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine", choices=("sparse", "vectorized"), default="sparse"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    return parser


def bench_session_resolves(instance, spec, k, repeats):
    """Cold one-shot solves vs warm session re-solves, per solver."""
    rows = []
    session = ScheduleSession(instance, default_engine=spec)
    for name in SOLVERS:
        cold_started = time.perf_counter()
        cold = solver_registry.create(name, engine=spec).solve(instance, k)
        cold_seconds = time.perf_counter() - cold_started

        first = session.solve(k=k, solver=name)  # may pay the shared fill
        warm_seconds = []
        for _ in range(repeats):
            started = time.perf_counter()
            warm = session.solve(k=k, solver=name)
            warm_seconds.append(time.perf_counter() - started)
        assert warm.schedule.as_mapping() == cold.schedule.as_mapping()
        best_warm = min(warm_seconds)
        rows.append(
            {
                "solver": name,
                "cold_seconds": cold_seconds,
                "warm_seconds": best_warm,
                "speedup": cold_seconds / best_warm if best_warm else None,
                "utility": cold.utility,
                "first_request_seconds": first.result.runtime_seconds,
            }
        )
        print(
            f"  {name:<9} cold {cold_seconds * 1e3:8.1f}ms   warm "
            f"{best_warm * 1e3:8.1f}ms   -> {cold_seconds / best_warm:6.1f}x"
        )
    return rows


def bench_oracle_sampling(instance, spec, trace, k):
    """Per-sample oracle cost: the driver's old default vs the new one.

    Replays the trace under repair-only maintenance, sampling an oracle
    re-solve after every op both ways on identical live states.  The
    legacy configuration is what ``StreamDriver`` shipped before the
    ScorePlane PR — freeze an immutable snapshot, cold-solve GRD on a
    fresh engine.  The new default is a warm heap-GRD solve over the
    live view through the scheduler's base plane; the oracle only reads
    the re-solve's *utility*, and heap-GRD's utility is exactly GRD's
    (asserted per sample here, to 1e-9).
    """
    scheduler = IncrementalScheduler(instance, k, engine=spec)
    legacy_seconds = []
    warm_seconds = []
    matched = True
    for op in trace:
        op.apply(scheduler, maintain=False)
        # legacy: freeze the live state, cold-solve GRD on a fresh engine
        started = time.perf_counter()
        frozen = scheduler.live.freeze()
        legacy = solver_registry.create("grd", engine=spec).solve(frozen, k)
        legacy_seconds.append(time.perf_counter() - started)
        # new default: warm heap-GRD over the live view
        started = time.perf_counter()
        warm = solver_registry.create("grd-heap", engine=spec).solve(
            scheduler.live, k, plane=scheduler.base_plane()
        )
        warm_seconds.append(time.perf_counter() - started)
        matched &= abs(legacy.utility - warm.utility) <= 1e-9 * max(
            1.0, abs(legacy.utility)
        )
    mean_legacy = sum(legacy_seconds) / len(legacy_seconds)
    mean_warm = sum(warm_seconds) / len(warm_seconds)
    # the first warm sample pays the base plane's one-off cold fill;
    # every later sample is the steady-state cost an operator actually
    # pays per sample, so both numbers are reported
    steady = warm_seconds[1:] or warm_seconds
    mean_steady = sum(steady) / len(steady)
    print(
        f"  oracle sample: legacy {mean_legacy * 1e3:8.1f}ms   warm "
        f"{mean_steady * 1e3:8.1f}ms steady-state "
        f"({warm_seconds[0] * 1e3:.1f}ms first incl. plane fill) "
        f"-> {mean_legacy / mean_steady:6.1f}x "
        f"({'oracle utilities identical' if matched else 'UTILITY MISMATCH'})"
    )
    return {
        "samples": len(legacy_seconds),
        "legacy_mean_seconds": mean_legacy,
        "warm_mean_seconds": mean_warm,
        "warm_steady_state_mean_seconds": mean_steady,
        "warm_first_sample_seconds": warm_seconds[0],
        "speedup": mean_legacy / mean_steady if mean_steady else None,
        "speedup_including_fill": (
            mean_legacy / mean_warm if mean_warm else None
        ),
        "oracle_utilities_identical": matched,
        "plane_stats": scheduler.base_plane().stats(),
    }, matched


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["ops"]), root_seed=args.seed
    ).generate()
    print(
        f"{instance.describe()} [built in {time.perf_counter() - started:.1f}s]"
    )

    print("session re-solve (cold one-shot vs warm plane-fed):")
    session_rows = bench_session_resolves(
        instance, spec, scale["k"], args.repeats
    )
    print("oracle sampling on a live stream (legacy vs warm):")
    oracle_row, matched = bench_oracle_sampling(
        instance, spec, trace, scale["k"]
    )

    if args.json is not None:
        path = write_artifact(
            args.json,
            "bench_solver_warm",
            dict(scale, engine=args.engine, seed=args.seed, smoke=args.smoke),
            {"session_resolves": session_rows, "oracle_sampling": oracle_row},
        )
        print(f"wrote {path}")
    return 0 if matched else 1


if __name__ == "__main__":
    sys.exit(main())
