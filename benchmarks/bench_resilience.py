"""Resilience benchmark: crash recovery, fault injection, journaling cost.

Three sections, each with an always-on correctness gate (a gate failure
fails the run, smoke included — this is the CI chaos smoke):

* **recovery** — run a durable stream replay, kill it at several points,
  recover and resume each one; reports recovery latency vs surviving
  journal length.  Gate: every resumed run's final utility, schedule and
  per-op utility trajectory are *bit-identical* to the uninterrupted
  reference.
* **faults** — the same shard fan-out executed clean and under a seeded
  :class:`~repro.resilience.FaultPlan` (crashes, stalls, IO errors) with
  bounded retries; plus writer-stall injection on a serving session.
  Gate: the fault-injected map returns results bitwise equal to the
  clean run (retry + serial fallback make convergence unconditional).
* **overhead** — the same replay with durability off, on, and on with
  ``fsync="always"``; plus a mutation burst on a durable serving
  session.  Gate: zero un-journaled mutations (journal offset equals
  the mutation count exactly).

Usage::

    python benchmarks/bench_resilience.py            # full scale
    python benchmarks/bench_resilience.py --smoke    # CI-sized
    python benchmarks/bench_resilience.py --json BENCH_resilience.json

The committed ``BENCH_resilience.json`` artifact tracks journaling
overhead and recovery latency across PRs.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.artifacts import write_artifact

from repro.core.engine import EngineSpec
from repro.resilience import Durability, FaultPlan, RetryPolicy, recover
from repro.serve import ServingSession
from repro.shard.executor import ShardExecutor
from repro.stream import StreamDriver
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.traces import TraceConfig, TraceGenerator

LARGE = {
    "users": 5_000,
    "k": 24,
    "trace_ops": 48,
    "kill_points": 8,
    "map_thunks": 64,
    "map_rows": 20_000,
    "mutations": 24,
    "checkpoint_every": 8,
}
SMOKE = {
    "users": 200,
    "k": 8,
    "trace_ops": 16,
    "kill_points": 4,
    "map_thunks": 16,
    "map_rows": 2_000,
    "mutations": 8,
    "checkpoint_every": 4,
}

_SEED = 2018


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument("--policy", default="incremental")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    return parser


def _workload(scale: dict, seed: int):
    config = ExperimentConfig(
        k=scale["k"], n_users=scale["users"], interest_backend="dense"
    )
    instance = WorkloadGenerator(root_seed=seed).build(config)
    trace = TraceGenerator(
        config, TraceConfig(n_ops=scale["trace_ops"]), root_seed=seed
    ).generate()
    return instance, trace


def _driver(instance, policy, durability=None):
    return StreamDriver(
        instance,
        policy=policy,
        engine=EngineSpec(kind="vectorized"),
        durability=durability,
    )


def section_recovery(scale: dict, seed: int, policy: str, root: Path) -> dict:
    instance, trace = _workload(scale, seed)
    clean = _driver(instance, policy).run(trace)
    reference = (
        clean.final_utility,
        dict(clean.final_schedule),
        [r.utility for r in clean.records],
    )

    n_ops = scale["trace_ops"]
    kills = sorted(
        {round(i * n_ops / scale["kill_points"]) for i in range(scale["kill_points"])}
    )
    rows = []
    identical = True
    for kill_at in kills:
        durability = Durability(
            root / f"recover-{kill_at}",
            checkpoint_every=scale["checkpoint_every"],
        )
        _driver(instance, policy, durability).run(trace, stop_after=kill_at)
        started = time.perf_counter()
        recovered = recover(durability)
        recover_seconds = time.perf_counter() - started
        resumed = recovered.resume(trace)
        resumed_key = (
            resumed.final_utility,
            dict(resumed.final_schedule),
            [r.utility for r in resumed.records],
        )
        identical = identical and resumed_key == reference
        rows.append(
            {
                "kill_at": kill_at,
                "surviving_offset": recovered.offset,
                "checkpoint_offset": recovered.checkpoint_offset,
                "recover_seconds": recover_seconds,
            }
        )
        print(
            f"  kill@{kill_at:3d}: offset {recovered.offset:3d} "
            f"(ckpt {recovered.checkpoint_offset:3d}), "
            f"recovered in {recover_seconds * 1e3:6.1f}ms"
        )
    return {
        "kill_points": rows,
        "clean_final_utility": clean.final_utility,
        "gate_bit_identical": identical,
    }


def section_faults(scale: dict, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    blocks = [
        rng.uniform(0.0, 1.0, (scale["map_rows"] // scale["map_thunks"], 8))
        for _ in range(scale["map_thunks"])
    ]
    thunks = [lambda b=b: float(b.sum()) for b in blocks]

    clean_executor = ShardExecutor(workers=4, kind="thread")
    started = time.perf_counter()
    clean_results = clean_executor.map(thunks)
    clean_seconds = time.perf_counter() - started

    plan = FaultPlan(
        seed=seed, worker_crash=0.15, worker_stall=0.1, io_error=0.1,
        stall_seconds=1e-4,
    )
    faulted_executor = ShardExecutor(
        workers=4, kind="thread", fault_plan=plan,
        retry=RetryPolicy(backoff_base=1e-4),
    )
    started = time.perf_counter()
    faulted_results = faulted_executor.map(thunks)
    faulted_seconds = time.perf_counter() - started
    stats = faulted_executor.stats()
    converged = faulted_results == clean_results

    print(
        f"  map: clean {clean_seconds * 1e3:6.1f}ms, "
        f"faulted {faulted_seconds * 1e3:6.1f}ms "
        f"({sum(stats['faults'].values())} faults, "
        f"{stats['retries']} retries, {stats['fallbacks']} fallbacks)"
    )

    # writer-stall injection on a serving session: mutations succeed and
    # are counted even when every write stalls
    instance, _ = _workload(scale, seed)
    session = ServingSession(
        instance,
        fault_plan=FaultPlan(seed=seed, writer_stall=1.0, stall_seconds=1e-4),
    )
    for index in range(scale["mutations"]):
        session.add_competing(
            interval=index % instance.n_intervals,
            interest_column=rng.uniform(0.0, 1.0, instance.n_users),
        )
    writer_stalls = session.pool_stats().writer_stalls

    return {
        "map_clean_seconds": clean_seconds,
        "map_faulted_seconds": faulted_seconds,
        "fault_counts": stats["faults"],
        "retries": stats["retries"],
        "fallbacks": stats["fallbacks"],
        "writer_stalls": writer_stalls,
        "gate_converges_to_clean": converged
        and writer_stalls == scale["mutations"],
    }


def section_overhead(scale: dict, seed: int, policy: str, root: Path) -> dict:
    instance, trace = _workload(scale, seed)

    def timed(durability):
        started = time.perf_counter()
        _driver(instance, policy, durability).run(trace)
        return time.perf_counter() - started

    plain_seconds = timed(None)
    interval_dir = Durability(
        root / "overhead-interval", checkpoint_every=scale["checkpoint_every"]
    )
    interval_seconds = timed(interval_dir)
    always_dir = Durability(
        root / "overhead-always",
        checkpoint_every=scale["checkpoint_every"],
        fsync="always",
    )
    always_seconds = timed(always_dir)
    journal_bytes = interval_dir.journal_path.stat().st_size
    checkpoints = len(list(interval_dir.checkpoint_directory.glob("ckpt-*.json")))
    print(
        f"  replay: plain {plain_seconds * 1e3:6.1f}ms, "
        f"durable {interval_seconds * 1e3:6.1f}ms, "
        f"fsync-always {always_seconds * 1e3:6.1f}ms "
        f"({journal_bytes} journal bytes, {checkpoints} checkpoints)"
    )

    # zero un-journaled mutations: the serve journal offset must equal
    # the number of acknowledged mutations exactly
    rng = np.random.default_rng(seed)
    session = ServingSession(
        instance, durability=Durability(root / "overhead-serve")
    )
    for index in range(scale["mutations"]):
        session.add_competing(
            interval=index % instance.n_intervals,
            interest_column=rng.uniform(0.0, 1.0, instance.n_users),
        )
    journaled = session.journal_offset
    session.close()

    return {
        "replay_plain_seconds": plain_seconds,
        "replay_durable_seconds": interval_seconds,
        "replay_fsync_always_seconds": always_seconds,
        "durable_overhead_ratio": (
            interval_seconds / plain_seconds if plain_seconds else None
        ),
        "journal_bytes": journal_bytes,
        "checkpoints": checkpoints,
        "mutations": scale["mutations"],
        "journaled_mutations": journaled,
        "gate_zero_unjournaled": journaled == scale["mutations"],
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users

    with tempfile.TemporaryDirectory(prefix="ses-resilience-") as tmp:
        root = Path(tmp)
        print(f"recovery ({scale['kill_points']} kill points):")
        recovery = section_recovery(scale, args.seed, args.policy, root)
        print("faults:")
        faults = section_faults(scale, args.seed)
        print("overhead:")
        overhead = section_overhead(scale, args.seed, args.policy, root)

    checks = {
        "recovery_bit_identical": recovery["gate_bit_identical"],
        "faults_converge_to_clean": faults["gate_converges_to_clean"],
        "zero_unjournaled_mutations": overhead["gate_zero_unjournaled"],
    }
    passed = all(checks.values())
    print(
        "checks: "
        + ", ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in checks.items())
    )

    if args.json is not None:
        path = write_artifact(
            args.json,
            "bench_resilience",
            dict(scale, seed=args.seed, smoke=args.smoke, policy=args.policy),
            {
                "recovery": recovery,
                "faults": faults,
                "overhead": overhead,
                "checks": checks,
            },
        )
        print(f"wrote {path}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
