"""Abl 4 — GRD approximation quality against the exact optimum.

The paper proves SES strongly NP-hard and offers GRD without a tight
approximation guarantee.  This ablation quantifies the gap empirically:
tiny paper-shaped instances are solved both by GRD and by the pruned
exhaustive solver, recording the utility ratio.  The timing contrast
(milliseconds versus the exact solver's combinatorial blowup) *is* the
argument for greedy.
"""

from __future__ import annotations

import pytest

from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_GENERATOR = WorkloadGenerator(root_seed=44)
_CASES = {
    "tiny": ExperimentConfig(k=4, n_events=8, n_intervals=3, n_users=120),
    "small": ExperimentConfig(k=6, n_events=10, n_intervals=3, n_users=120),
}
_INSTANCES: dict[str, object] = {}
_UTILITIES: dict[tuple[str, str], float] = {}
# deterministic per-case seeds: str.hash is process-dependent and would
# silently change the benchmarked instance between runs
_SEEDS = {"tiny": 101, "small": 202}


def _instance(case: str):
    if case not in _INSTANCES:
        _INSTANCES[case] = _GENERATOR.build(_CASES[case], seed=_SEEDS[case])
    return _INSTANCES[case]


@pytest.mark.benchmark(group="ablation4-quality")
@pytest.mark.parametrize("case", list(_CASES))
@pytest.mark.parametrize("solver_name", ["GRD", "EXACT"])
def test_solver_on_tiny_instance(benchmark, case: str, solver_name: str):
    instance = _instance(case)
    k = _CASES[case].k
    solver = (
        GreedyScheduler()
        if solver_name == "GRD"
        else ExhaustiveScheduler(max_nodes=20_000_000)
    )
    result = benchmark.pedantic(
        solver.solve, args=(instance, k), rounds=1, iterations=1
    )
    _UTILITIES[(case, solver_name)] = result.utility
    benchmark.extra_info["case"] = case
    benchmark.extra_info["solver"] = solver_name
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation4-quality")
def test_grd_near_optimal(benchmark):
    def check():
        ratios = {}
        for case in _CASES:
            if (case, "GRD") not in _UTILITIES or (case, "EXACT") not in _UTILITIES:
                pytest.skip("run both solvers first")
            exact = _UTILITIES[(case, "EXACT")]
            ratios[case] = _UTILITIES[(case, "GRD")] / exact if exact else 1.0
        # GRD never beats exact; empirically it stays within a few percent
        assert all(ratio <= 1.0 + 1e-9 for ratio in ratios.values())
        assert all(ratio >= 0.9 for ratio in ratios.values()), ratios
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
