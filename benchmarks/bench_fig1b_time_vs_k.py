"""Fig 1b — execution time versus the number of scheduled events k.

The paper's Figure 1b plots solver wall-clock against k.  Here the
pytest-benchmark measurement *is* the figure: one timed case per
(method, k), same instances as Fig 1a (session-cached, so generation cost
is excluded).  Compare the ``mean`` column across rows of the
``fig1b-time-vs-k`` group to read the figure.

Paper shapes asserted:

* RAND is orders of magnitude cheaper than the scoring methods;
* GRD costs more than TOP at equal k (TOP skips all score updates), and
  the gap grows with k.
"""

from __future__ import annotations

import time

import pytest

from repro.api import solver_registry

from benchmarks.conftest import K_GRID, instance_for_k

_TIMES: dict[tuple[str, int], float] = {}


def _method(name: str, k: int):
    seeded = solver_registry.get(name.lower()).seeded
    return solver_registry.create(name.lower(), seed=k if seeded else None)


@pytest.mark.benchmark(group="fig1b-time-vs-k")
@pytest.mark.parametrize("k", K_GRID)
@pytest.mark.parametrize("method", ["GRD", "TOP", "RAND"])
def test_fig1b_point(benchmark, method: str, k: int):
    instance = instance_for_k(k)
    solver = _method(method, k)

    started = time.perf_counter()
    result = benchmark.pedantic(
        solver.solve, args=(instance, k), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    _TIMES[(method, k)] = elapsed

    assert result.achieved_k == k
    benchmark.extra_info["k"] = k
    benchmark.extra_info["method"] = method
    benchmark.extra_info["initial_scores"] = result.stats.initial_scores
    benchmark.extra_info["score_updates"] = result.stats.score_updates


@pytest.mark.benchmark(group="fig1b-time-vs-k")
def test_fig1b_shape(benchmark):
    def check():
        for k in K_GRID:
            if ("GRD", k) not in _TIMES:
                pytest.skip("run the full fig1b group to check shapes")
        for k in K_GRID:
            assert _TIMES[("RAND", k)] < _TIMES[("GRD", k)]
            assert _TIMES[("RAND", k)] < _TIMES[("TOP", k)]
            assert _TIMES[("GRD", k)] > _TIMES[("TOP", k)]
        first, last = K_GRID[0], K_GRID[-1]
        assert (
            _TIMES[("GRD", last)] - _TIMES[("TOP", last)]
            > _TIMES[("GRD", first)] - _TIMES[("TOP", first)]
        )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
