"""Abl 5 — refining GRD with local search and simulated annealing.

DESIGN.md's extension scope: does hill climbing (relocate / replace /
exchange) or annealing buy utility on top of the paper's greedy, and at
what time cost?  Measures GRD alone, GRD + local search, and SA seeded by
RAND, all at the same (k, instance).
"""

from __future__ import annotations

import pytest

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.local_search import LocalSearchRefiner
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_K = 30
_GENERATOR = WorkloadGenerator(root_seed=55)
_CONFIG = ExperimentConfig(k=_K, n_users=400)
_INSTANCE = None
_UTILITIES: dict[str, float] = {}


def _instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = _GENERATOR.build(_CONFIG)
    return _INSTANCE


@pytest.mark.benchmark(group="ablation5-refinement")
def test_grd_alone(benchmark):
    instance = _instance()
    result = benchmark.pedantic(
        GreedyScheduler().solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES["GRD"] = result.utility
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation5-refinement")
def test_grd_plus_local_search(benchmark):
    instance = _instance()

    def pipeline():
        grd = GreedyScheduler().solve(instance, _K)
        return LocalSearchRefiner(seed=1, max_rounds=10).refine_result(
            instance, grd
        )

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    _UTILITIES["GRD+LS"] = result.utility
    benchmark.extra_info["utility"] = result.utility
    benchmark.extra_info["moves_accepted"] = result.stats.moves_accepted


@pytest.mark.benchmark(group="ablation5-refinement")
def test_annealing_from_random(benchmark):
    instance = _instance()
    solver = AnnealingScheduler(seed=2, steps=3000)
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES["SA"] = result.utility
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation5-refinement")
def test_grasp_restarts(benchmark):
    from repro.algorithms.grasp import GraspScheduler

    instance = _instance()
    solver = GraspScheduler(seed=3, restarts=4, alpha=0.15)
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES["GRASP"] = result.utility
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation5-refinement")
def test_refinement_ordering(benchmark):
    def check():
        if {"GRD", "GRD+LS"} - set(_UTILITIES):
            pytest.skip("run the refinement cases first")
        # refinement never loses what greedy found
        assert _UTILITIES["GRD+LS"] >= _UTILITIES["GRD"] - 1e-9
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
