"""Abl 6 — beam width versus utility and time.

Beam search generalizes GRD (width 1 = greedy).  This ablation measures
what wider beams buy on a paper-shaped instance: utility is monotone
non-decreasing in width (the beam contains greedy's trajectory) while
time grows roughly linearly with width x branch factor.
"""

from __future__ import annotations

import pytest

from repro.algorithms.beam import BeamSearchScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

_K = 12
_GENERATOR = WorkloadGenerator(root_seed=66)
_CONFIG = ExperimentConfig(k=_K, n_users=300)
_INSTANCE = None
_WIDTHS = (1, 2, 4, 8)
_UTILITIES: dict[int, float] = {}


def _instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = _GENERATOR.build(_CONFIG)
    return _INSTANCE


@pytest.mark.benchmark(group="ablation6-beam")
def test_grd_reference_point(benchmark):
    instance = _instance()
    result = benchmark.pedantic(
        GreedyScheduler().solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES[0] = result.utility  # width-0 slot = plain GRD
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation6-beam")
@pytest.mark.parametrize("width", _WIDTHS)
def test_beam_width(benchmark, width: int):
    instance = _instance()
    solver = BeamSearchScheduler(beam_width=width)
    result = benchmark.pedantic(
        solver.solve, args=(instance, _K), rounds=1, iterations=1
    )
    _UTILITIES[width] = result.utility
    benchmark.extra_info["beam_width"] = width
    benchmark.extra_info["utility"] = result.utility


@pytest.mark.benchmark(group="ablation6-beam")
def test_wider_beams_never_lose(benchmark):
    def check():
        if set(_WIDTHS) - set(_UTILITIES):
            pytest.skip("run the width grid first")
        # beam(w) >= GRD for every width, and widths are non-decreasing
        # against the width-1 beam (identical frontiers aside, ties allowed)
        for width in _WIDTHS:
            assert _UTILITIES[width] >= _UTILITIES[0] - 1e-9
        assert _UTILITIES[_WIDTHS[-1]] >= _UTILITIES[_WIDTHS[0]] - 1e-9
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
