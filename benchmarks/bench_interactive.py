"""Organizer-in-the-loop benchmark: gap-report latency + lock differentials.

Two claims from the interactive tier, measured and checked in one run:

* **gap reports are free after a solve** — the report reads its marginal
  gains off the session's warm :class:`~repro.core.scoreplane.ScorePlane`,
  so the latency is pure bookkeeping (no Eq. 4 evaluations).  The run
  measures p50/p95 over repeated reports and *fails* if any report
  refreshes even one plane cell;
* **locks never perturb what they do not bind** — the lock differential
  smoke: for every deterministic registry solver, an empty
  :class:`~repro.interactive.LockSet` and a worst-cell forbid must be
  bit-identical to the unlocked solve, and pinning the full unlocked
  solution must return it unchanged.  Any divergence fails the run —
  this is the CI tripwire behind the interactive test suite.

The locked re-solve phase also reports how much a pin+forbid re-solve
costs relative to the unlocked baseline (warm plane both ways).

Usage::

    python benchmarks/bench_interactive.py           # full scale
    python benchmarks/bench_interactive.py --smoke   # CI-sized
    python benchmarks/bench_interactive.py --json BENCH_interactive.json
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from collections.abc import Sequence
from pathlib import Path

if __package__ in (None, ""):  # allow `python benchmarks/bench_...py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.artifacts import write_artifact

from repro.algorithms.registry import solver_registry
from repro.api import ScheduleSession, SolveRequest
from repro.core.engine import EngineSpec
from repro.interactive import LockSet
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

LARGE = {"users": 20_000, "k": 60, "reports": 50, "locked_solves": 10}
SMOKE = {"users": 250, "k": 10, "reports": 12, "locked_solves": 4}

#: Solvers in the differential smoke: deterministic, so "identical" means
#: identical, not "statistically close".
DIFFERENTIAL_SOLVERS = ("grd", "grd-heap", "top")

_SEED = 2018


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("-k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=_SEED)
    parser.add_argument(
        "--engine", choices=("sparse", "vectorized"), default="sparse"
    )
    parser.add_argument("--json", type=Path, default=None, metavar="PATH")
    return parser


def percentiles(latencies: Sequence[float]) -> dict[str, float]:
    ordered = sorted(latencies)

    def at(q: float) -> float:
        return ordered[
            min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        ]

    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def worst_unchosen_cell(matrix: np.ndarray, chosen: dict[int, int]) -> tuple[int, int]:
    """The lowest-scoring (interval, event) cell outside ``chosen``."""
    taken = {(interval, event) for event, interval in chosen.items()}
    for flat in np.argsort(matrix, axis=None):
        interval, event = np.unravel_index(int(flat), matrix.shape)
        if (int(interval), int(event)) not in taken:
            return (int(interval), int(event))
    raise RuntimeError("every cell is chosen; instance too small")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = dict(SMOKE if args.smoke else LARGE)
    if args.users is not None:
        scale["users"] = args.users
    if args.k is not None:
        scale["k"] = args.k

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=scale["k"],
        n_users=scale["users"],
        interest_backend=spec.interest_backend,
    )
    started = time.perf_counter()
    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    print(
        f"{instance.describe()} "
        f"[built in {time.perf_counter() - started:.1f}s]"
    )

    session = ScheduleSession(instance, default_engine=spec)
    checks: dict[str, bool] = {}

    # -- phase 1: gap-report latency on a warm session -------------------
    response = session.solve(SolveRequest(k=scale["k"], solver="grd-heap"))
    plane = session.plane_for(None)
    latencies: list[float] = []
    max_cells_spent = 0
    for _ in range(scale["reports"]):
        tick = time.perf_counter()
        report = session.gap_report(response)
        latencies.append(time.perf_counter() - tick)
        max_cells_spent = max(max_cells_spent, report.cells_spent)
    stats = percentiles(latencies)
    checks["gap_report_zero_evaluations"] = max_cells_spent == 0
    print(
        f"  gap report        {scale['reports']:3d} reports  "
        f"p50 {stats['p50'] * 1e3:7.1f}ms  p95 {stats['p95'] * 1e3:7.1f}ms  "
        f"({len(report.gaps)} gap events, cells_spent={max_cells_spent})"
    )

    # -- phase 2: lock differential smoke --------------------------------
    matrix = plane.ensure()
    differential: dict[str, dict[str, bool]] = {}
    for name in DIFFERENTIAL_SOLVERS:
        unlocked = session.solve(SolveRequest(k=scale["k"], solver=name))
        chosen = unlocked.schedule.as_mapping()
        empty = session.solve(
            SolveRequest(k=scale["k"], solver=name, locks=LockSet())
        )
        forbid = LockSet().forbid(*worst_unchosen_cell(matrix, chosen))
        forbidden = session.solve(
            SolveRequest(k=scale["k"], solver=name, locks=forbid)
        )
        pins = tuple((t, e) for e, t in sorted(chosen.items()))
        pinned = session.solve(
            SolveRequest(k=scale["k"], solver=name, locks=LockSet(pins=pins))
        )
        row = {
            "empty_locks_identical": (
                empty.schedule == unlocked.schedule
                and empty.utility == unlocked.utility
            ),
            "nonbinding_forbid_identical": (
                forbidden.schedule == unlocked.schedule
                and forbidden.utility == unlocked.utility
            ),
            "fully_pinned_identical": (
                pinned.schedule.as_mapping() == chosen
            ),
        }
        differential[name] = row
        checks[f"differential_{name}"] = all(row.values())
        print(
            f"  differential      {name:<9} "
            + "  ".join(f"{key}={value}" for key, value in row.items())
        )

    # -- phase 3: locked re-solve overhead -------------------------------
    draft = sorted(response.schedule.as_mapping().items())
    locks = LockSet(
        pins=tuple((t, e) for e, t in draft[: len(draft) // 2]),
        forbids=frozenset(
            (t, e) for e, t in draft[len(draft) // 2 :][:2]
        ),
    )

    def timed_solves(locks_arg: LockSet | None) -> list[float]:
        out = []
        for _ in range(scale["locked_solves"]):
            tick = time.perf_counter()
            session.solve(
                SolveRequest(k=scale["k"], solver="grd-heap", locks=locks_arg)
            )
            out.append(time.perf_counter() - tick)
        return out

    unlocked_lat = percentiles(timed_solves(None))
    locked_lat = percentiles(timed_solves(locks))
    print(
        f"  locked re-solve   p50 {locked_lat['p50'] * 1e3:7.1f}ms "
        f"vs unlocked {unlocked_lat['p50'] * 1e3:7.1f}ms "
        f"({len(locks.pins)} pins, {len(locks.forbids)} forbids)"
    )

    failed = sorted(name for name, ok in checks.items() if not ok)
    for name, ok in sorted(checks.items()):
        print(f"  check {name}: {'ok' if ok else 'FAILED'}")

    if args.json is not None:
        path = write_artifact(
            args.json,
            "bench_interactive",
            {**scale, "engine": args.engine, "seed": args.seed},
            {
                "gap_report": {
                    "reports": scale["reports"],
                    "gap_events": len(report.gaps),
                    "max_cells_spent": max_cells_spent,
                    **{f"latency_{k}": v for k, v in stats.items()},
                },
                "differential": differential,
                "locked_solve": {
                    "pins": len(locks.pins),
                    "forbids": len(locks.forbids),
                    **{f"locked_{k}": v for k, v in locked_lat.items()},
                    **{f"unlocked_{k}": v for k, v in unlocked_lat.items()},
                },
                "checks": checks,
            },
        )
        print(f"  wrote {path}")

    if failed:
        print(f"FAILED checks: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
