"""Build SES instances from EBSN snapshots — the paper's preprocessing step.

Given a generated (or, in principle, real) EBSN, this builder performs the
paper's Section IV.A pipeline:

1. sample **candidate events** from the network's event pool (they carry
   their organizing group's tags and a venue-derived location);
2. sample **competing events** from the *remaining* pool and pin each to a
   candidate interval (density controlled by a per-interval count
   distribution — the paper uses a uniform distribution with mean 8.1);
3. compute ``mu`` as **Jaccard similarity** between user tags and event
   tags, for candidate and competing events alike;
4. attach ``sigma`` either as ``U[0, 1]`` (the paper's experimental
   setting) or estimated from the snapshot's **check-in history** (the
   pipeline the paper describes);
5. draw each event's required resources and set the organizer capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.instance import SESInstance
from repro.core.interest import INTEREST_BACKENDS, InterestMatrix
from repro.ebsn.generator import GeneratedEBSN
from repro.ebsn.jaccard import jaccard_matrix, jaccard_matrix_sparse
from repro.utils.rng import ensure_rng

__all__ = ["InstanceBuildParams", "build_instance"]


@dataclass(frozen=True)
class InstanceBuildParams:
    """Parameters of the EBSN -> SES conversion (paper Section IV.A).

    Attributes
    ----------
    n_candidate_events:
        ``|E|``; the paper uses ``2k``.
    n_intervals:
        ``|T|``; the paper sweeps ``k/5 .. 3k`` with default ``3k/2``.
    mean_competing_per_interval:
        Mean of the uniform per-interval competing-event count
        (8.1 in the paper, measured on Meetup).
    n_locations:
        Venues available to the organizer (25 in the paper); candidate
        events are mapped onto this many distinct locations.
    theta:
        Organizer resources per interval (20 in the paper).
    xi_range:
        Required resources are drawn ``U[xi_range]`` — the paper uses
        ``[1, 20/3]``.
    sigma_source:
        ``"uniform"`` for the paper's ``U[0, 1]`` draw, ``"checkins"`` to
        estimate sigma from the snapshot's check-in history (weekly slots
        are tiled across the candidate intervals).
    interest_backend:
        ``"dense"`` (default) or ``"sparse"``.  With ``"sparse"`` the
        Jaccard ``mu`` is mined straight into CSC storage
        (:func:`repro.ebsn.jaccard.jaccard_matrix_sparse`) and no dense
        ``(users, events)`` array is ever materialized — the path to full
        Meetup-scale populations.  Requires scipy.
    """

    n_candidate_events: int
    n_intervals: int
    mean_competing_per_interval: float = 8.1
    n_locations: int = 25
    theta: float = 20.0
    xi_range: tuple[float, float] = (1.0, 20.0 / 3.0)
    sigma_source: str = "uniform"
    interest_backend: str = "dense"

    def __post_init__(self) -> None:
        if self.n_candidate_events <= 0:
            raise ValueError(
                f"n_candidate_events must be positive, got {self.n_candidate_events}"
            )
        if self.n_intervals <= 0:
            raise ValueError(f"n_intervals must be positive, got {self.n_intervals}")
        if self.mean_competing_per_interval < 0:
            raise ValueError(
                f"mean_competing_per_interval must be non-negative, got "
                f"{self.mean_competing_per_interval}"
            )
        if self.n_locations <= 0:
            raise ValueError(f"n_locations must be positive, got {self.n_locations}")
        if self.theta <= 0:
            raise ValueError(f"theta must be positive, got {self.theta}")
        if not 0 < self.xi_range[0] <= self.xi_range[1]:
            raise ValueError(f"bad xi_range {self.xi_range}")
        if self.xi_range[1] > self.theta:
            raise ValueError(
                f"xi_range upper bound {self.xi_range[1]} exceeds theta "
                f"{self.theta}; some events could never be scheduled"
            )
        if self.sigma_source not in ("uniform", "checkins"):
            raise ValueError(
                f"sigma_source must be 'uniform' or 'checkins', got "
                f"{self.sigma_source!r}"
            )
        if self.interest_backend not in INTEREST_BACKENDS:
            raise ValueError(
                f"interest_backend must be one of {INTEREST_BACKENDS}, got "
                f"{self.interest_backend!r}"
            )


def build_instance(
    snapshot: GeneratedEBSN,
    params: InstanceBuildParams,
    seed: int | np.random.Generator | None = None,
) -> SESInstance:
    """Run the Section IV.A pipeline on ``snapshot`` with ``params``."""
    rng = ensure_rng(seed)
    network = snapshot.network
    needed = params.n_candidate_events
    pool_size = network.n_events
    if needed > pool_size:
        raise ValueError(
            f"need {needed} candidate events but the EBSN has only {pool_size}"
        )

    chosen = rng.permutation(pool_size)
    candidate_ids = chosen[:needed]
    rival_pool = chosen[needed:]

    users = [
        User(index=i, name=source.display_name, tags=source.tags)
        for i, source in enumerate(network.users)
    ]
    intervals = [
        TimeInterval(index=t, label=f"interval-{t}")
        for t in range(params.n_intervals)
    ]

    xi_low, xi_high = params.xi_range
    events = []
    for index, event_id in enumerate(candidate_ids):
        source = network.events[int(event_id)]
        events.append(
            CandidateEvent(
                index=index,
                location=source.venue % params.n_locations,
                required_resources=float(rng.uniform(xi_low, xi_high)),
                name=source.display_name,
                tags=source.tags,
            )
        )

    competing, rival_tagsets = _sample_competing(
        network, rival_pool, params, rng
    )

    user_tagsets = [user.tags for user in users]
    event_tagsets = [event.tags for event in events]
    if params.interest_backend == "sparse":
        interest = InterestMatrix.from_scipy(
            jaccard_matrix_sparse(user_tagsets, event_tagsets),
            jaccard_matrix_sparse(user_tagsets, rival_tagsets),
        )
    else:
        interest = InterestMatrix.from_arrays(
            jaccard_matrix(user_tagsets, event_tagsets),
            jaccard_matrix(user_tagsets, rival_tagsets),
        )
    activity = _build_activity(snapshot, params, rng)
    organizer = Organizer(resources=params.theta, name="ses-organizer")
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=organizer,
    )


def _sample_competing(
    network,
    rival_pool: np.ndarray,
    params: InstanceBuildParams,
    rng: np.random.Generator,
) -> tuple[list[CompetingEvent], list[frozenset[str]]]:
    """Pin uniform-count competing events to every interval.

    Per-interval counts are ``round(U[0, 2 * mean])`` — a uniform
    distribution with the paper's mean.  Rival tag sets come from real
    pool events; if the pool runs dry the counts are truncated (recorded
    nowhere because the paper's sizes never exhaust 16K events).
    """
    competing: list[CompetingEvent] = []
    tagsets: list[frozenset[str]] = []
    pool_position = 0
    for interval in range(params.n_intervals):
        count = int(round(rng.uniform(0.0, 2.0 * params.mean_competing_per_interval)))
        for _ in range(count):
            if pool_position >= len(rival_pool):
                break
            source = network.events[int(rival_pool[pool_position])]
            pool_position += 1
            competing.append(
                CompetingEvent(
                    index=len(competing),
                    interval=interval,
                    name=source.display_name,
                    tags=source.tags,
                )
            )
            tagsets.append(source.tags)
    return competing, tagsets


def _build_activity(
    snapshot: GeneratedEBSN,
    params: InstanceBuildParams,
    rng: np.random.Generator,
) -> ActivityModel:
    n_users = snapshot.network.n_users
    if params.sigma_source == "uniform":
        return ActivityModel.uniform_random(n_users, params.n_intervals, seed=rng)
    weekly = snapshot.checkins.estimate_activity()
    # tile the weekly-slot estimates across the candidate intervals
    columns = [
        weekly.matrix[:, t % weekly.n_intervals] for t in range(params.n_intervals)
    ]
    return ActivityModel(np.column_stack(columns))
