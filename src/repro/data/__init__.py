"""Data layer: EBSN -> SES instance building and (de)serialization."""

from repro.data.meetup import InstanceBuildParams, build_instance
from repro.data.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_instance_npz,
    save_instance,
    save_instance_npz,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "InstanceBuildParams",
    "build_instance",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "load_instance_npz",
    "save_instance",
    "save_instance_npz",
    "schedule_from_dict",
    "schedule_to_dict",
]
