"""JSON round-tripping of SES instances and schedules.

Pipelines need reproducible artifacts: a workload generator run once can be
frozen to disk and re-solved later (or shipped as a bug report).  The
format is plain JSON — entity lists plus matrices — favoring transparency
over compactness; full-scale Meetup matrices belong in ``.npz``
(see :func:`save_instance_npz`) rather than JSON.

Interest matrices serialize according to their backend:

* ``dense`` — nested value lists, exactly as before;
* ``sparse`` — a *canonical explicit-zero-free* coordinate form: parallel
  ``rows`` / ``cols`` / ``values`` lists in CSC order (sorted by column,
  then row) with zero entries dropped.  Two equal sparse matrices always
  produce byte-identical payloads regardless of how they were assembled,
  and the round trip reconstructs CSC storage without ever materializing
  a dense array.  The ``.npz`` variant stores the raw CSC component
  arrays (``data`` / ``indices`` / ``indptr``) for the same guarantee at
  binary scale.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.errors import SerializationError
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Assignment, Schedule

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "save_instance_npz",
    "load_instance_npz",
    "save_sharded_instance",
    "load_sharded_instance",
    "schedule_to_dict",
    "schedule_from_dict",
]

_FORMAT_VERSION = 1


def _atomic_write(path: Path, write_body) -> None:
    """Write ``path`` via a fsynced tmp sibling + ``os.replace``.

    A crash mid-save leaves either the previous artifact or nothing with
    the final name — never a torn file that a later load half-parses.
    ``write_body`` receives the open binary tmp handle.
    """
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            write_body(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def instance_to_dict(instance: SESInstance) -> dict:
    """Serialize an instance to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "organizer": {
            "name": instance.organizer.name,
            "resources": instance.organizer.resources,
        },
        "users": [
            {"index": u.index, "name": u.name, "tags": sorted(u.tags)}
            for u in instance.users
        ],
        "intervals": [
            {
                "index": t.index,
                "label": t.label,
                "start": t.start,
                "end": t.end,
            }
            for t in instance.intervals
        ],
        "events": [
            {
                "index": e.index,
                "name": e.name,
                "location": e.location,
                "required_resources": e.required_resources,
                "tags": sorted(e.tags),
            }
            for e in instance.events
        ],
        "competing": [
            {
                "index": c.index,
                "name": c.name,
                "interval": c.interval,
                "tags": sorted(c.tags),
            }
            for c in instance.competing
        ],
        "interest": _interest_to_dict(instance.interest),
        "activity": instance.activity.matrix.tolist(),
    }


def _interest_to_dict(interest: InterestMatrix) -> dict:
    if interest.backend == "dense":
        return {
            "candidate": interest.candidate.tolist(),
            "competing": interest.competing.tolist(),
        }
    # "sparse" and "sharded" both expose canonical COO; a sharded matrix
    # flattens to the sparse payload here (the block structure survives only
    # in the directory format — save_sharded_instance).
    return {
        "backend": "sparse",
        "n_users": interest.n_users,
        "n_events": interest.n_events,
        "n_competing": interest.n_competing,
        "candidate": _coo_to_dict(*interest.candidate_coo()),
        "competing": _coo_to_dict(*interest.competing_coo()),
    }


def _coo_to_dict(rows: np.ndarray, cols: np.ndarray, values: np.ndarray) -> dict:
    return {
        "rows": rows.tolist(),
        "cols": cols.tolist(),
        "values": values.tolist(),
    }


def _interest_from_dict(payload: dict | InterestMatrix) -> InterestMatrix:
    if not isinstance(payload, dict):  # pre-built by the npz/sharded loaders
        return payload
    if payload.get("backend", "dense") != "sparse":
        return InterestMatrix.from_arrays(
            np.asarray(payload["candidate"], dtype=float),
            np.asarray(payload["competing"], dtype=float),
        )
    try:
        from scipy import sparse as sp
    except ImportError as error:  # pragma: no cover - requires scipy absence
        raise ValueError(
            "this instance was saved with the sparse interest backend; "
            "loading it requires scipy (the 'sparse' extra)"
        ) from error
    n_users = payload["n_users"]

    def matrix(entry: dict, n_columns: int):
        return sp.coo_matrix(
            (
                np.asarray(entry["values"], dtype=float),
                (
                    np.asarray(entry["rows"], dtype=np.intp),
                    np.asarray(entry["cols"], dtype=np.intp),
                ),
            ),
            shape=(n_users, n_columns),
        )

    return InterestMatrix.from_scipy(
        matrix(payload["candidate"], payload["n_events"]),
        matrix(payload["competing"], payload["n_competing"]),
    )


def instance_from_dict(payload: dict) -> SESInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported instance format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    users = [
        User(index=u["index"], name=u["name"], tags=frozenset(u["tags"]))
        for u in payload["users"]
    ]
    intervals = [
        TimeInterval(
            index=t["index"], label=t["label"], start=t["start"], end=t["end"]
        )
        for t in payload["intervals"]
    ]
    events = [
        CandidateEvent(
            index=e["index"],
            name=e["name"],
            location=e["location"],
            required_resources=e["required_resources"],
            tags=frozenset(e["tags"]),
        )
        for e in payload["events"]
    ]
    competing = [
        CompetingEvent(
            index=c["index"],
            name=c["name"],
            interval=c["interval"],
            tags=frozenset(c["tags"]),
        )
        for c in payload["competing"]
    ]
    interest = _interest_from_dict(payload["interest"])
    activity = ActivityModel(np.asarray(payload["activity"], dtype=float))
    organizer = Organizer(
        resources=payload["organizer"]["resources"],
        name=payload["organizer"]["name"],
    )
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=organizer,
    )


def save_instance(instance: SESInstance, path: str | Path) -> None:
    """Write an instance to ``path`` as JSON (atomically: tmp + rename)."""
    payload = json.dumps(instance_to_dict(instance)).encode("utf-8")
    _atomic_write(Path(path), lambda handle: handle.write(payload))


def load_instance(path: str | Path) -> SESInstance:
    """Read an instance previously written by :func:`save_instance`."""
    with open(path, encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))


def save_instance_npz(instance: SESInstance, path: str | Path) -> None:
    """Compact binary variant: matrices in ``.npz``, metadata in JSON inside.

    Preferred for large instances — a full Meetup-scale interest matrix is
    hundreds of MB as JSON text but compresses well as float arrays.
    Sparse-backed interest is stored as raw CSC component arrays
    (``data`` / ``indices`` / ``indptr``), so neither saving nor loading
    materializes a dense matrix.
    """
    metadata = instance_to_dict(instance)
    del metadata["interest"]
    del metadata["activity"]
    arrays: dict[str, np.ndarray] = {
        "activity": instance.activity.matrix,
    }
    interest = instance.interest
    if interest.backend in ("sparse", "sharded"):
        metadata["interest_backend"] = "sparse"
        for name, csc in (
            ("candidate", interest.candidate_sparse),
            ("competing", interest.competing_sparse),
        ):
            arrays[f"interest_{name}_data"] = csc.data
            arrays[f"interest_{name}_indices"] = csc.indices
            arrays[f"interest_{name}_indptr"] = csc.indptr
            arrays[f"interest_{name}_shape"] = np.asarray(csc.shape)
    else:
        arrays["interest_candidate"] = interest.candidate
        arrays["interest_competing"] = interest.competing
    # np.savez_compressed appends ".npz" to bare string paths; normalize
    # first so the atomic tmp/rename dance targets the real final name
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_name(final.name + ".npz")
    _atomic_write(
        final,
        lambda handle: np.savez_compressed(
            handle,
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
            **arrays,
        ),
    )


def load_instance_npz(path: str | Path) -> SESInstance:
    """Read an instance previously written by :func:`save_instance_npz`."""
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        if metadata.pop("interest_backend", "dense") == "sparse":
            from scipy import sparse as sp

            def csc(name: str):
                return sp.csc_matrix(
                    (
                        archive[f"interest_{name}_data"],
                        archive[f"interest_{name}_indices"],
                        archive[f"interest_{name}_indptr"],
                    ),
                    shape=tuple(archive[f"interest_{name}_shape"]),
                )

            interest = InterestMatrix.from_scipy(csc("candidate"), csc("competing"))
            metadata["interest"] = interest
        else:
            metadata["interest"] = {
                "candidate": archive["interest_candidate"],
                "competing": archive["interest_competing"],
            }
        metadata["activity"] = archive["activity"]
        # reuse the dict loader; arrays pass through np.asarray unchanged
        return instance_from_dict(metadata)


def save_sharded_instance(instance: SESInstance, directory: str | Path) -> None:
    """Write a sharded-interest instance as a directory of block files.

    Layout::

        manifest.json              # entities, plan, storage kind
        activity.npy
        candidate_block00000.npz   # CSC components (csc / csc32 storage)
        candidate_block00000.npy   # float32 dense   (dense32 / memmap32)
        competing_block00000.*     # ... one pair per accumulation block

    Unlike the flat ``.npz`` format this never concatenates blocks, so a
    10^6-user memmap-backed instance saves without pulling its interest
    matrix into memory; :func:`load_sharded_instance` maps the block files
    straight back (``mmap_mode="r"`` for ``memmap32``).  Users with default
    names/tags are stored as a bare count — a million-user roster is one
    JSON integer, not a million dicts.
    """
    interest = instance.interest
    if getattr(interest, "backend", None) != "sharded":
        raise ValueError(
            "save_sharded_instance requires a ShardedInterest-backed "
            f"instance; got backend {getattr(interest, 'backend', None)!r}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    metadata = instance_to_dict(instance)
    del metadata["interest"]
    del metadata["activity"]
    if all(u["name"] == "" and not u["tags"] for u in metadata["users"]):
        metadata["users"] = {"count": len(metadata["users"])}
    plan = interest.plan
    manifest = {
        "format_version": _FORMAT_VERSION,
        "storage": interest.storage,
        "plan": {
            "n_users": plan.n_users,
            "n_shards": plan.n_shards,
            "block_users": plan.block_users,
            "seed": plan.seed,
        },
        "metadata": metadata,
    }
    np.save(directory / "activity.npy", instance.activity.matrix)
    sparse_storage = interest.storage in ("csc", "csc32")
    for name, block_of in (
        ("candidate", interest.candidate_block),
        ("competing", interest.competing_block),
    ):
        for index in range(plan.n_blocks):
            block = block_of(index)
            stem = directory / f"{name}_block{index:05d}"
            if sparse_storage:
                np.savez(
                    stem.with_suffix(".npz"),
                    data=block.data,
                    indices=block.indices,
                    indptr=block.indptr,
                    shape=np.asarray(block.shape),
                )
            else:
                np.save(stem.with_suffix(".npy"), np.asarray(block))
    # the manifest is the commit point: it lands last, atomically, so a
    # directory with a manifest always has every block it references
    manifest_bytes = json.dumps(manifest).encode("utf-8")
    _atomic_write(
        directory / "manifest.json",
        lambda handle: handle.write(manifest_bytes),
    )


def load_sharded_instance(directory: str | Path) -> SESInstance:
    """Read a directory written by :func:`save_sharded_instance`.

    ``memmap32`` block files are re-mapped read-only rather than loaded, so
    opening a million-user instance costs file handles, not RAM.
    """
    from repro.shard.interest import ShardedInterest
    from repro.shard.plan import ShardPlan

    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        raise SerializationError(
            f"sharded instance at {directory} has no manifest.json — the "
            "save did not complete (the manifest is written last, as the "
            "commit point)"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded instance format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    storage = manifest["storage"]
    plan = ShardPlan(**manifest["plan"])
    suffix = ".npz" if storage in ("csc", "csc32") else ".npy"
    expected = ["activity.npy"] + [
        f"{name}_block{index:05d}{suffix}"
        for name in ("candidate", "competing")
        for index in range(plan.n_blocks)
    ]
    missing = [name for name in expected if not (directory / name).is_file()]
    if missing:
        raise SerializationError(
            f"sharded instance at {directory} is missing "
            f"{len(missing)} file(s) its manifest references: "
            f"{', '.join(missing[:5])}"
            + ("..." if len(missing) > 5 else "")
        )

    def blocks(name: str) -> list:
        out = []
        for index in range(plan.n_blocks):
            stem = directory / f"{name}_block{index:05d}"
            if storage in ("csc", "csc32"):
                from scipy import sparse as sp

                with np.load(stem.with_suffix(".npz")) as parts:
                    out.append(
                        sp.csc_matrix(
                            (
                                parts["data"],
                                parts["indices"],
                                parts["indptr"],
                            ),
                            shape=tuple(parts["shape"]),
                        )
                    )
            elif storage == "memmap32":
                out.append(np.load(stem.with_suffix(".npy"), mmap_mode="r"))
            else:
                dense = np.asfortranarray(np.load(stem.with_suffix(".npy")))
                dense.setflags(write=False)
                out.append(dense)
        return out

    interest = ShardedInterest(
        plan, blocks("candidate"), blocks("competing"), storage, validate=False
    )
    metadata = manifest["metadata"]
    if isinstance(metadata["users"], dict):
        metadata["users"] = [
            {"index": index, "name": "", "tags": []}
            for index in range(metadata["users"]["count"])
        ]
    metadata["interest"] = interest
    metadata["activity"] = np.load(directory / "activity.npy")
    return instance_from_dict(metadata)


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialize a schedule as an assignment list."""
    return {
        "format_version": _FORMAT_VERSION,
        "assignments": [
            {"event": a.event, "interval": a.interval} for a in schedule
        ],
    }


def schedule_from_dict(payload: dict, instance: SESInstance) -> Schedule:
    """Rebuild a schedule against ``instance``."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return Schedule(
        instance,
        (
            Assignment(event=row["event"], interval=row["interval"])
            for row in payload["assignments"]
        ),
    )
