"""JSON round-tripping of SES instances and schedules.

Pipelines need reproducible artifacts: a workload generator run once can be
frozen to disk and re-solved later (or shipped as a bug report).  The
format is plain JSON — entity lists plus nested-list matrices — favoring
transparency over compactness; full-scale Meetup matrices belong in ``.npz``
(see :func:`save_instance_npz`) rather than JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Assignment, Schedule

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "save_instance_npz",
    "load_instance_npz",
    "schedule_to_dict",
    "schedule_from_dict",
]

_FORMAT_VERSION = 1


def instance_to_dict(instance: SESInstance) -> dict:
    """Serialize an instance to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "organizer": {
            "name": instance.organizer.name,
            "resources": instance.organizer.resources,
        },
        "users": [
            {"index": u.index, "name": u.name, "tags": sorted(u.tags)}
            for u in instance.users
        ],
        "intervals": [
            {
                "index": t.index,
                "label": t.label,
                "start": t.start,
                "end": t.end,
            }
            for t in instance.intervals
        ],
        "events": [
            {
                "index": e.index,
                "name": e.name,
                "location": e.location,
                "required_resources": e.required_resources,
                "tags": sorted(e.tags),
            }
            for e in instance.events
        ],
        "competing": [
            {
                "index": c.index,
                "name": c.name,
                "interval": c.interval,
                "tags": sorted(c.tags),
            }
            for c in instance.competing
        ],
        "interest": {
            "candidate": instance.interest.candidate.tolist(),
            "competing": instance.interest.competing.tolist(),
        },
        "activity": instance.activity.matrix.tolist(),
    }


def instance_from_dict(payload: dict) -> SESInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported instance format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    users = [
        User(index=u["index"], name=u["name"], tags=frozenset(u["tags"]))
        for u in payload["users"]
    ]
    intervals = [
        TimeInterval(
            index=t["index"], label=t["label"], start=t["start"], end=t["end"]
        )
        for t in payload["intervals"]
    ]
    events = [
        CandidateEvent(
            index=e["index"],
            name=e["name"],
            location=e["location"],
            required_resources=e["required_resources"],
            tags=frozenset(e["tags"]),
        )
        for e in payload["events"]
    ]
    competing = [
        CompetingEvent(
            index=c["index"],
            name=c["name"],
            interval=c["interval"],
            tags=frozenset(c["tags"]),
        )
        for c in payload["competing"]
    ]
    interest = InterestMatrix.from_arrays(
        np.asarray(payload["interest"]["candidate"], dtype=float),
        np.asarray(payload["interest"]["competing"], dtype=float),
    )
    activity = ActivityModel(np.asarray(payload["activity"], dtype=float))
    organizer = Organizer(
        resources=payload["organizer"]["resources"],
        name=payload["organizer"]["name"],
    )
    return SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=interest,
        activity=activity,
        organizer=organizer,
    )


def save_instance(instance: SESInstance, path: str | Path) -> None:
    """Write an instance to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(instance), handle)


def load_instance(path: str | Path) -> SESInstance:
    """Read an instance previously written by :func:`save_instance`."""
    with open(path, encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))


def save_instance_npz(instance: SESInstance, path: str | Path) -> None:
    """Compact binary variant: matrices in ``.npz``, metadata in JSON inside.

    Preferred for large instances — a full Meetup-scale interest matrix is
    hundreds of MB as JSON text but compresses well as float arrays.
    """
    metadata = instance_to_dict(instance)
    del metadata["interest"]
    del metadata["activity"]
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        interest_candidate=instance.interest.candidate,
        interest_competing=instance.interest.competing,
        activity=instance.activity.matrix,
    )


def load_instance_npz(path: str | Path) -> SESInstance:
    """Read an instance previously written by :func:`save_instance_npz`."""
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        metadata["interest"] = {
            "candidate": archive["interest_candidate"],
            "competing": archive["interest_competing"],
        }
        metadata["activity"] = archive["activity"]
        # reuse the dict loader; arrays pass through np.asarray unchanged
        return instance_from_dict(metadata)


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialize a schedule as an assignment list."""
    return {
        "format_version": _FORMAT_VERSION,
        "assignments": [
            {"event": a.event, "interval": a.interval} for a in schedule
        ],
    }


def schedule_from_dict(payload: dict, instance: SESInstance) -> Schedule:
    """Rebuild a schedule against ``instance``."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return Schedule(
        instance,
        (
            Assignment(event=row["event"], interval=row["interval"])
            for row in payload["assignments"]
        ),
    )
