"""Typed solve requests and responses — the facade's wire format.

A :class:`SolveRequest` names *what* to solve (solver, budget ``k``,
engine spec, seed, solver parameters) without touching *how* it is
executed; :class:`repro.api.ScheduleSession` (or :func:`repro.api.solve_once`)
turns it into a :class:`SolveResponse` wrapping the solver's
:class:`~repro.algorithms.base.ScheduleResult`.  Both are frozen value
objects, so requests can be built once and replayed against many sessions
(or logged next to their responses) without aliasing surprises.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Any

from repro.algorithms.base import ScheduleResult
from repro.core.engine import EngineSpec
from repro.core.schedule import Schedule
from repro.interactive.locks import LockSet

__all__ = ["SolveRequest", "SolveResponse"]


@dataclass(frozen=True)
class SolveRequest:
    """One scheduling query: solver + budget + engine + solver knobs.

    Parameters
    ----------
    k:
        Number of assignments to place (clamped to ``|E|`` by the solver).
    solver:
        Registry name (see :data:`repro.api.solver_registry`), e.g.
        ``"grd"``, ``"sa"``, ``"beam"``.
    engine:
        :class:`EngineSpec` or bare kind string; ``None`` defers to the
        session's default spec.
    seed:
        Seed for stochastic solvers; rejected (by the registry) for
        deterministic ones.
    strict:
        Raise instead of returning a partial schedule when fewer than
        ``k`` assignments fit.
    params:
        Extra solver-constructor keywords (``{"steps": 500}`` for SA,
        ``{"beam_width": 8}`` for beam search, ...).
    label:
        Optional caller tag echoed on the response (useful when fanning
        out ``solve_many`` batches).
    locks:
        Organizer pin/forbid constraints
        (:class:`~repro.interactive.locks.LockSet`, or its ``to_dict``
        mapping form); ``None`` or an empty lock set solves unlocked,
        bit-identically to a lock-free request.
    """

    k: int
    solver: str = "grd"
    engine: EngineSpec | str | None = None
    seed: int | None = None
    strict: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str | None = None
    locks: LockSet | Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")
        if self.engine is not None:
            object.__setattr__(self, "engine", EngineSpec.coerce(self.engine))
        # freeze a private copy so a caller mutating their dict afterwards
        # cannot retroactively change an already-issued request
        object.__setattr__(self, "params", dict(self.params))
        # canonicalize to a frozen LockSet (or None when nothing binds)
        object.__setattr__(self, "locks", LockSet.coerce(self.locks))

    def replace(self, **changes: Any) -> SolveRequest:
        """A copy with ``changes`` applied (dataclasses.replace shorthand)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SolveResponse:
    """The outcome of serving one :class:`SolveRequest`.

    Carries the original request, the resolved :class:`EngineSpec` the
    engine actually ran under, whether that engine came from the session
    cache, and the full :class:`ScheduleResult`.
    """

    request: SolveRequest
    result: ScheduleResult
    engine: EngineSpec
    reused_engine: bool = False

    @property
    def solver(self) -> str:
        """Display name of the solver that produced the result."""
        return self.result.solver

    @property
    def schedule(self) -> Schedule:
        return self.result.schedule

    @property
    def utility(self) -> float:
        return self.result.utility

    @property
    def runtime_seconds(self) -> float:
        return self.result.runtime_seconds

    @property
    def label(self) -> str | None:
        return self.request.label

    def summary(self) -> str:
        prefix = f"[{self.label}] " if self.label else ""
        return prefix + self.result.summary()
