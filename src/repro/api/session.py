"""A reusable scheduling session: one instance, many queries.

The paper's evaluation is one-shot (build instance, run each method,
plot), but a production deployment answers *streams* of queries against
one large user×event instance: "schedule 20 events", "what if k were 30",
"how does SA compare", "what does hiring more staff buy".  Re-paying
engine construction per query is pure waste — a vectorized engine
allocates per-interval mass vectors and a sparse engine lazily
accumulates competing-mass columns, both of which are query-independent.

:class:`ScheduleSession` is that serving loop: it holds the instance,
memoizes one engine per :class:`~repro.core.engine.EngineSpec`, resets it
between requests (reset is O(state), construction is O(instance)), and
resolves solvers through the registry.  Alongside each engine it keeps a
:class:`~repro.core.scoreplane.ScorePlane` of empty-schedule Eq. 4
scores: the instance is immutable, so the matrix every GRD-family solver
sweeps cold on its first move is computed once per spec and served warm
to every subsequent request.  Results are *bit-identical* to one-shot
solves — the session-reuse parity suite in ``tests/api/test_session.py``
enforces it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.algorithms.base import Scheduler
from repro.algorithms.registry import SolverRegistry, solver_registry
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule
from repro.core.scoreplane import ScorePlane
from repro.interactive.gaps import GapReport, build_gap_report
from repro.interactive.locks import LockSet
from repro.interactive.versions import ScheduleVersion, VersionDiff, VersionStore

from repro.api.requests import SolveRequest, SolveResponse

__all__ = ["ScheduleSession", "solve_once"]


class ScheduleSession:
    """Serve repeated solve / what-if / report queries over one instance.

    Parameters
    ----------
    instance:
        The problem instance all requests run against.
    default_engine:
        :class:`EngineSpec` (or kind string) used when a request does not
        name one; defaults to the vectorized engine.
    registry:
        Solver catalog; the process-wide registry unless a test injects
        its own.
    """

    def __init__(
        self,
        instance: SESInstance,
        default_engine: EngineSpec | str | None = None,
        registry: SolverRegistry | None = None,
    ):
        self._instance = instance
        self._default_spec = EngineSpec.coerce(default_engine)
        self._registry = registry if registry is not None else solver_registry
        # keyed by the full (frozen, hashable) EngineSpec: the backend
        # field does not change how an engine is *built* today, but two
        # specs must never share an engine — a divergence in any future
        # spec field would silently leak plane state across them
        self._engines: dict[EngineSpec, ScoreEngine] = {}
        self._planes: dict[EngineSpec, ScorePlane] = {}
        self._engines_built = 0
        self._requests_served = 0
        self._versions = VersionStore()

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_file(
        cls,
        path: Any,
        default_engine: EngineSpec | str | None = None,
    ) -> ScheduleSession:
        """Open a session over an instance JSON file (see repro.data)."""
        from repro.data.serialization import load_instance

        return cls(load_instance(path), default_engine=default_engine)

    @classmethod
    def from_config(
        cls,
        config: Any,
        root_seed: int = 0,
        default_engine: EngineSpec | str | None = None,
    ) -> ScheduleSession:
        """Open a session over a generated workload.

        ``config`` is an :class:`~repro.workloads.config.ExperimentConfig`;
        when ``default_engine`` is given, the workload's ``mu`` storage is
        rewritten to the spec's ``interest_backend`` — pass
        ``EngineSpec(kind=..., backend=...)`` to pin a storage/engine
        pairing explicitly (e.g. the sparse engine over dense storage).
        """
        from repro.workloads.generator import WorkloadGenerator

        if default_engine is not None:
            spec = EngineSpec.coerce(default_engine)
            if config.interest_backend != spec.interest_backend:
                config = config.with_backend(spec.interest_backend)
        return cls(
            WorkloadGenerator(root_seed=root_seed).build(config),
            default_engine=default_engine,
        )

    # -- introspection --------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        return self._instance

    @property
    def default_engine(self) -> EngineSpec:
        return self._default_spec

    @property
    def registry(self) -> SolverRegistry:
        """The solver catalog requests are resolved against."""
        return self._registry

    @property
    def engines_built(self) -> int:
        """Engine constructions so far (== distinct specs served)."""
        return self._engines_built

    @property
    def requests_served(self) -> int:
        return self._requests_served

    def describe(self) -> str:
        return (
            f"{self._instance.describe()} | default engine "
            f"{self._default_spec.kind} | {self._engines_built} engine(s) "
            f"cached, {self._requests_served} request(s) served"
        )

    # -- the serving hot path -------------------------------------------
    def engine_for(self, spec: EngineSpec | str | None = None) -> ScoreEngine:
        """The cached engine for ``spec``, constructing it on first use."""
        resolved = (
            self._default_spec if spec is None else EngineSpec.coerce(spec)
        )
        engine = self._engines.get(resolved)
        if engine is None:
            engine = resolved.build(self._instance)
            self._engines[resolved] = engine
            self._engines_built += 1
        return engine

    def plane_for(self, spec: EngineSpec | str | None = None) -> ScorePlane:
        """The cached warm :class:`ScorePlane` over ``spec``'s engine.

        Filled on the first solve that reads it; the session instance is
        immutable, so the cached matrix stays valid for the session's
        lifetime and every later solve warm-starts from it.
        """
        resolved = (
            self._default_spec if spec is None else EngineSpec.coerce(spec)
        )
        plane = self._planes.get(resolved)
        if plane is None:
            plane = ScorePlane(self.engine_for(resolved))
            self._planes[resolved] = plane
        return plane

    def solver_for(self, request: SolveRequest) -> Scheduler:
        """Build the request's solver via the registry (fresh per request,
        so stochastic state never leaks between queries)."""
        info = self._registry.get(request.solver)
        if not info.one_shot:
            raise ValueError(
                f"solver {request.solver!r} is a {info.kind}, not a one-shot "
                f"solver; construct {info.cls.__name__} via "
                f"solver_registry.create/direct instantiation instead"
            )
        spec = (
            EngineSpec.coerce(request.engine)
            if request.engine is not None
            else self._default_spec
        )
        return self._registry.create(
            request.solver,
            engine=spec,
            seed=request.seed,
            strict=request.strict,
            **request.params,
        )

    def solve(
        self, request: SolveRequest | None = None, /, **query: Any
    ) -> SolveResponse:
        """Serve one request; accepts a :class:`SolveRequest` or its fields.

        ``session.solve(k=20)`` and
        ``session.solve(SolveRequest(k=20))`` are equivalent.
        """
        if request is None:
            request = SolveRequest(**query)
        elif query:
            raise TypeError(
                "pass either a SolveRequest or keyword fields, not both"
            )
        spec = (
            EngineSpec.coerce(request.engine)
            if request.engine is not None
            else self._default_spec
        )
        reused = spec in self._engines
        plane = self.plane_for(spec)
        solver = self.solver_for(request)
        result = solver.solve(
            self._instance, request.k, plane=plane, locks=request.locks
        )
        self._requests_served += 1
        return SolveResponse(
            request=request, result=result, engine=spec, reused_engine=reused
        )

    def solve_many(
        self, requests: Iterable[SolveRequest]
    ) -> list[SolveResponse]:
        """Serve a batch of requests in order, sharing cached engines."""
        return [self.solve(request) for request in requests]

    # -- organizer-in-the-loop ------------------------------------------
    def gap_report(
        self,
        schedule: Schedule | SolveResponse,
        k: int | None = None,
        *,
        engine: EngineSpec | str | None = None,
        locks: LockSet | None = None,
        limit: int | None = None,
    ) -> GapReport:
        """Explain what a draft schedule leaves on the table.

        Reads marginal gains straight off the session's warm
        :class:`ScorePlane` for ``engine``'s spec — after any solve on
        that spec, a report costs zero extra Eq. 4 evaluations.  Pass
        the :class:`SolveResponse` of a previous solve (its request's
        ``k`` and locks are reused) or a bare schedule plus ``k``.
        """
        if isinstance(schedule, SolveResponse):
            response = schedule
            schedule = response.schedule
            if k is None:
                k = response.result.requested_k
            if locks is None:
                locks = response.request.locks
            if engine is None:
                engine = response.engine
        elif k is None:
            raise TypeError("k is required when passing a bare schedule")
        plane = self.plane_for(engine)
        self._requests_served += 1
        return build_gap_report(
            self._instance, schedule, k, plane, locks=locks, limit=limit
        )

    def save_version(
        self,
        name: str,
        response: SolveResponse,
        *,
        overwrite: bool = False,
    ) -> ScheduleVersion:
        """Snapshot a solve under ``name`` for later diffing."""
        return self._versions.save(
            name,
            response.schedule,
            response.utility,
            k=response.result.requested_k,
            solver=response.solver,
            overwrite=overwrite,
        )

    def version(self, name: str) -> ScheduleVersion:
        """A saved snapshot by name (:class:`KeyError` when unknown)."""
        return self._versions.get(name)

    def versions(self) -> tuple[str, ...]:
        """Saved version names in save order."""
        return self._versions.names()

    def diff_versions(self, base: str, target: str | None = None) -> VersionDiff:
        """What changed from ``base`` to ``target`` (default: latest save)."""
        return self._versions.diff(base, target)

    # -- streaming ------------------------------------------------------
    def stream(
        self,
        trace: Any,
        policy: Any = "incremental",
        k: int | None = None,
        engine: EngineSpec | str | None = None,
        *,
        oracle_every: int | None = None,
        oracle_solver: str = "grd-heap",
        locks: LockSet | None = None,
        **policy_params: Any,
    ) -> Any:
        """Replay a change trace against this session's instance.

        ``trace`` is a :class:`repro.stream.Trace`; ``policy`` a
        maintenance-policy name (``"incremental"``, ``"periodic-rebuild"``,
        ``"hybrid"``) or a ready policy object, with ``policy_params``
        forwarded to construction.  ``k`` defaults to the trace's
        ``initial_k`` and ``engine`` to the session default.  Returns the
        :class:`repro.stream.StreamResult` observation record.

        The replay materializes its own
        :class:`~repro.core.live.LiveInstance` over the session's
        instance and applies every change op as an O(delta) in-place
        mutation of that private view (the immutable session instance is
        never touched), so the session keeps serving batch queries
        against the original state afterwards.  The returned result's
        ``freezes`` field counts how many O(instance) snapshots the
        replay paid for — 0 on the pure incremental fast path.
        """
        from repro.stream import StreamDriver

        driver = StreamDriver(
            self._instance,
            k=k,
            policy=policy,
            engine=engine if engine is not None else self._default_spec,
            oracle_every=oracle_every,
            oracle_solver=oracle_solver,
            locks=locks,
            **policy_params,
        )
        result = driver.run(trace)
        self._requests_served += 1
        return result

    # -- analysis conveniences ------------------------------------------
    def report(self, schedule: Schedule) -> Any:
        """Full :class:`~repro.harness.inspect.ScheduleReport` for a schedule."""
        from repro.harness.inspect import ScheduleReport

        return ScheduleReport(self._instance, schedule)

    def what_if_theta(
        self, k: int, thetas: Sequence[float], solver: str = "grd", **params: Any
    ) -> Any:
        """Utility curve as the staffing budget varies (see harness.whatif)."""
        from repro.harness import whatif

        return whatif.sweep_theta(
            self._instance, k, thetas, solver=self._whatif_solver(solver, params)
        )

    def what_if_locations(
        self,
        k: int,
        location_counts: Sequence[int],
        solver: str = "grd",
        **params: Any,
    ) -> Any:
        """Utility curve as the venue budget varies (see harness.whatif)."""
        from repro.harness import whatif

        return whatif.sweep_locations(
            self._instance,
            k,
            location_counts,
            solver=self._whatif_solver(solver, params),
        )

    def competition_cost(
        self, k: int, competing_index: int, solver: str = "grd", **params: Any
    ) -> float:
        """Attendance recovered if one competing event vanished."""
        from repro.harness import whatif

        return whatif.competition_cost(
            self._instance,
            k,
            competing_index,
            solver=self._whatif_solver(solver, params),
        )

    def _whatif_solver(self, solver: str, params: dict[str, Any]) -> Scheduler:
        return self._registry.create(
            solver, engine=self._default_spec, **params
        )


def solve_once(
    instance: SESInstance, request: SolveRequest | None = None, /, **query: Any
) -> SolveResponse:
    """One-shot convenience: a throwaway session serving a single request."""
    return ScheduleSession(instance).solve(request, **query)
