"""``repro.api`` — the single public surface of the SES library.

Everything a client needs to schedule events lives here:

* :data:`solver_registry` / :func:`register_solver` — the catalog of all
  solvers with their capabilities (the CLI, the sweep runner and the
  session all derive their choices from it);
* :class:`EngineSpec` — typed score-engine configuration replacing the
  old stringly ``engine_kind``;
* :class:`SolveRequest` / :class:`SolveResponse` — frozen query/result
  value objects;
* :class:`ScheduleSession` — the serving loop: load an instance once,
  answer many solve / what-if / report queries, amortizing engine
  construction across requests;
* :func:`solve_once` — one-shot convenience for scripts.

Quickstart::

    from repro.api import ScheduleSession, SolveRequest

    session = ScheduleSession(instance)
    best = session.solve(k=20)                         # GRD by default
    batch = session.solve_many([
        SolveRequest(k=20, solver="grd-heap"),
        SolveRequest(k=20, solver="sa", seed=7, params={"steps": 500}),
    ])
"""

from repro.algorithms.base import ScheduleResult, Scheduler, SolverStats
from repro.algorithms.registry import (
    SolverInfo,
    SolverRegistry,
    register_solver,
    solver_registry,
)
from repro.core.engine import ENGINE_KINDS, EngineSpec, make_engine

from repro.api.requests import SolveRequest, SolveResponse
from repro.api.session import ScheduleSession, solve_once

__all__ = [
    "ENGINE_KINDS",
    "EngineSpec",
    "ScheduleResult",
    "ScheduleSession",
    "Scheduler",
    "SolveRequest",
    "SolveResponse",
    "SolverInfo",
    "SolverRegistry",
    "SolverStats",
    "make_engine",
    "register_solver",
    "solve_once",
    "solver_registry",
]
