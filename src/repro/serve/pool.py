"""PlanePool: single-writer warm primaries, copy-on-write read replicas.

The serving problem: :class:`~repro.api.session.ScheduleSession` keeps
exactly one engine + one warm :class:`~repro.core.scoreplane.ScorePlane`
per :class:`~repro.core.engine.EngineSpec`, so a second concurrent client
either races on shared dirty-row state or rebuilds from cold.  The pool
resolves it with the single-writer / many-reader split the pretalx
serving stack uses for versioned schedules:

* **one primary per spec** — a base plane whose engine is built over the
  pool's shared :class:`~repro.core.live.LiveInstance`.  All mutation
  flows through :meth:`write`, which applies the mutator under the pool
  lock, feeds the returned :class:`~repro.core.live.LiveDelta` to every
  primary (O(delta) — cells stay warm across versions), and bumps the
  generation counter;
* **forked replicas for readers** — :meth:`acquire` hands out an
  independent :meth:`ScorePlane.fork` whose engine is a
  :meth:`~repro.core.engine.ScoreEngine.clone` of a per-(spec, version)
  template built over the *frozen snapshot* of the current version.
  Replicas are therefore completely isolated from later writer
  mutations: an in-flight solve finishes safely against its immutable
  version instance, and its response is stamped with the generation it
  saw;
* **generation invalidation, never silent staleness** — every replica
  records the generation it was forked at; :meth:`acquire` and
  :meth:`release` discard replicas whose generation no longer matches
  (counted in :attr:`PoolStats.invalidations`), so a reader can observe
  at most the version it leased, never a torn mix;
* **bounded reuse** — released replicas park on a per-spec free list
  (most recently used last); the list is capped at ``max_replicas`` and
  trimmed LRU-first (:attr:`PoolStats.evictions`).

Forking is O(cells): the primary is brought current once (its own
accounting absorbs the fill/refresh), then the matrix is copied and the
template engine cloned — zero engine score evaluations on the replica.
``PoolStats.replica_cold_cells`` aggregates every replica's
``cells_filled``; the serving benchmark's CI check asserts it stays 0.

Specs with ``shards`` set build :class:`~repro.shard.engine.ShardedEngine`
primaries transparently: writes still route one delta through the pool
lock (the sharded engine localizes it to the blocks it touches), and
:meth:`PlanePool.primary_stats` exposes the shard fan-out counters so
serving tests can assert fills crossed the shard boundary exactly once.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.instance import SESInstance
from repro.core.live import LiveDelta, LiveInstance
from repro.core.scoreplane import ScorePlane

__all__ = ["PlanePool", "PoolStats", "Replica"]


@dataclass(frozen=True)
class PoolStats:
    """Counter snapshot of the pool's fork/reuse economics (JSON-ready)."""

    forks: int
    hits: int
    invalidations: int
    evictions: int
    rebuilds: int
    generation: int
    freezes: int
    replica_cold_cells: int

    def as_dict(self) -> dict[str, int]:
        return {
            "forks": self.forks,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "rebuilds": self.rebuilds,
            "generation": self.generation,
            "freezes": self.freezes,
            "replica_cold_cells": self.replica_cold_cells,
        }


class Replica:
    """One leased read replica: a forked plane pinned to a version.

    ``plane`` wraps a private engine clone built over ``frozen`` — the
    immutable snapshot of the generation the replica was forked at — so
    solves through it are race-free by construction.  ``pool_hit`` tells
    whether this lease was served from the free list (True) or forked
    fresh (False).
    """

    __slots__ = ("spec", "plane", "frozen", "generation", "pool_hit",
                 "_cold_cells_counted")

    def __init__(
        self,
        spec: EngineSpec,
        plane: ScorePlane,
        frozen: SESInstance,
        generation: int,
    ) -> None:
        self.spec = spec
        self.plane = plane
        self.frozen = frozen
        self.generation = generation
        self.pool_hit = False
        self._cold_cells_counted = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica({self.spec.kind}, generation={self.generation}, "
            f"pool_hit={self.pool_hit})"
        )


class PlanePool:
    """Warm plane/engine pool over one shared live instance.

    Parameters
    ----------
    live:
        The single-writer live state all primaries observe.  Every
        mutation must flow through :meth:`write`; mutating ``live``
        behind the pool's back leaves primaries silently stale.
    max_replicas:
        Cap on *retained* free replicas per spec.  Leases beyond the cap
        still succeed (a fresh fork is handed out, never blocking); the
        cap only bounds how many parked replicas the pool keeps warm.
    """

    def __init__(self, live: LiveInstance, *, max_replicas: int = 8) -> None:
        if max_replicas < 1:
            raise ValueError(
                f"max_replicas must be positive, got {max_replicas}"
            )
        self._live = live
        self._max_replicas = max_replicas
        self._lock = threading.RLock()
        self._generation = 0
        self._primaries: dict[EngineSpec, ScorePlane] = {}
        # per-(spec) template engines over the current version's frozen
        # snapshot; cleared on every write and rebuilt lazily (counted)
        self._templates: dict[EngineSpec, ScoreEngine] = {}
        self._free: dict[EngineSpec, list[Replica]] = {}
        self._forks = 0
        self._hits = 0
        self._invalidations = 0
        self._evictions = 0
        self._rebuilds = 0
        self._replica_cold_cells = 0

    # -- introspection ---------------------------------------------------
    @property
    def generation(self) -> int:
        """Version counter: bumped once per :meth:`write`."""
        with self._lock:
            return self._generation

    @property
    def max_replicas(self) -> int:
        return self._max_replicas

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                forks=self._forks,
                hits=self._hits,
                invalidations=self._invalidations,
                evictions=self._evictions,
                rebuilds=self._rebuilds,
                generation=self._generation,
                freezes=self._live.freezes,
                replica_cold_cells=self._aggregate_cold_cells(),
            )

    def primary_stats(self) -> dict[str, dict[str, int]]:
        """Per-spec primary plane accounting, taken under the pool lock.

        Keys are ``spec.kind`` (``"sparse@4"`` for a spec with ``shards=4``).
        Sharded primaries fold in the engine's shard counters
        (``fanouts`` / ``merged_partials`` / ``blocks`` / ``shards``) — the
        serving-layer evidence that each plane fill crossed the shard
        boundary exactly once per flush, even with the primary mutating
        under the single-writer lock.
        """
        with self._lock:
            out: dict[str, dict[str, int]] = {}
            for spec, primary in self._primaries.items():
                stats = dict(primary.stats())
                engine_stats = getattr(primary.engine, "stats", None)
                if callable(engine_stats):
                    stats.update(engine_stats())
                key = (
                    spec.kind
                    if spec.shards is None
                    else f"{spec.kind}@{spec.shards}"
                )
                out[key] = stats
            return out

    def _aggregate_cold_cells(self) -> int:
        total = self._replica_cold_cells
        for replicas in self._free.values():
            for replica in replicas:
                total += (
                    replica.plane.cells_filled - replica._cold_cells_counted
                )
        return total

    # -- the write path (single writer) ----------------------------------
    def write(self, mutate: Callable[[LiveInstance], LiveDelta]) -> LiveDelta:
        """Apply one structural mutation and re-warm the pool around it.

        ``mutate`` receives the live instance and must return the
        :class:`LiveDelta` its mutator produced.  Under the pool lock the
        delta is fed to every primary (O(delta) cell surgery, no
        re-sweep), version templates are dropped, the generation is
        bumped, and parked replicas — now stale — are discarded.
        """
        with self._lock:
            delta = mutate(self._live)
            for primary in self._primaries.values():
                primary.apply_delta(delta)
            self._templates.clear()
            self._generation += 1
            for replicas in self._free.values():
                for replica in replicas:
                    self._retire(replica)
                    self._invalidations += 1
                replicas.clear()
            return delta

    def version_instance(self) -> SESInstance:
        """The immutable snapshot of the current generation.

        Frozen lazily, at most once per generation, under the pool lock —
        the single sanctioned O(instance) step on the read path (what-if
        and report queries run against it; solves additionally warm-start
        from forked replicas).
        """
        with self._lock:
            return self._live.freeze()  # ses-lint: disable=freeze-ban

    # -- the read path (leases) ------------------------------------------
    def acquire(self, spec: EngineSpec | str | None = None) -> Replica:
        """Lease a replica of the current generation (never stale).

        Served from the free list when a same-generation replica is
        parked there (a *pool hit*); otherwise forked fresh from the
        spec's primary in O(cells).  Pair with :meth:`release`, or use
        :meth:`lease`.
        """
        resolved = EngineSpec.coerce(spec)
        with self._lock:
            free = self._free.get(resolved)
            while free:
                replica = free.pop()  # most recently used first
                if replica.generation == self._generation:
                    self._hits += 1
                    replica.pool_hit = True
                    return replica
                self._retire(replica)
                self._invalidations += 1
            self._forks += 1
            return self._fork(resolved)

    def release(self, replica: Replica) -> None:
        """Return a lease; parked for reuse unless stale or over the cap."""
        with self._lock:
            if replica.generation != self._generation:
                self._retire(replica)
                self._invalidations += 1
                return
            free = self._free.setdefault(replica.spec, [])
            free.append(replica)
            if len(free) > self._max_replicas:
                self._retire(free.pop(0))  # least recently used
                self._evictions += 1

    class _Lease:
        __slots__ = ("_pool", "_spec", "replica")

        def __init__(self, pool: PlanePool, spec: EngineSpec | str | None):
            self._pool = pool
            self._spec = spec

        def __enter__(self) -> Replica:
            self.replica = self._pool.acquire(self._spec)
            return self.replica

        def __exit__(self, *exc_info: object) -> None:
            self._pool.release(self.replica)

    def lease(self, spec: EngineSpec | str | None = None) -> "PlanePool._Lease":
        """Context manager: ``with pool.lease(spec) as replica: ...``."""
        return PlanePool._Lease(self, spec)

    # -- internals (lock held) -------------------------------------------
    def _primary_for(self, spec: EngineSpec) -> ScorePlane:
        primary = self._primaries.get(spec)
        if primary is None:
            # built over the live view, so later writes keep it current
            # through apply_delta instead of rebuilding
            primary = ScorePlane(spec.build(self._live))  # type: ignore[arg-type]
            self._primaries[spec] = primary
        return primary

    def _template_for(self, spec: EngineSpec) -> ScoreEngine:
        template = self._templates.get(spec)
        if template is None:
            template = spec.build(self.version_instance())
            self._templates[spec] = template
            self._rebuilds += 1
        return template

    def _fork(self, spec: EngineSpec) -> Replica:
        primary = self._primary_for(spec)
        # bring the primary current once — its own engine pays any cold
        # fill / dirty-row refresh; every replica then copies warm cells
        primary.ensure()
        plane = primary.fork(self._template_for(spec).clone())
        return Replica(
            spec=spec,
            plane=plane,
            frozen=self.version_instance(),
            generation=self._generation,
        )

    def _retire(self, replica: Replica) -> None:
        """Fold a discarded replica's accounting into the pool totals."""
        self._replica_cold_cells += (
            replica.plane.cells_filled - replica._cold_cells_counted
        )
        replica._cold_cells_counted = replica.plane.cells_filled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            parked = sum(len(r) for r in self._free.values())
            return (
                f"PlanePool(generation={self._generation}, "
                f"primaries={len(self._primaries)}, parked={parked})"
            )
