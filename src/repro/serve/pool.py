"""PlanePool: single-writer warm primaries, copy-on-write read replicas.

The serving problem: :class:`~repro.api.session.ScheduleSession` keeps
exactly one engine + one warm :class:`~repro.core.scoreplane.ScorePlane`
per :class:`~repro.core.engine.EngineSpec`, so a second concurrent client
either races on shared dirty-row state or rebuilds from cold.  The pool
resolves it with the single-writer / many-reader split the pretalx
serving stack uses for versioned schedules:

* **one primary per spec** — a base plane whose engine is built over the
  pool's shared :class:`~repro.core.live.LiveInstance`.  All mutation
  flows through :meth:`write`, which applies the mutator under the pool
  lock, feeds the returned :class:`~repro.core.live.LiveDelta` to every
  primary (O(delta) — cells stay warm across versions), and bumps the
  generation counter;
* **forked replicas for readers** — :meth:`acquire` hands out an
  independent :meth:`ScorePlane.fork` whose engine is a
  :meth:`~repro.core.engine.ScoreEngine.clone` of a per-(spec, version)
  template built over the *frozen snapshot* of the current version.
  Replicas are therefore completely isolated from later writer
  mutations: an in-flight solve finishes safely against its immutable
  version instance, and its response is stamped with the generation it
  saw;
* **generation invalidation, never silent staleness** — every replica
  records the generation it was forked at; :meth:`acquire` and
  :meth:`release` discard replicas whose generation no longer matches
  (counted in :attr:`PoolStats.invalidations`), so a reader can observe
  at most the version it leased, never a torn mix;
* **bounded reuse** — released replicas park on a per-spec free list
  (most recently used last); the list is capped at ``max_replicas`` and
  trimmed LRU-first (:attr:`PoolStats.evictions`).

Forking is O(cells): the primary is brought current once (its own
accounting absorbs the fill/refresh), then the matrix is copied and the
template engine cloned — zero engine score evaluations on the replica.
``PoolStats.replica_cold_cells`` aggregates every replica's
``cells_filled``; the serving benchmark's CI check asserts it stays 0.

Specs with ``shards`` set build :class:`~repro.shard.engine.ShardedEngine`
primaries transparently: writes still route one delta through the pool
lock (the sharded engine localizes it to the blocks it touches), and
:meth:`PlanePool.primary_stats` exposes the shard fan-out counters so
serving tests can assert fills crossed the shard boundary exactly once.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.instance import SESInstance
from repro.core.live import LiveDelta, LiveInstance
from repro.core.scoreplane import ScorePlane

if TYPE_CHECKING:
    from repro.resilience.faults import FaultInjector, FaultPlan

__all__ = ["PlanePool", "PoolStats", "Replica"]


@dataclass(frozen=True)
class PoolStats:
    """Counter snapshot of the pool's fork/reuse economics (JSON-ready)."""

    forks: int
    hits: int
    invalidations: int
    evictions: int
    rebuilds: int
    generation: int
    freezes: int
    replica_cold_cells: int
    #: Leases served stale from the last-good stash because the writer
    #: held the pool lock past the caller's ``max_wait_s``.
    degraded: int = 0
    #: Injected writer stalls absorbed while holding the writer lock.
    writer_stalls: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "forks": self.forks,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "rebuilds": self.rebuilds,
            "generation": self.generation,
            "freezes": self.freezes,
            "replica_cold_cells": self.replica_cold_cells,
            "degraded": self.degraded,
            "writer_stalls": self.writer_stalls,
        }


class Replica:
    """One leased read replica: a forked plane pinned to a version.

    ``plane`` wraps a private engine clone built over ``frozen`` — the
    immutable snapshot of the generation the replica was forked at — so
    solves through it are race-free by construction.  ``pool_hit`` tells
    whether this lease was served from the free list (True) or forked
    fresh (False).  ``staleness`` is 0 on every normal lease; a degraded
    lease (served from the last-good stash while the writer held the
    lock past ``max_wait_s``) carries the number of writes begun since
    the stash's generation.
    """

    __slots__ = ("spec", "plane", "frozen", "generation", "pool_hit",
                 "staleness", "_cold_cells_counted")

    def __init__(
        self,
        spec: EngineSpec,
        plane: ScorePlane,
        frozen: SESInstance,
        generation: int,
    ) -> None:
        self.spec = spec
        self.plane = plane
        self.frozen = frozen
        self.generation = generation
        self.pool_hit = False
        self.staleness = 0
        self._cold_cells_counted = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica({self.spec.kind}, generation={self.generation}, "
            f"pool_hit={self.pool_hit})"
        )


class PlanePool:
    """Warm plane/engine pool over one shared live instance.

    Parameters
    ----------
    live:
        The single-writer live state all primaries observe.  Every
        mutation must flow through :meth:`write`; mutating ``live``
        behind the pool's back leaves primaries silently stale.
    max_replicas:
        Cap on *retained* free replicas per spec.  Leases beyond the cap
        still succeed (a fresh fork is handed out, never blocking); the
        cap only bounds how many parked replicas the pool keeps warm.
    generation:
        Starting version counter; nonzero only when a recovered serving
        session re-creates the pool at its checkpointed generation so
        resumed version stamps match an uninterrupted run's.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; its
        ``writer_stall`` probability injects a deterministic sleep
        *inside* the writer lock on :meth:`write` — the exact scenario
        ``max_wait_s`` degraded reads exist for.
    keep_stale_replica:
        Keep one extra "last good" replica per spec (refreshed on the
        first fork of each generation) that :meth:`acquire` can serve —
        staleness-stamped — when the writer lock cannot be taken within
        ``max_wait_s``.  Off by default: it costs one extra fork per
        (spec, generation).
    """

    def __init__(
        self,
        live: LiveInstance,
        *,
        max_replicas: int = 8,
        generation: int = 0,
        fault_plan: "FaultPlan | None" = None,
        keep_stale_replica: bool = False,
    ) -> None:
        if max_replicas < 1:
            raise ValueError(
                f"max_replicas must be positive, got {max_replicas}"
            )
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        self._live = live
        self._max_replicas = max_replicas
        self._lock = threading.RLock()
        self._generation = generation
        self._primaries: dict[EngineSpec, ScorePlane] = {}
        # per-(spec) template engines over the current version's frozen
        # snapshot; cleared on every write and rebuilt lazily (counted)
        self._templates: dict[EngineSpec, ScoreEngine] = {}
        self._free: dict[EngineSpec, list[Replica]] = {}
        self._forks = 0
        self._hits = 0
        self._invalidations = 0
        self._evictions = 0
        self._rebuilds = 0
        self._replica_cold_cells = 0
        self._injector: "FaultInjector | None" = (
            None if fault_plan is None else fault_plan.injector()
        )
        self._keep_stale = keep_stale_replica
        # the stale stash lives under its own lock so a degraded acquire
        # never waits on the (possibly stalled) writer lock; code paths
        # never hold _stale_lock while waiting for _lock, so the
        # _lock -> _stale_lock ordering in _fork cannot deadlock
        self._stale_lock = threading.Lock()
        self._stale: dict[EngineSpec, Replica] = {}
        self._writes_begun = generation
        self._degraded = 0
        self._writer_stalls = 0
        self._stale_cold_cells = 0

    # -- introspection ---------------------------------------------------
    @property
    def generation(self) -> int:
        """Version counter: bumped once per :meth:`write`."""
        with self._lock:
            return self._generation

    @property
    def max_replicas(self) -> int:
        return self._max_replicas

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                forks=self._forks,
                hits=self._hits,
                invalidations=self._invalidations,
                evictions=self._evictions,
                rebuilds=self._rebuilds,
                generation=self._generation,
                freezes=self._live.freezes,
                replica_cold_cells=self._aggregate_cold_cells(),
                degraded=self._degraded,
                writer_stalls=self._writer_stalls,
            )

    def primary_stats(self) -> dict[str, dict[str, int]]:
        """Per-spec primary plane accounting, taken under the pool lock.

        Keys are ``spec.kind`` (``"sparse@4"`` for a spec with ``shards=4``).
        Sharded primaries fold in the engine's shard counters
        (``fanouts`` / ``merged_partials`` / ``blocks`` / ``shards``) — the
        serving-layer evidence that each plane fill crossed the shard
        boundary exactly once per flush, even with the primary mutating
        under the single-writer lock.
        """
        with self._lock:
            out: dict[str, dict[str, int]] = {}
            for spec, primary in self._primaries.items():
                stats = dict(primary.stats())
                engine_stats = getattr(primary.engine, "stats", None)
                if callable(engine_stats):
                    stats.update(engine_stats())
                key = (
                    spec.kind
                    if spec.shards is None
                    else f"{spec.kind}@{spec.shards}"
                )
                out[key] = stats
            return out

    def fault_stats(self) -> dict[str, int]:
        """Injected-fault counters (``site:kind``) when a plan is armed."""
        return {} if self._injector is None else self._injector.counts()

    def _aggregate_cold_cells(self) -> int:
        total = self._replica_cold_cells + self._stale_cold_cells
        for replicas in self._free.values():
            for replica in replicas:
                total += (
                    replica.plane.cells_filled - replica._cold_cells_counted
                )
        return total

    # -- the write path (single writer) ----------------------------------
    def write(self, mutate: Callable[[LiveInstance], LiveDelta]) -> LiveDelta:
        """Apply one structural mutation and re-warm the pool around it.

        ``mutate`` receives the live instance and must return the
        :class:`LiveDelta` its mutator produced.  Under the pool lock the
        delta is fed to every primary (O(delta) cell surgery, no
        re-sweep), version templates are dropped, the generation is
        bumped, and parked replicas — now stale — are discarded.
        """
        with self._stale_lock:
            # counted before the writer lock is taken so degraded reads
            # can measure how far behind the stash is mid-write
            self._writes_begun += 1
        with self._lock:
            if self._injector is not None and self._injector.draw_writer(
                "pool.write"
            ):
                self._writer_stalls += 1
                # sleep *inside* the lock: this is the stalled writer the
                # degraded read path is designed to survive
                time.sleep(self._injector.plan.stall_seconds)
            delta = mutate(self._live)
            for primary in self._primaries.values():
                primary.apply_delta(delta)
            self._templates.clear()
            self._generation += 1
            for replicas in self._free.values():
                for replica in replicas:
                    self._retire(replica)
                    self._invalidations += 1
                replicas.clear()
            return delta

    def version_instance(self) -> SESInstance:
        """The immutable snapshot of the current generation.

        Frozen lazily, at most once per generation, under the pool lock —
        the single sanctioned O(instance) step on the read path (what-if
        and report queries run against it; solves additionally warm-start
        from forked replicas).
        """
        with self._lock:
            return self._live.freeze()  # ses-lint: disable=freeze-ban

    # -- the read path (leases) ------------------------------------------
    def acquire(
        self,
        spec: EngineSpec | str | None = None,
        *,
        max_wait_s: float | None = None,
    ) -> Replica:
        """Lease a replica of the current generation.

        Served from the free list when a same-generation replica is
        parked there (a *pool hit*); otherwise forked fresh from the
        spec's primary in O(cells).  Pair with :meth:`release`, or use
        :meth:`lease`.

        ``max_wait_s`` bounds how long the lease waits on the writer
        lock.  On timeout — a stalled or slow writer — the lease is
        served from the spec's last-good stash instead
        (``keep_stale_replica=True``), stamped with its
        :attr:`Replica.staleness`; with no stash available the call
        falls back to waiting.
        """
        resolved = EngineSpec.coerce(spec)
        if max_wait_s is None:
            self._lock.acquire()
        elif not self._lock.acquire(timeout=max_wait_s):
            return self._acquire_stale(resolved)
        try:
            return self._acquire_locked(resolved)
        finally:
            self._lock.release()

    def _acquire_locked(self, resolved: EngineSpec) -> Replica:
        free = self._free.get(resolved)
        while free:
            replica = free.pop()  # most recently used first
            if replica.generation == self._generation:
                self._hits += 1
                replica.pool_hit = True
                return replica
            self._retire(replica)
            self._invalidations += 1
        self._forks += 1
        return self._fork(resolved)

    def _acquire_stale(self, resolved: EngineSpec) -> Replica:
        """Serve a lease from the last-good stash (writer unreachable)."""
        with self._stale_lock:
            stash = self._stale.get(resolved)
            if stash is not None:
                self._degraded += 1
                replica = Replica(
                    spec=resolved,
                    plane=stash.plane.fork(),
                    frozen=stash.frozen,
                    generation=stash.generation,
                )
                replica.staleness = max(
                    1, self._writes_begun - stash.generation
                )
                return replica
        # nothing to degrade to (stash disabled or never warmed): wait
        # for the writer after all rather than failing the read
        with self._lock:
            return self._acquire_locked(resolved)

    def release(self, replica: Replica) -> None:
        """Return a lease; parked for reuse unless stale or over the cap."""
        if replica.staleness:
            # degraded leases never touch the main lock (the writer may
            # still be stalled) and are never parked for reuse; their
            # accounting folds into a counter owned by the stale lock
            with self._stale_lock:
                self._stale_cold_cells += (
                    replica.plane.cells_filled - replica._cold_cells_counted
                )
                replica._cold_cells_counted = replica.plane.cells_filled
            return
        with self._lock:
            if replica.generation != self._generation:
                self._retire(replica)
                self._invalidations += 1
                return
            free = self._free.setdefault(replica.spec, [])
            free.append(replica)
            if len(free) > self._max_replicas:
                self._retire(free.pop(0))  # least recently used
                self._evictions += 1

    class _Lease:
        __slots__ = ("_pool", "_spec", "_max_wait_s", "replica")

        def __init__(
            self,
            pool: PlanePool,
            spec: EngineSpec | str | None,
            max_wait_s: float | None = None,
        ):
            self._pool = pool
            self._spec = spec
            self._max_wait_s = max_wait_s

        def __enter__(self) -> Replica:
            self.replica = self._pool.acquire(
                self._spec, max_wait_s=self._max_wait_s
            )
            return self.replica

        def __exit__(self, *exc_info: object) -> None:
            self._pool.release(self.replica)

    def lease(
        self,
        spec: EngineSpec | str | None = None,
        *,
        max_wait_s: float | None = None,
    ) -> "PlanePool._Lease":
        """Context manager: ``with pool.lease(spec) as replica: ...``."""
        return PlanePool._Lease(self, spec, max_wait_s)

    # -- internals (lock held) -------------------------------------------
    def _primary_for(self, spec: EngineSpec) -> ScorePlane:
        primary = self._primaries.get(spec)
        if primary is None:
            # built over the live view, so later writes keep it current
            # through apply_delta instead of rebuilding
            primary = ScorePlane(spec.build(self._live))  # type: ignore[arg-type]
            self._primaries[spec] = primary
        return primary

    def _template_for(self, spec: EngineSpec) -> ScoreEngine:
        template = self._templates.get(spec)
        if template is None:
            template = spec.build(self.version_instance())
            self._templates[spec] = template
            self._rebuilds += 1
        return template

    def _fork(self, spec: EngineSpec) -> Replica:
        primary = self._primary_for(spec)
        # bring the primary current once — its own engine pays any cold
        # fill / dirty-row refresh; every replica then copies warm cells
        primary.ensure()
        frozen = self.version_instance()
        if self._keep_stale:
            with self._stale_lock:
                stash = self._stale.get(spec)
                if stash is None or stash.generation != self._generation:
                    # refresh the last-good copy for this generation; a
                    # later degraded read forks from it without ever
                    # touching the (possibly stalled) writer lock
                    self._stale[spec] = Replica(
                        spec=spec,
                        plane=primary.fork(self._template_for(spec).clone()),
                        frozen=frozen,
                        generation=self._generation,
                    )
        plane = primary.fork(self._template_for(spec).clone())
        return Replica(
            spec=spec,
            plane=plane,
            frozen=frozen,
            generation=self._generation,
        )

    def _retire(self, replica: Replica) -> None:
        """Fold a discarded replica's accounting into the pool totals."""
        self._replica_cold_cells += (
            replica.plane.cells_filled - replica._cold_cells_counted
        )
        replica._cold_cells_counted = replica.plane.cells_filled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            parked = sum(len(r) for r in self._free.values())
            return (
                f"PlanePool(generation={self._generation}, "
                f"primaries={len(self._primaries)}, parked={parked})"
            )
