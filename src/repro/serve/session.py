"""ServingSession: thread-safe, multi-client front-end over one instance.

:class:`~repro.api.session.ScheduleSession` is the single-threaded
serving loop; this wrapper makes it safe to hammer from many client
threads at once while the instance itself evolves:

* **reads run in parallel** — every :meth:`solve` leases a
  :class:`~repro.serve.pool.Replica` from the shared
  :class:`~repro.serve.pool.PlanePool` and runs the solver against the
  replica's private plane/engine over the immutable snapshot of the
  version it leased.  No read ever touches shared mutable state, so K
  threads produce responses bit-identical to the same requests replayed
  serially (differential-tested in
  ``tests/serve/test_serving_session.py``);
* **mutations are single-writer** — :meth:`add_event`,
  :meth:`cancel_event`, :meth:`update_event_interest` and
  :meth:`add_competing` route through :meth:`PlanePool.write`, which
  applies the change under the pool's writer lock, patches every warm
  primary in O(delta), and bumps the generation so outstanding replicas
  are invalidated on return — never silently reused;
* **what-if / report / stream reads** run against the current version's
  frozen snapshot (:meth:`PlanePool.version_instance`); they build their
  private solvers/drivers per call, so they are reentrant by
  construction.

Every response is stamped with the generation it was computed at
(:attr:`ServedResponse.version`), mirroring pretalx's versioned-schedule
reads: a client can tell exactly which version of the instance answered.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.algorithms.registry import SolverRegistry
from repro.api.requests import SolveRequest, SolveResponse
from repro.api.session import ScheduleSession
from repro.core.engine import EngineSpec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.instance import SESInstance
from repro.core.live import LiveDelta, LiveInstance
from repro.core.schedule import Schedule
from repro.interactive.gaps import GapReport, build_gap_report
from repro.interactive.locks import LockSet
from repro.interactive.versions import ScheduleVersion, VersionDiff, VersionStore
from repro.serve.pool import PlanePool, PoolStats

__all__ = ["ServedResponse", "ServingSession"]


@dataclass(frozen=True)
class ServedResponse:
    """A :class:`SolveResponse` plus its serving provenance.

    ``version`` is the pool generation the solve ran at; ``pool_hit``
    whether the lease was served from a parked replica (True) or a fresh
    fork (False).  The underlying response's conveniences are re-exposed
    so callers can stay agnostic of which session type served them.

    ``degraded`` marks a best-effort answer: either a ``deadline_ms``
    budget expired before the requested solver finished (the response
    carries the warm greedy baseline instead), or the pool writer was
    stalled and the solve ran on the last good generation —
    ``staleness`` then counts the writes begun since that generation.
    """

    response: SolveResponse
    version: int
    pool_hit: bool
    degraded: bool = False
    staleness: int = 0

    @property
    def result(self) -> Any:
        return self.response.result

    @property
    def request(self) -> SolveRequest:
        return self.response.request

    @property
    def schedule(self) -> Schedule:
        return self.response.result.schedule

    @property
    def utility(self) -> float:
        return self.response.result.utility

    def summary(self) -> str:
        tag = ""
        if self.degraded:
            tag = " [degraded]" if not self.staleness else (
                f" [degraded, staleness={self.staleness}]"
            )
        return f"{self.response.summary()} @v{self.version}{tag}"


class ServingSession:
    """Serve concurrent solve / what-if / stream queries over one instance.

    Parameters
    ----------
    instance:
        The initial problem instance (generation 0).
    default_engine:
        :class:`EngineSpec` (or kind string) used when a request names
        none; defaults to the vectorized engine.
    registry:
        Solver catalog; the process-wide registry unless a test injects
        its own.
    max_replicas:
        Per-spec cap on parked read replicas (see :class:`PlanePool`).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed on the pool
        (writer-stall injection; see :meth:`PlanePool.write`).
    keep_stale_replica:
        Keep a last-good replica per spec for staleness-stamped degraded
        reads when the writer stalls (see :class:`PlanePool`).
    durability:
        A :class:`~repro.resilience.Durability` config makes the session
        crash-safe: every committed mutation is journaled (apply ->
        journal -> ack) and the live state checkpointed on the
        configured cadence; :meth:`recover` rebuilds the session from
        the directory.
    generation:
        Starting pool generation; nonzero only inside :meth:`recover`.
    """

    def __init__(
        self,
        instance: SESInstance,
        default_engine: EngineSpec | str | None = None,
        registry: SolverRegistry | None = None,
        *,
        max_replicas: int = 8,
        fault_plan: Any = None,
        keep_stale_replica: bool = False,
        durability: Any = None,
        generation: int = 0,
    ) -> None:
        # the inner session is used for request validation and solver
        # construction only (both version-independent); its per-spec
        # engine cache is never touched by the concurrent paths
        self._session = ScheduleSession(instance, default_engine, registry)
        self._live = LiveInstance(instance)
        self._pool = PlanePool(
            self._live,
            max_replicas=max_replicas,
            generation=generation,
            fault_plan=fault_plan,
            keep_stale_replica=keep_stale_replica,
        )
        self._served_lock = threading.Lock()
        self._requests_served = 0
        # named schedule snapshots; guarded by their own lock so version
        # saves/diffs never contend with the solve hot path
        self._versions = VersionStore()
        self._versions_lock = threading.Lock()
        # durable sessions serialize [pool write -> journal append] under
        # one lock so the journal order always equals the apply order
        self._write_lock = threading.Lock()
        self._durability: Any = None
        self._journal: Any = None
        self._checkpoints: Any = None
        if durability is not None:
            self._open_durability(durability, instance)

    def _open_durability(self, durability: Any, instance: SESInstance) -> None:
        from repro.data.serialization import instance_to_dict
        from repro.resilience.checkpoint import CheckpointStore
        from repro.resilience.journal import DeltaJournal
        from repro.resilience.stream import engine_spec_to_dict

        durability.directory.mkdir(parents=True, exist_ok=True)
        self._durability = durability
        self._journal = DeltaJournal.create(
            durability.journal_path,
            {
                "kind": "serve",
                "n_users": instance.n_users,
                "engine": engine_spec_to_dict(self.default_engine),
            },
            fsync=durability.fsync,
            fsync_every=durability.fsync_every,
        )
        self._checkpoints = CheckpointStore(durability.checkpoint_directory)
        self._write_checkpoint(instance_to_dict(instance))

    def _write_checkpoint(self, instance_payload: dict[str, Any]) -> None:
        # journal first: a published checkpoint never claims mutations
        # the journal could still lose to a crash
        self._journal.sync()
        self._checkpoints.write(
            self._journal.offset,
            {
                "kind": "serve",
                "offset": self._journal.offset,
                "generation": self._pool.generation,
                "instance": instance_payload,
            },
        )

    # -- introspection ---------------------------------------------------
    @property
    def default_engine(self) -> EngineSpec:
        return self._session.default_engine

    @property
    def version(self) -> int:
        """Current generation (0 until the first mutation commits)."""
        return self._pool.generation

    @property
    def requests_served(self) -> int:
        with self._served_lock:
            return self._requests_served

    @property
    def pool(self) -> PlanePool:
        return self._pool

    def pool_stats(self) -> PoolStats:
        """Fork/hit/invalidation/rebuild counters (see :class:`PoolStats`)."""
        return self._pool.stats()

    def version_instance(self) -> SESInstance:
        """The immutable snapshot of the current version."""
        return self._pool.version_instance()

    def describe(self) -> str:
        stats = self._pool.stats()
        return (
            f"{self._live.describe()} | v{stats.generation} | "
            f"{self.requests_served} request(s) served | "
            f"{stats.forks} fork(s), {stats.hits} hit(s), "
            f"{stats.invalidations} invalidation(s)"
        )

    def _count_served(self) -> None:
        with self._served_lock:
            self._requests_served += 1

    # -- the concurrent read path ----------------------------------------
    def solve(
        self,
        request: SolveRequest | None = None,
        /,
        *,
        deadline_ms: float | None = None,
        max_wait_s: float | None = None,
        **query: Any,
    ) -> ServedResponse:
        """Serve one solve on a leased replica (runs in parallel).

        Accepts a :class:`SolveRequest` or its keyword fields, exactly
        like :meth:`ScheduleSession.solve`.  The solver is constructed
        fresh per request (stochastic state never leaks between
        clients); the initial score sweep is read warm from the forked
        replica plane.

        ``deadline_ms`` makes the response *deadline-aware*: a cheap
        warm greedy baseline is computed first (the best-so-far answer),
        then the requested solver runs in a worker thread with the
        remaining budget.  If it beats the deadline, its result is
        returned; otherwise the baseline comes back stamped
        ``degraded=True``.  ``deadline_ms=0`` deterministically degrades.

        ``max_wait_s`` bounds how long the lease may wait on a stalled
        writer; on timeout the solve runs against the last good
        generation and the response carries ``staleness``
        (see :meth:`PlanePool.acquire`).  A deadline implies a lease
        bound of the remaining budget.
        """
        if request is None:
            request = SolveRequest(**query)
        elif query:
            raise TypeError(
                "pass either a SolveRequest or keyword fields, not both"
            )
        if deadline_ms is None:
            response = self._solve_once(
                request, self._session.solver_for(request),
                max_wait_s=max_wait_s,
            )
        else:
            if deadline_ms < 0:
                raise ValueError(
                    f"deadline_ms must be >= 0, got {deadline_ms}"
                )
            response = self._solve_deadline(request, deadline_ms, max_wait_s)
        self._count_served()
        return response

    def _solve_once(
        self,
        request: SolveRequest,
        solver: Any,
        *,
        max_wait_s: float | None = None,
        degraded: bool = False,
    ) -> ServedResponse:
        spec = (
            EngineSpec.coerce(request.engine)
            if request.engine is not None
            else self._session.default_engine
        )
        with self._pool.lease(spec, max_wait_s=max_wait_s) as replica:
            result = solver.solve(
                replica.frozen, request.k, plane=replica.plane,
                locks=request.locks,
            )
            version = replica.generation
            pool_hit = replica.pool_hit
            staleness = replica.staleness
        return ServedResponse(
            response=SolveResponse(
                request=request,
                result=result,
                engine=spec,
                reused_engine=pool_hit,
            ),
            version=version,
            pool_hit=pool_hit,
            degraded=degraded or staleness > 0,
            staleness=staleness,
        )

    def _solve_deadline(
        self,
        request: SolveRequest,
        deadline_ms: float,
        max_wait_s: float | None,
    ) -> ServedResponse:
        import time as _time

        deadline_s = deadline_ms / 1e3
        started = _time.perf_counter()

        def remaining() -> float:
            return deadline_s - (_time.perf_counter() - started)

        def lease_bound() -> float:
            bound = max(0.001, remaining())
            return bound if max_wait_s is None else min(bound, max_wait_s)

        # best-so-far first: a warm greedy pass is the floor every
        # degraded response stands on
        baseline_solver = self._session.registry.create(
            "grd",
            engine=(
                EngineSpec.coerce(request.engine)
                if request.engine is not None
                else self._session.default_engine
            ),
        )
        baseline = self._solve_once(
            request, baseline_solver, max_wait_s=lease_bound(), degraded=True
        )
        budget = remaining()
        if budget <= 0:
            return baseline

        # the requested solver gets the remaining budget on its OWN
        # lease (released by the worker itself, so a timed-out solve
        # finishing late in the background stays safe)
        box: dict[str, Any] = {}

        def work() -> None:
            try:
                box["response"] = self._solve_once(
                    request,
                    self._session.solver_for(request),
                    max_wait_s=lease_bound(),
                )
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error

        worker = threading.Thread(
            target=work, name="ses-deadline-solve", daemon=True
        )
        worker.start()
        worker.join(timeout=budget)
        if "response" in box:
            return box["response"]
        if "error" in box:
            raise box["error"]
        return baseline

    def gap_report(
        self,
        schedule: Schedule | ServedResponse,
        k: int | None = None,
        *,
        engine: EngineSpec | str | None = None,
        locks: LockSet | None = None,
        limit: int | None = None,
    ) -> GapReport:
        """Explain a draft's gaps against the current version, concurrently.

        Leases a warm replica exactly like :meth:`solve`, so the report
        reads its gains off cached plane scores (zero extra Eq. 4
        evaluations after any solve at the same version) and comes back
        stamped with the generation it was computed at.  Pass a
        :class:`ServedResponse` to reuse its request's ``k`` and locks.
        """
        if isinstance(schedule, ServedResponse):
            served = schedule
            schedule = served.schedule
            if k is None:
                k = served.result.requested_k
            if locks is None:
                locks = served.request.locks
            if engine is None:
                engine = served.response.engine
        elif k is None:
            raise TypeError("k is required when passing a bare schedule")
        spec = (
            EngineSpec.coerce(engine)
            if engine is not None
            else self._session.default_engine
        )
        with self._pool.lease(spec) as replica:
            report = build_gap_report(
                replica.frozen, schedule, k, replica.plane,
                locks=locks, limit=limit,
            )
            report = replace(report, version=replica.generation)
        self._count_served()
        return report

    def save_version(
        self,
        name: str,
        response: ServedResponse,
        *,
        overwrite: bool = False,
    ) -> ScheduleVersion:
        """Snapshot a served solve under ``name`` (thread-safe).

        The snapshot is stamped with the response's generation, so a
        later diff can tell whether two versions even saw the same
        instance state.
        """
        with self._versions_lock:
            return self._versions.save(
                name,
                response.schedule,
                response.utility,
                k=response.result.requested_k,
                solver=response.result.solver,
                stamp=response.version,
                overwrite=overwrite,
            )

    def schedule_version(self, name: str) -> ScheduleVersion:
        """A saved snapshot by name (:class:`KeyError` when unknown)."""
        with self._versions_lock:
            return self._versions.get(name)

    def versions(self) -> tuple[str, ...]:
        """Saved version names in save order."""
        with self._versions_lock:
            return self._versions.names()

    def diff_versions(self, base: str, target: str | None = None) -> VersionDiff:
        """What changed from ``base`` to ``target`` (default: latest save)."""
        with self._versions_lock:
            return self._versions.diff(base, target)

    def what_if_theta(
        self, k: int, thetas: Sequence[float], solver: str = "grd",
        **params: Any,
    ) -> Any:
        """Utility curve as the staffing budget varies (current version)."""
        from repro.harness import whatif

        curve = whatif.sweep_theta(
            self.version_instance(), k, thetas,
            solver=self._whatif_solver(solver, params),
        )
        self._count_served()
        return curve

    def competition_cost(
        self, k: int, competing_index: int, solver: str = "grd",
        **params: Any,
    ) -> float:
        """Attendance recovered if one rival vanished (current version)."""
        from repro.harness import whatif

        cost = whatif.competition_cost(
            self.version_instance(), k, competing_index,
            solver=self._whatif_solver(solver, params),
        )
        self._count_served()
        return cost

    def report(self, schedule: Schedule) -> Any:
        """Full :class:`~repro.harness.inspect.ScheduleReport` at the
        current version."""
        from repro.harness.inspect import ScheduleReport

        self._count_served()
        return ScheduleReport(self.version_instance(), schedule)

    def stream(
        self,
        trace: Any,
        policy: Any = "incremental",
        k: int | None = None,
        engine: EngineSpec | str | None = None,
        *,
        oracle_every: int | None = None,
        oracle_solver: str = "grd-heap",
        **policy_params: Any,
    ) -> Any:
        """Replay a change trace against the current version's snapshot.

        The driver materializes its own private
        :class:`~repro.core.live.LiveInstance` over the frozen snapshot,
        so the replay is a *simulation*: it never mutates the serving
        state (use the mutators below to commit real changes).
        """
        from repro.stream import StreamDriver

        driver = StreamDriver(
            self.version_instance(),
            k=k,
            policy=policy,
            engine=engine if engine is not None else self.default_engine,
            oracle_every=oracle_every,
            oracle_solver=oracle_solver,
            **policy_params,
        )
        result = driver.run(trace)
        self._count_served()
        return result

    # -- the single-writer mutation path ---------------------------------
    def _commit(
        self,
        mutate: Any,
        payload_fn: Any,
    ) -> LiveDelta:
        """Apply one mutation; journal it before acknowledging.

        Non-durable sessions go straight to the pool.  Durable sessions
        hold the session write lock across [pool write -> journal
        append] so journal order always equals apply order, and publish
        a checkpoint when the cadence comes due.  CONTRIBUTING requires
        every new mutator to route through here — an un-journaled
        mutation is unrecoverable by construction (the chaos smoke
        gate counts them).
        """
        if self._journal is None:
            return self._pool.write(mutate)
        from repro.data.serialization import instance_to_dict

        with self._write_lock:
            delta = self._pool.write(mutate)
            self._journal.append(payload_fn())
            if self._journal.offset % self._durability.checkpoint_every == 0:
                self._write_checkpoint(
                    instance_to_dict(self._live.freeze())  # ses-lint: disable=freeze-ban
                )
            return delta

    def add_event(
        self,
        location: int,
        required_resources: float,
        interest_column: Any,
        name: str = "",
        tags: frozenset[str] = frozenset(),
    ) -> int:
        """Commit a candidate-event arrival; returns its index.

        Applied under the writer lock: primaries absorb the delta in
        O(delta), the generation bumps, outstanding replicas invalidate.
        """
        def mutate(live: LiveInstance) -> LiveDelta:
            event = CandidateEvent(
                index=live.n_events,
                location=location,
                required_resources=required_resources,
                name=name,
                tags=tags,
            )
            return live.add_event(event, interest_column)

        def payload() -> dict[str, Any]:
            from repro.resilience.serve import column_payload

            return {
                "kind": "add_event",
                "location": int(location),
                "required_resources": float(required_resources),
                "interest": column_payload(interest_column),
                "name": str(name),
                "tags": sorted(tags),
            }

        delta = self._commit(mutate, payload)
        return delta.event  # type: ignore[attr-defined]

    def cancel_event(self, event: int) -> int:
        """Commit a candidate-event cancellation (later events renumber)."""
        def mutate(live: LiveInstance) -> LiveDelta:
            return live.remove_event(event)

        delta = self._commit(
            mutate, lambda: {"kind": "cancel_event", "event": int(event)}
        )
        return delta.event  # type: ignore[attr-defined]

    def update_event_interest(self, event: int, interest_column: Any) -> int:
        """Commit an interest-drift update for one candidate event."""
        def mutate(live: LiveInstance) -> LiveDelta:
            return live.replace_event_interest(event, interest_column)

        def payload() -> dict[str, Any]:
            from repro.resilience.serve import column_payload

            return {
                "kind": "update_event_interest",
                "event": int(event),
                "interest": column_payload(interest_column),
            }

        delta = self._commit(mutate, payload)
        return delta.event  # type: ignore[attr-defined]

    def add_competing(
        self, interval: int, interest_column: Any, name: str = ""
    ) -> int:
        """Commit a rival-event announcement; returns its index."""
        def mutate(live: LiveInstance) -> LiveDelta:
            rival = CompetingEvent(
                index=live.n_competing, interval=interval, name=name
            )
            return live.add_competing(rival, interest_column)

        def payload() -> dict[str, Any]:
            from repro.resilience.serve import column_payload

            return {
                "kind": "add_competing",
                "interval": int(interval),
                "interest": column_payload(interest_column),
                "name": str(name),
            }

        delta = self._commit(mutate, payload)
        return delta.competing  # type: ignore[attr-defined]

    # -- durability ------------------------------------------------------
    @property
    def journal_offset(self) -> int | None:
        """Journaled mutation count (``None`` on non-durable sessions)."""
        return None if self._journal is None else self._journal.offset

    def close(self) -> None:
        """Seal a durable session: final checkpoint, close the journal."""
        if self._journal is None or self._journal.closed:
            return
        from repro.data.serialization import instance_to_dict

        with self._write_lock:
            self._write_checkpoint(
                instance_to_dict(self._live.freeze())  # ses-lint: disable=freeze-ban
            )
            self._journal.close()

    @classmethod
    def recover(
        cls,
        durability: Any,
        default_engine: EngineSpec | str | None = None,
        registry: SolverRegistry | None = None,
        *,
        max_replicas: int = 8,
        fault_plan: Any = None,
        keep_stale_replica: bool = False,
    ) -> "ServingSession":
        """Rebuild a durable serving session from its directory.

        Newest valid checkpoint + journal-tail replay through the normal
        mutators: the recovered session's generation, live state and
        plane contents are bit-identical to an uninterrupted session's,
        and it keeps journaling into the same WAL.  Serving-process
        config (engine, replicas, fault plan) is not state and is passed
        fresh.
        """
        from repro.core.errors import RecoveryError
        from repro.data.serialization import instance_from_dict
        from repro.resilience.checkpoint import CheckpointStore
        from repro.resilience.config import Durability
        from repro.resilience.journal import DeltaJournal
        from repro.resilience.serve import replay_mutation

        config = (
            durability
            if isinstance(durability, Durability)
            else Durability(durability)
        )
        journal, scan = DeltaJournal.open(
            config.journal_path, fsync=config.fsync,
            fsync_every=config.fsync_every,
        )
        try:
            if scan.metadata.get("kind") != "serve":
                raise RecoveryError(
                    f"journal {config.journal_path} holds a "
                    f"{scan.metadata.get('kind')!r} session, not a "
                    f"serving session"
                )
            store = CheckpointStore(config.checkpoint_directory)
            found = store.newest_valid(max_offset=scan.offset)
            if found is None:
                raise RecoveryError(
                    f"no valid checkpoint at or below journal offset "
                    f"{scan.offset} in {config.checkpoint_directory}"
                )
            offset, body = found
            if body.get("kind") != "serve":
                raise RecoveryError(
                    f"checkpoint at offset {offset} is not a serving "
                    f"checkpoint"
                )
            if default_engine is None and scan.metadata.get("engine"):
                default_engine = EngineSpec(**scan.metadata["engine"])
            session = cls(
                instance_from_dict(body["instance"]),
                default_engine,
                registry,
                max_replicas=max_replicas,
                fault_plan=fault_plan,
                keep_stale_replica=keep_stale_replica,
                generation=int(body["generation"]),
            )
            for payload in scan.records[offset:]:
                replay_mutation(session, payload)
        except BaseException:
            journal.abandon()
            raise
        # re-arm durability on the surviving WAL: future mutations append
        # where the journal left off
        session._durability = config
        session._journal = journal
        session._checkpoints = store
        return session

    # -- internals -------------------------------------------------------
    def _whatif_solver(self, solver: str, params: dict[str, Any]) -> Any:
        return self._session.registry.create(
            solver, engine=self.default_engine, **params
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
