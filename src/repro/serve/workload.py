"""Deterministic mixed serving workloads (solve / what-if / stream).

The concurrency story of :class:`~repro.serve.session.ServingSession` is
only testable (and benchmarkable) if the workload itself cannot smuggle
nondeterminism in: with worker threads stealing items off a shared
queue, anything sampled *inside* a worker would depend on the
interleaving.  So randomness is bound to **items, not workers**: the
whole request list — solver mix, per-item seeds for stochastic solvers,
what-if targets — is materialized up front from one
:class:`~repro.utils.rng.SeedSequenceFactory` root, and each item's
outcome is a pure function of (item, instance version).  A concurrent
run with a fixed root seed therefore produces exactly the same multiset
of response fingerprints as a serial replay, regardless of thread
interleaving — the property both the differential suite and
``benchmarks/bench_serving.py`` assert.

:func:`run_item` executes one item through a :class:`ServingSession`;
:func:`run_item_cold` executes the same item against a bare instance
with per-request construction (the cold baseline).  Both reduce the
outcome to the same :func:`fingerprint` shape, so warm-vs-cold parity is
one set comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algorithms.registry import SolverRegistry, solver_registry
from repro.api.requests import SolveRequest
from repro.core.engine import EngineSpec
from repro.core.instance import SESInstance
from repro.serve.session import ServingSession
from repro.utils.rng import SeedSequenceFactory

__all__ = ["WorkItem", "make_workload", "run_item", "run_item_cold"]

#: Default solver rotation: the GRD family the warm plane accelerates.
DEFAULT_SOLVERS: tuple[str, ...] = ("grd", "grd-heap", "top")

#: Re-solve budget for seeded solvers drawn into the mix.
_SEED_RANGE = 2**31


@dataclass(frozen=True)
class WorkItem:
    """One pre-sampled client request (pure data, thread-agnostic).

    ``kind`` is ``"solve"`` (a :class:`SolveRequest`), ``"what-if"`` (a
    :func:`repro.harness.whatif.competition_cost` query against rival
    ``competing_index``) or ``"stream"`` (a simulated replay of
    ``trace``).  Fields not used by a kind stay at their defaults.
    """

    index: int
    kind: str
    k: int
    request: SolveRequest | None = None
    competing_index: int = 0
    trace: Any = field(default=None, compare=False)

    def label(self) -> str:
        if self.kind == "solve" and self.request is not None:
            return f"{self.index}:{self.request.solver}"
        return f"{self.index}:{self.kind}"


def make_workload(
    n_items: int,
    k: int,
    root_seed: int,
    *,
    solvers: tuple[str, ...] = DEFAULT_SOLVERS,
    engine: EngineSpec | str | None = None,
    n_competing: int = 0,
    whatif_every: int = 0,
    trace: Any = None,
    stream_every: int = 0,
    registry: SolverRegistry | None = None,
) -> tuple[WorkItem, ...]:
    """Pre-sample a mixed request list from one root seed.

    Every ``whatif_every``-th item becomes a competition-cost query
    (requires ``n_competing > 0``) and every ``stream_every``-th a
    simulated trace replay (requires ``trace``); everything else is a
    solve whose solver cycles through ``solvers`` via the seeded mix
    generator.  Stochastic solvers get a per-item child seed, so item
    ``i`` is reproducible in isolation — its randomness never depends on
    how many draws other items consumed, let alone on which thread runs
    it.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if not solvers:
        raise ValueError("solvers must name at least one solver")
    catalog = registry if registry is not None else solver_registry
    factory = SeedSequenceFactory(root_seed)
    mix_rng = factory.spawn()
    items: list[WorkItem] = []
    for index in range(n_items):
        item_rng = factory.spawn()
        if whatif_every and n_competing and (index + 1) % whatif_every == 0:
            items.append(
                WorkItem(
                    index=index,
                    kind="what-if",
                    k=k,
                    competing_index=int(item_rng.integers(n_competing)),
                )
            )
            continue
        if trace is not None and stream_every and (
            index + 1
        ) % stream_every == 0:
            items.append(
                WorkItem(index=index, kind="stream", k=k, trace=trace)
            )
            continue
        solver = solvers[int(mix_rng.integers(len(solvers)))]
        seed = (
            int(item_rng.integers(_SEED_RANGE))
            if catalog.get(solver).seeded
            else None
        )
        items.append(
            WorkItem(
                index=index,
                kind="solve",
                k=k,
                request=SolveRequest(
                    k=k,
                    solver=solver,
                    engine=engine,
                    seed=seed,
                    label=f"item-{index}",
                ),
            )
        )
    return tuple(items)


def fingerprint(item: WorkItem, payload: Any) -> tuple[Any, ...]:
    """Reduce one outcome to a hashable, bit-exact comparison key."""
    return (item.index, item.kind, payload)


def run_item(serving: ServingSession, item: WorkItem) -> tuple[Any, ...]:
    """Execute one item through the serving session (warm path)."""
    if item.kind == "solve":
        assert item.request is not None
        response = serving.solve(item.request)
        return fingerprint(
            item,
            (
                response.utility,
                tuple(sorted(response.schedule.as_mapping().items())),
            ),
        )
    if item.kind == "what-if":
        return fingerprint(
            item, serving.competition_cost(item.k, item.competing_index)
        )
    if item.kind == "stream":
        result = serving.stream(item.trace, policy="incremental")
        return fingerprint(
            item,
            (
                result.final_utility,
                tuple(sorted(result.final_schedule.items())),
            ),
        )
    raise ValueError(f"unknown work item kind {item.kind!r}")


def run_item_cold(
    instance: SESInstance,
    item: WorkItem,
    *,
    default_engine: EngineSpec | str | None = None,
    registry: SolverRegistry | None = None,
) -> tuple[Any, ...]:
    """Execute one item with per-request construction (cold baseline).

    Solver, engine and every accelerating structure are built from
    scratch, exactly what serving without the pool would pay; outcomes
    are fingerprint-compatible with :func:`run_item`, so warm-vs-cold
    parity is a direct set comparison.
    """
    catalog = registry if registry is not None else solver_registry
    default_spec = EngineSpec.coerce(default_engine)
    if item.kind == "solve":
        assert item.request is not None
        request = item.request
        spec = (
            EngineSpec.coerce(request.engine)
            if request.engine is not None
            else default_spec
        )
        solver = catalog.create(
            request.solver,
            engine=spec,
            seed=request.seed,
            strict=request.strict,
            **request.params,
        )
        result = solver.solve(instance, request.k)
        return fingerprint(
            item,
            (
                result.utility,
                tuple(sorted(result.schedule.as_mapping().items())),
            ),
        )
    if item.kind == "what-if":
        from repro.harness import whatif

        cost = whatif.competition_cost(
            instance,
            item.k,
            item.competing_index,
            solver=catalog.create("grd", engine=default_spec),
        )
        return fingerprint(item, cost)
    if item.kind == "stream":
        from repro.stream import StreamDriver

        driver = StreamDriver(
            instance, policy="incremental", engine=default_spec
        )
        result = driver.run(item.trace)
        return fingerprint(
            item,
            (
                result.final_utility,
                tuple(sorted(result.final_schedule.items())),
            ),
        )
    raise ValueError(f"unknown work item kind {item.kind!r}")
