"""``repro.serve`` — the concurrent serving subsystem.

PRs 2–5 made single-client serving fast (memoized engines, warm
:class:`~repro.core.scoreplane.ScorePlane` matrices, O(delta) live
mutations); this package makes it *concurrent*, following the
single-writer / versioned-reader architecture of production schedule
servers (pretalx is the reference in PAPERS.md):

* :mod:`repro.serve.pool` — :class:`PlanePool`: one warm single-writer
  primary plane per :class:`~repro.core.engine.EngineSpec`, copy-on-write
  forked read replicas with generation invalidation, bounded LRU reuse;
* :mod:`repro.serve.session` — :class:`ServingSession`: the thread-safe
  front-end routing mutations through the writer lock while solves,
  what-ifs and stream simulations run in parallel on replicas;
* :mod:`repro.serve.workload` — deterministic mixed request workloads
  whose outcomes are interleaving-independent (the differential suite's
  and ``benchmarks/bench_serving.py``'s foundation).

The load-bearing guarantees, all differential-tested: a forked replica's
solves are bit-identical to the parent plane's; K concurrent clients
produce bit-identical responses to a serial replay; and a replica is
never silently stale — it either matches the current generation or is
discarded.
"""

from repro.serve.pool import PlanePool, PoolStats, Replica
from repro.serve.session import ServedResponse, ServingSession
from repro.serve.workload import (
    WorkItem,
    make_workload,
    run_item,
    run_item_cold,
)

__all__ = [
    "PlanePool",
    "PoolStats",
    "Replica",
    "ServedResponse",
    "ServingSession",
    "WorkItem",
    "make_workload",
    "run_item",
    "run_item_cold",
]
