"""Reproduction of "Social Event Scheduling" (Bikakis, Kalogeraki, Gunopulos;
ICDE 2018).

The package implements the SES problem model (Section II), the GRD greedy
algorithm plus the TOP/RAND baselines (Sections III-IV), the Theorem-1
NP-hardness reduction, a calibrated synthetic Meetup-style EBSN substrate,
and the full experimental harness regenerating Figure 1.

Quickstart::

    from repro import ExperimentConfig, WorkloadGenerator, GreedyScheduler

    instance = WorkloadGenerator(root_seed=7).build(ExperimentConfig(k=20, n_users=500))
    result = GreedyScheduler().solve(instance, k=20)
    print(result.summary())

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.algorithms import (
    AnnealingScheduler,
    BeamSearchScheduler,
    GraspScheduler,
    ExhaustiveScheduler,
    GreedyScheduler,
    IncrementalScheduler,
    LazyGreedyScheduler,
    LocalSearchRefiner,
    RandomScheduler,
    ScheduleResult,
    Scheduler,
    TopKScheduler,
)
from repro.core import (
    ActivityModel,
    Assignment,
    CandidateEvent,
    CompetingEvent,
    CalendarGrid,
    DayPart,
    FeasibilityChecker,
    InterestMatrix,
    Organizer,
    Schedule,
    SESInstance,
    TimeInterval,
    User,
    make_engine,
    total_utility,
)
from repro.workloads import ExperimentConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "ActivityModel",
    "AnnealingScheduler",
    "BeamSearchScheduler",
    "Assignment",
    "CandidateEvent",
    "CompetingEvent",
    "ExhaustiveScheduler",
    "ExperimentConfig",
    "CalendarGrid",
    "DayPart",
    "FeasibilityChecker",
    "GraspScheduler",
    "GreedyScheduler",
    "IncrementalScheduler",
    "InterestMatrix",
    "LazyGreedyScheduler",
    "LocalSearchRefiner",
    "Organizer",
    "RandomScheduler",
    "SESInstance",
    "Schedule",
    "ScheduleResult",
    "Scheduler",
    "TimeInterval",
    "TopKScheduler",
    "User",
    "WorkloadGenerator",
    "make_engine",
    "total_utility",
    "__version__",
]
