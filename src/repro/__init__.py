"""Reproduction of "Social Event Scheduling" (Bikakis, Kalogeraki, Gunopulos;
ICDE 2018).

The package implements the SES problem model (Section II), the GRD greedy
algorithm plus the TOP/RAND baselines (Sections III-IV), the Theorem-1
NP-hardness reduction, a calibrated synthetic Meetup-style EBSN substrate,
and the full experimental harness regenerating Figure 1.

Quickstart (service facade, see :mod:`repro.api`)::

    from repro import ExperimentConfig, WorkloadGenerator
    from repro.api import ScheduleSession

    instance = WorkloadGenerator(root_seed=7).build(ExperimentConfig(k=20, n_users=500))
    session = ScheduleSession(instance)
    print(session.solve(k=20).summary())

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.algorithms import (
    AnnealingScheduler,
    register_solver,
    solver_registry,
    BeamSearchScheduler,
    GraspScheduler,
    ExhaustiveScheduler,
    GreedyScheduler,
    IncrementalScheduler,
    LazyGreedyScheduler,
    LocalSearchRefiner,
    RandomScheduler,
    ScheduleResult,
    Scheduler,
    TopKScheduler,
)
from repro.api import (
    ScheduleSession,
    SolveRequest,
    SolveResponse,
    solve_once,
)
from repro.core import (
    ActivityModel,
    Assignment,
    EngineSpec,
    CandidateEvent,
    CompetingEvent,
    CalendarGrid,
    DayPart,
    FeasibilityChecker,
    InterestMatrix,
    Organizer,
    Schedule,
    SESInstance,
    TimeInterval,
    User,
    make_engine,
    total_utility,
)
from repro.stream import StreamDriver, StreamResult, Trace, make_policy
from repro.workloads import (
    ExperimentConfig,
    TraceConfig,
    TraceGenerator,
    WorkloadGenerator,
)

__version__ = "1.1.0"

__all__ = [
    "ActivityModel",
    "AnnealingScheduler",
    "BeamSearchScheduler",
    "Assignment",
    "CandidateEvent",
    "CompetingEvent",
    "ExhaustiveScheduler",
    "ExperimentConfig",
    "CalendarGrid",
    "DayPart",
    "EngineSpec",
    "FeasibilityChecker",
    "GraspScheduler",
    "GreedyScheduler",
    "IncrementalScheduler",
    "InterestMatrix",
    "LazyGreedyScheduler",
    "LocalSearchRefiner",
    "Organizer",
    "RandomScheduler",
    "SESInstance",
    "Schedule",
    "ScheduleResult",
    "ScheduleSession",
    "Scheduler",
    "SolveRequest",
    "SolveResponse",
    "StreamDriver",
    "StreamResult",
    "TimeInterval",
    "TopKScheduler",
    "Trace",
    "TraceConfig",
    "TraceGenerator",
    "User",
    "WorkloadGenerator",
    "make_engine",
    "make_policy",
    "register_solver",
    "solve_once",
    "solver_registry",
    "total_utility",
    "__version__",
]
