"""The immutable SES problem instance (paper Section II).

:class:`SESInstance` bundles everything Eq. 1–4 consume: the entity lists,
the interest matrix ``mu``, the activity matrix ``sigma`` and the organizer
capacity ``theta``.  Construction validates cross-references (competing
events point at existing intervals, matrix shapes match entity counts,
bounded intervals are disjoint) so solvers can index without re-checking.

Two derived structures are precomputed once because every engine needs
them:

* ``competing_by_interval`` — ``C_t`` as index lists, and
* ``competing_mass`` — the per-interval, per-user constant
  ``K_t[u] = sum_{c in C_t} mu[u, c]``, the fixed part of Eq. 1's
  denominator.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import cached_property

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix

__all__ = ["SESInstance"]


def _check_contiguous_indices(items: Sequence, kind: str) -> None:
    for position, item in enumerate(items):
        if item.index != position:
            raise InstanceValidationError(
                f"{kind} at position {position} carries index {item.index}; "
                f"entity indices must equal their list position"
            )


class SESInstance:
    """A fully validated Social Event Scheduling problem instance.

    Parameters
    ----------
    users, intervals, events, competing:
        Entity lists; each entity's ``index`` must equal its position.
    interest:
        ``mu`` over candidate and competing events.
    activity:
        ``sigma`` over users and intervals.
    organizer:
        Carries the per-interval resource capacity ``theta``.
    """

    def __init__(
        self,
        users: Sequence[User],
        intervals: Sequence[TimeInterval],
        events: Sequence[CandidateEvent],
        competing: Sequence[CompetingEvent],
        interest: InterestMatrix,
        activity: ActivityModel,
        organizer: Organizer,
    ) -> None:
        self._users = tuple(users)
        self._intervals = tuple(intervals)
        self._events = tuple(events)
        self._competing = tuple(competing)
        self._interest = interest
        self._activity = activity
        self._organizer = organizer
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        _check_contiguous_indices(self._users, "user")
        _check_contiguous_indices(self._intervals, "interval")
        _check_contiguous_indices(self._events, "event")
        _check_contiguous_indices(self._competing, "competing event")

        n_users, n_intervals = len(self._users), len(self._intervals)
        n_events, n_competing = len(self._events), len(self._competing)

        if self._interest.n_users != n_users:
            raise InstanceValidationError(
                f"interest matrix covers {self._interest.n_users} users, "
                f"instance has {n_users}"
            )
        if self._interest.n_events != n_events:
            raise InstanceValidationError(
                f"interest matrix covers {self._interest.n_events} events, "
                f"instance has {n_events}"
            )
        if self._interest.n_competing != n_competing:
            raise InstanceValidationError(
                f"interest matrix covers {self._interest.n_competing} competing "
                f"events, instance has {n_competing}"
            )
        if self._activity.n_users != n_users:
            raise InstanceValidationError(
                f"activity matrix covers {self._activity.n_users} users, "
                f"instance has {n_users}"
            )
        if self._activity.n_intervals != n_intervals:
            raise InstanceValidationError(
                f"activity matrix covers {self._activity.n_intervals} intervals, "
                f"instance has {n_intervals}"
            )
        for rival in self._competing:
            if rival.interval >= n_intervals:
                raise InstanceValidationError(
                    f"{rival.display_name} references interval {rival.interval}, "
                    f"instance has only {n_intervals}"
                )
        for event in self._events:
            if event.required_resources > self._organizer.resources:
                raise InstanceValidationError(
                    f"{event.display_name} requires {event.required_resources} "
                    f"resources, exceeding organizer capacity "
                    f"{self._organizer.resources}; it could never be scheduled"
                )
        self._check_intervals_disjoint()

    def _check_intervals_disjoint(self) -> None:
        bounded = [t for t in self._intervals if t.bounded]
        bounded.sort(key=lambda t: t.start)
        for left, right in zip(bounded, bounded[1:]):
            if left.overlaps(right):
                raise InstanceValidationError(
                    f"intervals {left.display_name} and {right.display_name} "
                    f"overlap; the paper requires T to be disjoint"
                )

    # ------------------------------------------------------------------
    # entity access
    # ------------------------------------------------------------------
    @property
    def users(self) -> tuple[User, ...]:
        return self._users

    @property
    def intervals(self) -> tuple[TimeInterval, ...]:
        return self._intervals

    @property
    def events(self) -> tuple[CandidateEvent, ...]:
        return self._events

    @property
    def competing(self) -> tuple[CompetingEvent, ...]:
        return self._competing

    @property
    def interest(self) -> InterestMatrix:
        return self._interest

    @property
    def activity(self) -> ActivityModel:
        return self._activity

    @property
    def organizer(self) -> Organizer:
        return self._organizer

    @property
    def theta(self) -> float:
        """Organizer resource capacity per interval."""
        return self._organizer.resources

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_intervals(self) -> int:
        return len(self._intervals)

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def n_competing(self) -> int:
        return len(self._competing)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    @cached_property
    def competing_by_interval(self) -> tuple[tuple[int, ...], ...]:
        """``C_t``: competing-event indices grouped by interval."""
        groups: list[list[int]] = [[] for _ in range(self.n_intervals)]
        for rival in self._competing:
            groups[rival.interval].append(rival.index)
        return tuple(tuple(group) for group in groups)

    @cached_property
    def competing_mass(self) -> np.ndarray:
        """``K_t[u] = sum_{c in C_t} mu[u, c]`` of shape ``(n_intervals, n_users)``.

        This is the schedule-independent part of Eq. 1's denominator; the
        engines add the scheduled mass ``M_t`` on top of it.
        """
        mass = np.zeros((self.n_intervals, self.n_users))
        for interval, rivals in enumerate(self.competing_by_interval):
            for rival in rivals:
                mass[interval] += self._interest.competing_column(rival)
        mass.setflags(write=False)
        return mass

    @cached_property
    def required_resources(self) -> np.ndarray:
        """``xi`` as a vector indexed by event."""
        xi = np.array([e.required_resources for e in self._events])
        xi.setflags(write=False)
        return xi

    @cached_property
    def locations(self) -> tuple[int, ...]:
        """Event locations as a tuple indexed by event."""
        return tuple(e.location for e in self._events)

    @cached_property
    def distinct_locations(self) -> int:
        """Number of distinct event locations in the instance."""
        return len(set(self.locations))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary used by the CLI and examples."""
        return (
            f"SESInstance(users={self.n_users}, events={self.n_events}, "
            f"intervals={self.n_intervals}, competing={self.n_competing}, "
            f"locations={self.distinct_locations}, theta={self.theta})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
