"""Schedules and assignments (paper Section II).

An :class:`Assignment` ``alpha_e^t`` places candidate event ``e`` at
interval ``t``.  A :class:`Schedule` is a set of assignments in which no
event appears twice; it exposes the paper's accessors — ``E(S)`` as
:meth:`Schedule.scheduled_events`, ``E_t(S)`` as :meth:`Schedule.events_at`
and ``t_e(S)`` as :meth:`Schedule.interval_of`.

The class is deliberately a thin mutable container: feasibility is the
responsibility of :class:`~repro.core.feasibility.FeasibilityChecker` (so
that solvers can maintain incremental state), while *structural* integrity
(no duplicate events, indices in range) is enforced here unconditionally.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.instance import SESInstance

__all__ = ["Assignment", "Schedule"]


@dataclass(frozen=True, slots=True, order=True)
class Assignment:
    """``alpha_e^t``: schedule candidate event ``event`` at interval ``interval``."""

    event: int
    interval: int

    def __post_init__(self) -> None:
        if self.event < 0:
            raise ValueError(f"event index must be non-negative, got {self.event}")
        if self.interval < 0:
            raise ValueError(
                f"interval index must be non-negative, got {self.interval}"
            )

    def __str__(self) -> str:
        return f"a[e{self.event}@t{self.interval}]"


class Schedule:
    """A set of assignments with at most one interval per event.

    Iteration order is insertion order, which for greedy solvers doubles
    as the selection order — handy in tests and reports.
    """

    def __init__(
        self, instance: SESInstance, assignments: Iterable[Assignment] = ()
    ) -> None:
        self._instance = instance
        self._interval_of: dict[int, int] = {}
        self._events_at: dict[int, list[int]] = {}
        for assignment in assignments:
            self.add(assignment)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, assignment: Assignment) -> None:
        """Insert one assignment; rejects duplicates and bad indices."""
        event, interval = assignment.event, assignment.interval
        if event >= self._instance.n_events:
            raise UnknownEntityError(
                f"event index {event} out of range "
                f"(instance has {self._instance.n_events} events)"
            )
        if interval >= self._instance.n_intervals:
            raise UnknownEntityError(
                f"interval index {interval} out of range "
                f"(instance has {self._instance.n_intervals} intervals)"
            )
        if event in self._interval_of:
            raise DuplicateEventError(
                f"event {event} already scheduled at interval "
                f"{self._interval_of[event]}"
            )
        self._interval_of[event] = interval
        self._events_at.setdefault(interval, []).append(event)

    def remove(self, event: int) -> Assignment:
        """Remove the assignment of ``event``; returns what was removed."""
        if event not in self._interval_of:
            raise UnknownEntityError(f"event {event} is not scheduled")
        interval = self._interval_of.pop(event)
        self._events_at[interval].remove(event)
        if not self._events_at[interval]:
            del self._events_at[interval]
        return Assignment(event=event, interval=interval)

    # ------------------------------------------------------------------
    # paper accessors
    # ------------------------------------------------------------------
    def scheduled_events(self) -> frozenset[int]:
        """``E(S)``: the set of scheduled candidate-event indices."""
        return frozenset(self._interval_of)

    def events_at(self, interval: int) -> tuple[int, ...]:
        """``E_t(S)``: events assigned to ``interval`` (selection order)."""
        return tuple(self._events_at.get(interval, ()))

    def interval_of(self, event: int) -> int | None:
        """``t_e(S)``: the interval of ``event``, or ``None`` if unscheduled."""
        return self._interval_of.get(event)

    def contains_event(self, event: int) -> bool:
        return event in self._interval_of

    def used_intervals(self) -> frozenset[int]:
        """Intervals with at least one scheduled event."""
        return frozenset(self._events_at)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._interval_of)

    def __iter__(self) -> Iterator[Assignment]:
        for interval, events in sorted(self._events_at.items()):
            for event in events:
                yield Assignment(event=event, interval=interval)

    def __contains__(self, assignment: Assignment) -> bool:
        return self._interval_of.get(assignment.event) == assignment.interval

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._interval_of == other._interval_of

    def __hash__(self) -> int:
        return hash(frozenset(self._interval_of.items()))

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        return self._instance

    def assignments(self) -> tuple[Assignment, ...]:
        """All assignments, ordered by interval then insertion."""
        return tuple(self)

    def copy(self) -> "Schedule":
        """Independent copy sharing the (immutable) instance."""
        clone = Schedule(self._instance)
        clone._interval_of = dict(self._interval_of)
        clone._events_at = {t: list(es) for t, es in self._events_at.items()}
        return clone

    def as_mapping(self) -> dict[int, int]:
        """``{event: interval}`` snapshot (plain dict, detached)."""
        return dict(self._interval_of)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(a) for a in self)
        return f"Schedule({body})"
