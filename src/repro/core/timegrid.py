"""Calendar-shaped time grids: building disjoint candidate intervals.

The SES formalization only requires ``T`` to be a set of disjoint
intervals; real deployments derive ``T`` from a calendar — "evenings over
an 11-day festival", "weekend afternoons next quarter".  This module
builds such grids once, correctly (disjointness is validated by
``SESInstance``, but labels, day arithmetic and part offsets are easy to
fumble in user code), and is what the Summerfest example and the CLI demo
lean on.

A grid is defined by a sequence of named :class:`DayPart` windows repeated
over ``n_days``; hours are real numbers from an arbitrary epoch (day 0,
00:00), so downstream code can still do arithmetic on ``start``/``end``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import TimeInterval

__all__ = ["DayPart", "CalendarGrid", "EVENING_ONLY", "AFTERNOON_AND_EVENING"]

_HOURS_PER_DAY = 24.0
_WEEKDAY_NAMES = ("mon", "tue", "wed", "thu", "fri", "sat", "sun")


@dataclass(frozen=True)
class DayPart:
    """A named daily window, e.g. ``DayPart("evening", 19.0, 23.0)``."""

    name: str
    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < self.end_hour <= 24.0:
            raise ValueError(
                f"need 0 <= start < end <= 24, got "
                f"[{self.start_hour}, {self.end_hour}]"
            )
        if not self.name:
            raise ValueError("day part needs a non-empty name")


#: Common presets.
EVENING_ONLY = (DayPart("evening", 19.0, 23.0),)
AFTERNOON_AND_EVENING = (
    DayPart("afternoon", 14.0, 18.0),
    DayPart("evening", 19.0, 23.0),
)


class CalendarGrid:
    """A day-by-day grid of disjoint candidate intervals.

    Parameters
    ----------
    n_days:
        Number of consecutive days.
    parts:
        The windows inside each day; must be mutually non-overlapping.
    first_weekday:
        Index into mon..sun (0 = Monday) of day 0, used for labels and
        the weekend predicate.
    """

    def __init__(
        self,
        n_days: int,
        parts: tuple[DayPart, ...] = AFTERNOON_AND_EVENING,
        first_weekday: int = 0,
    ) -> None:
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        if not parts:
            raise ValueError("at least one day part is required")
        if not 0 <= first_weekday < 7:
            raise ValueError(f"first_weekday must be 0..6, got {first_weekday}")
        ordered = sorted(parts, key=lambda part: part.start_hour)
        for before, after in zip(ordered, ordered[1:]):
            if after.start_hour < before.end_hour:
                raise ValueError(
                    f"day parts {before.name!r} and {after.name!r} overlap"
                )
        self._n_days = n_days
        self._parts = tuple(ordered)
        self._first_weekday = first_weekday

    # ------------------------------------------------------------------
    @property
    def n_days(self) -> int:
        return self._n_days

    @property
    def parts(self) -> tuple[DayPart, ...]:
        return self._parts

    @property
    def n_intervals(self) -> int:
        return self._n_days * len(self._parts)

    # ------------------------------------------------------------------
    def weekday_of(self, day: int) -> str:
        """Weekday name of grid day ``day``."""
        if not 0 <= day < self._n_days:
            raise IndexError(f"day {day} out of range [0, {self._n_days})")
        return _WEEKDAY_NAMES[(self._first_weekday + day) % 7]

    def is_weekend(self, day: int) -> bool:
        return self.weekday_of(day) in ("sat", "sun")

    def day_of_interval(self, index: int) -> int:
        """Grid day of interval ``index``."""
        if not 0 <= index < self.n_intervals:
            raise IndexError(
                f"interval {index} out of range [0, {self.n_intervals})"
            )
        return index // len(self._parts)

    def part_of_interval(self, index: int) -> DayPart:
        """Day part of interval ``index``."""
        if not 0 <= index < self.n_intervals:
            raise IndexError(
                f"interval {index} out of range [0, {self.n_intervals})"
            )
        return self._parts[index % len(self._parts)]

    # ------------------------------------------------------------------
    def build_intervals(self) -> list[TimeInterval]:
        """Materialize the grid as a disjoint, labeled interval list.

        Labels look like ``d03-wed-evening``; ``start``/``end`` are hours
        from the grid epoch, so intervals across days stay disjoint.
        """
        intervals: list[TimeInterval] = []
        for day in range(self._n_days):
            base = day * _HOURS_PER_DAY
            for part in self._parts:
                intervals.append(
                    TimeInterval(
                        index=len(intervals),
                        label=f"d{day + 1:02d}-{self.weekday_of(day)}-{part.name}",
                        start=base + part.start_hour,
                        end=base + part.end_hour,
                    )
                )
        return intervals
