"""The total utility ``Omega(S)`` — Eq. 3 — and its interval decomposition.

``Omega(S)`` sums the expected attendance of every scheduled event.  Because
Eq. 1's denominator couples only events *sharing an interval*, the utility
decomposes by interval::

    Omega(S) = sum_t  sum_{u}  sigma[u, t] * M_t[u] / (K_t[u] + M_t[u])

where ``M_t[u] = sum_{e in E_t(S)} mu[u, e]`` is the scheduled interest mass
and ``K_t[u]`` the competing mass.  The identity follows by summing Eq. 1
over ``e in E_t(S)`` under the common denominator.  Both solvers and the
exhaustive baseline exploit this decomposition heavily.

:func:`total_utility` is the loop-based reference; :func:`total_utility_fast`
is the numpy evaluation of the decomposed form.  The test suite pins them to
each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.attendance import expected_attendance
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule

__all__ = [
    "total_utility",
    "total_utility_fast",
    "interval_utility_fast",
    "utility_upper_bound",
]


def total_utility(instance: SESInstance, schedule: Schedule) -> float:
    """``Omega(S)`` by direct application of Eq. 2 + Eq. 3 (reference)."""
    return sum(
        expected_attendance(instance, schedule, event)
        for event in schedule.scheduled_events()
    )


def interval_utility_fast(
    instance: SESInstance,
    schedule: Schedule,
    interval: int,
) -> float:
    """Summed expected attendance of the events at one interval (vectorized)."""
    events = schedule.events_at(interval)
    if not events:
        return 0.0
    scheduled_mass = np.zeros(instance.n_users)
    for event in events:
        scheduled_mass += instance.interest.event_column(event)
    denominator = instance.competing_mass[interval] + scheduled_mass
    sigma = instance.activity.interval_column(interval)
    ratio = np.divide(
        scheduled_mass,
        denominator,
        out=np.zeros_like(scheduled_mass),
        where=denominator > 0.0,
    )
    return float(sigma @ ratio)


def total_utility_fast(instance: SESInstance, schedule: Schedule) -> float:
    """``Omega(S)`` via the per-interval decomposition (numpy)."""
    return sum(
        interval_utility_fast(instance, schedule, interval)
        for interval in schedule.used_intervals()
    )


def utility_upper_bound(instance: SESInstance) -> float:
    """A cheap bound: ``Omega(S) <= sum_{u,t} sigma[u, t]`` for any ``S``.

    Each user contributes at most ``sigma[u, t]`` per interval because the
    scheduled events' probabilities share one denominator.  Useful as a
    sanity ceiling in tests and as a pruning bound in exact search.
    """
    return float(instance.activity.matrix.sum())
