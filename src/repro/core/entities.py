"""Domain entities of the Social Event Scheduling problem (paper Section II).

Five kinds of entities appear in the SES formulation:

* the **organizer** with a per-interval resource capacity ``theta``,
* disjoint candidate **time intervals** ``T``,
* **candidate events** ``E`` (location + required resources),
* **competing events** ``C`` pinned to one interval each, and
* **users** ``U``.

Entities are plain frozen dataclasses carrying an integer ``index`` that is
their position inside the owning :class:`~repro.core.instance.SESInstance`.
All numeric kernels (interest matrix, activity matrix, score engines) are
indexed by these integers; the dataclasses carry the human-facing metadata
(names, tags, wall-clock interval bounds) that examples and reports print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative

__all__ = [
    "User",
    "TimeInterval",
    "CandidateEvent",
    "CompetingEvent",
    "Organizer",
]


@dataclass(frozen=True, slots=True)
class User:
    """A potential attendee ``u`` in ``U``.

    The interest function ``mu`` and the social-activity probability
    ``sigma`` live in the instance-level matrices, not here; ``tags`` is
    optional metadata used by the EBSN pipeline to *derive* interest via
    Jaccard similarity (paper Section IV.A).
    """

    index: int
    name: str = ""
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"user index must be non-negative, got {self.index}")

    @property
    def display_name(self) -> str:
        """Name if provided, otherwise a stable synthetic label."""
        return self.name or f"user#{self.index}"


@dataclass(frozen=True, slots=True)
class TimeInterval:
    """A candidate time interval ``t`` in ``T``.

    The paper assumes the intervals in ``T`` are disjoint; ``start`` and
    ``end`` (arbitrary float timestamps, e.g. hours from epoch) let the
    instance validator actually enforce that when they are supplied.
    """

    index: int
    label: str = ""
    start: float | None = None
    end: float | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"interval index must be non-negative, got {self.index}")
        has_bounds = self.start is not None and self.end is not None
        if has_bounds and self.end <= self.start:
            raise ValueError(
                f"interval end must exceed start, got [{self.start}, {self.end}]"
            )

    @property
    def bounded(self) -> bool:
        """Whether wall-clock bounds were supplied."""
        return self.start is not None and self.end is not None

    @property
    def display_name(self) -> str:
        return self.label or f"t#{self.index}"

    def overlaps(self, other: "TimeInterval") -> bool:
        """True when both intervals are bounded and share interior time."""
        if not (self.bounded and other.bounded):
            return False
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True, slots=True)
class CandidateEvent:
    """A candidate event ``e`` in ``E`` awaiting an interval assignment.

    ``location`` models the place (a stage, a hall) hosting the event: the
    feasibility rule forbids two events with equal location inside one
    interval.  ``required_resources`` is ``xi_e`` from the paper, consumed
    against the organizer capacity ``theta`` per interval.
    """

    index: int
    location: int
    required_resources: float = 0.0
    name: str = ""
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"event index must be non-negative, got {self.index}")
        if self.location < 0:
            raise ValueError(f"location must be non-negative, got {self.location}")
        check_non_negative(self.required_resources, "required_resources")

    @property
    def display_name(self) -> str:
        return self.name or f"event#{self.index}"


@dataclass(frozen=True, slots=True)
class CompetingEvent:
    """A third-party event ``c`` in ``C`` already pinned to interval ``tc``.

    Competing events never enter a schedule; they only inflate the Luce
    denominator of Eq. 1 for their interval, draining attendance from
    whatever the organizer schedules there.
    """

    index: int
    interval: int
    name: str = ""
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(
                f"competing event index must be non-negative, got {self.index}"
            )
        if self.interval < 0:
            raise ValueError(f"interval must be non-negative, got {self.interval}")

    @property
    def display_name(self) -> str:
        return self.name or f"competing#{self.index}"


@dataclass(frozen=True, slots=True)
class Organizer:
    """The scheduling entity (company, venue) with capacity ``theta``.

    ``theta`` is the amount of resources (the paper's running example:
    staff) available inside *each* interval; feasible schedules keep the
    summed ``xi_e`` of co-scheduled events within it.
    """

    resources: float
    name: str = "organizer"

    def __post_init__(self) -> None:
        check_non_negative(self.resources, "resources")
