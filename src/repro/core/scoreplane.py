"""ScorePlane: a shared, warm-startable Eq.-4 marginal-gain matrix.

Every GRD-family consumer in this library revolves around the same
object: the ``(|T|, |E|)`` matrix of Eq. 4 assignment scores.  Batch
solvers materialize it cold (``Scheduler._base_scores``, the
TOP baseline's ranking matrix, beam/GRASP root expansions), and the
incremental scheduler keeps a schedule-relative variant alive across
change ops.  Before this module each consumer owned its own copy and
re-filled it from scratch — a full ``O(|T| * |E|)`` engine sweep per
batch re-solve, ~4.8 s at 20k users — even when only a handful of cells
had actually changed since the last fill.

:class:`ScorePlane` is that matrix as a first-class, reusable object:

* **storage** — one dense ``(n_intervals, n_events)`` float array plus a
  dirty-interval set; scheduled events hold ``-inf`` in their column
  (batch consumers with an empty mirrored schedule simply never see
  ``-inf``);
* **cold start** — :meth:`ensure` fills missing state through the
  engine's *batched* multi-row query
  (:meth:`~repro.core.engine.ScoreEngine.scores_for_rows`): one engine
  call per flush, which the vectorized engine evaluates as blocked
  broadcasts per row, the sparse engine as one gather pass per row, and
  a sharded engine as a single parallel fan-out over its user blocks —
  never a per-cell Python loop;
* **invalidation** — change ops dirty exactly the rows/columns whose
  inputs they touched (Eq. 1's denominator couples events only *within*
  an interval): :meth:`apply_delta` ingests the same
  :class:`~repro.core.live.LiveDelta` stream the engines consume, and
  the assignment hooks (:meth:`on_assign` / :meth:`on_unassign`) cover
  schedule-relative use;
* **accounting** — :attr:`cells_filled` / :attr:`cells_refreshed` count
  engine score evaluations, so benchmarks and CI can assert a warm
  re-solve did strictly less work than a cold fill.

Two usage roles share this one mechanism:

**Base plane** (``auto_reset=True``, the default).  The plane owns an
engine whose mirrored schedule is *empty* whenever rows are read or
refreshed; cached rows are then exactly a batch solver's initial-score
matrix.  :class:`repro.api.ScheduleSession` keeps one base plane per
:class:`~repro.core.engine.EngineSpec` so repeated solves skip the
initial sweep entirely, and
:meth:`repro.algorithms.incremental.IncrementalScheduler.base_plane`
maintains one over the live instance so periodic rebuilds and oracle
regret samples re-score only rows dirtied since the previous re-solve.
Solvers run *through* the plane's engine (committing assignments
mutates its mass state); ``auto_reset`` restores the empty baseline on
the next plane access, and the cached rows — which describe the empty
state — remain valid throughout.

**Schedule-relative plane** (``auto_reset=False``).  The incremental
scheduler's live cache: rows are scored against the engine's *current*
scheduled mass, commits blank the event's column and dirty its home
row, withdrawals dirty the row and restore the column.  The plane never
resets the engine here — the maintained schedule is the whole point.

Warm-start contract
-------------------

A cached clean cell must equal what a fresh fill would compute for the
current engine state — that is what makes a plane-fed solve
*bit-identical* to a cold one (property-tested in
``tests/properties/test_scoreplane_differential.py``).  Rows are
refreshed through ``scores_for_interval`` and single columns through
``scores_for_event``; the sparse and reference engines evaluate both
queries with per-column-identical arithmetic, and the vectorized engine
sizes its user chunks from the instance's event count (not the query's
batch size) so the two paths walk the same accumulation order.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.engine import ScoreEngine
from repro.core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
    LiveDelta,
)

__all__ = ["PlaneSnapshot", "ScorePlane"]


@dataclass(frozen=True)
class PlaneSnapshot:
    """Copy-on-write capture of a plane's cached cells (no engine state).

    ``scores`` is a private copy of the matrix (``None`` when the source
    plane was never filled), ``dirty`` the interval rows that were stale
    at capture time, and ``geometry`` the engine's floating-point query
    geometry the cells were computed under.  Adoption
    (:meth:`ScorePlane.adopt_snapshot`) copies again, so one snapshot can
    warm any number of planes; a snapshot whose geometry does not match
    the adopting engine is rejected (the plane starts cold instead) —
    cells computed under different accumulation grouping would violate
    the warm-start contract.
    """

    scores: np.ndarray | None
    dirty: frozenset[int]
    geometry: object


class ScorePlane:
    """Persistent Eq.-4 score matrix with dirty-row invalidation.

    Parameters
    ----------
    engine:
        The score engine every cell is evaluated through.  The plane
        reads the engine's mirrored schedule to decide which events are
        scorable, and (in its live-delta role) forwards structural
        deltas to ``engine.apply_delta`` before patching its own cells.
    auto_reset:
        When True (the *base plane* role) the engine is reset back to an
        empty schedule whenever the plane is read or mutated with
        assignments still mirrored — the leftovers of a batch solve run
        through this plane.  Set False for a schedule-relative plane
        whose engine legitimately carries a maintained schedule.
    """

    def __init__(self, engine: ScoreEngine, *, auto_reset: bool = True) -> None:
        self._engine = engine
        self._auto_reset = auto_reset
        self._scores: np.ndarray | None = None
        self._dirty: set[int] = set()
        # the engine's floating-point query geometry at fill time; a
        # change (e.g. vectorized chunk boundaries moving when the live
        # event count crosses a power of two) means cached cells no
        # longer bit-match fresh queries, so the matrix is dropped
        self._geometry = engine.score_geometry()
        # engine-evaluation accounting (cells, not rows)
        self._cells_filled = 0
        self._cells_refreshed = 0
        self._fills = 0
        self._warm_reads = 0

    # -- introspection --------------------------------------------------
    @property
    def engine(self) -> ScoreEngine:
        return self._engine

    @property
    def n_intervals(self) -> int:
        return self._engine.instance.n_intervals

    @property
    def n_events(self) -> int:
        return self._engine.instance.n_events

    @property
    def array(self) -> np.ndarray | None:
        """The raw matrix (``None`` before the first :meth:`ensure`).

        May contain stale dirty rows; consumers wanting current values
        call :meth:`ensure`.  Mutating the returned array corrupts the
        cache — copy first (solvers work on copies).
        """
        return self._scores

    @property
    def filled(self) -> bool:
        return self._scores is not None

    @property
    def dirty_intervals(self) -> frozenset[int]:
        return frozenset(self._dirty)

    # -- accounting -----------------------------------------------------
    @property
    def cells_filled(self) -> int:
        """Engine score evaluations spent on cold fills."""
        return self._cells_filled

    @property
    def cells_refreshed(self) -> int:
        """Engine score evaluations spent re-scoring dirty state."""
        return self._cells_refreshed

    @property
    def fills(self) -> int:
        """Cold (whole-matrix) fills performed."""
        return self._fills

    @property
    def warm_reads(self) -> int:
        """:meth:`ensure` calls served from already-filled state."""
        return self._warm_reads

    def stats(self) -> dict[str, int]:
        """JSON-ready accounting snapshot (benchmark artifacts)."""
        return {
            "cells_filled": self._cells_filled,
            "cells_refreshed": self._cells_refreshed,
            "fills": self._fills,
            "warm_reads": self._warm_reads,
        }

    # -- the read path --------------------------------------------------
    def ensure(self) -> np.ndarray:
        """Bring the matrix current and return it (cold fill if needed)."""
        self._maybe_reset()
        if self._scores is None:
            self._scores = np.empty((self.n_intervals, self.n_events))
            self._dirty = set(range(self.n_intervals))
            self._geometry = self._engine.score_geometry()
            self._fills += 1
            self.flush(_cold=True)
        else:
            self._warm_reads += 1
            self.flush()
        return self._scores

    def masked_copy(
        self,
        forbids: Iterable[tuple[int, int]] = (),
        consumed_events: Iterable[int] = (),
    ) -> np.ndarray:
        """A private copy of :meth:`ensure` with lock cells masked out.

        ``forbids`` are ``(interval, event)`` cells an organizer lock
        rules out; ``consumed_events`` are whole columns (events already
        committed by pins) no solver may pick again.  Both become
        ``-inf`` in the returned copy, so a flat argmax over the masked
        matrix can never select a locked cell — the warm-path analogue of
        the cold masking in :meth:`Scheduler._base_scores`.  The cached
        matrix itself is untouched; accounting is identical to a plain
        :meth:`ensure` plus copy.
        """
        matrix = np.array(self.ensure(), copy=True)
        consumed = list(consumed_events)
        if consumed:
            matrix[:, consumed] = -np.inf
        for interval, event in forbids:
            matrix[interval, event] = -np.inf
        return matrix

    def flush(self, _cold: bool = False) -> None:
        """Re-score every dirty interval row in one batched engine call.

        All dirty rows go through
        :meth:`~repro.core.engine.ScoreEngine.scores_for_rows` at once
        (in ascending interval order, so values are bit-identical to the
        old per-row loop — the default implementation *is* that loop).
        A sharded engine overrides the batched query to fan the whole
        dirty set out across its worker pool exactly once per flush.
        """
        if not self._dirty:
            return
        assert self._scores is not None
        dirty = sorted(self._dirty)
        schedule = self._engine.schedule
        unscheduled = [
            event
            for event in range(self.n_events)
            if not schedule.contains_event(event)
        ]
        self._scores[dirty] = -np.inf
        if unscheduled:
            self._scores[np.ix_(dirty, unscheduled)] = (
                self._engine.scores_for_rows(dirty, unscheduled)
            )
            cells = len(dirty) * len(unscheduled)
            if _cold:
                self._cells_filled += cells
            else:
                self._cells_refreshed += cells
        self._dirty.clear()

    def invalidate(self) -> None:
        """Drop all cached state; the next :meth:`ensure` refills cold."""
        self._scores = None
        self._dirty.clear()

    def seed_from(self, other: ScorePlane) -> None:
        """Adopt another plane's ensured matrix as this plane's state.

        Used to warm-start a schedule-relative plane right after its
        engine was reset (empty schedule == the base plane's baseline).
        Both planes must be driven by engines over the same live state;
        the copy keeps the two caches independent afterwards.
        """
        self._scores = np.array(other.ensure(), copy=True)
        self._dirty.clear()
        self._geometry = self._engine.score_geometry()

    # -- copy-on-write cloning (the serving layer's replica fork) --------
    def snapshot(self) -> PlaneSnapshot:
        """Capture the cached cells in O(cells) — zero engine evaluations.

        Dirty rows are carried as-is (the adopter refreshes them through
        its own engine on first read), so a snapshot never triggers the
        re-sweep it exists to avoid.
        """
        self._maybe_reset()
        return PlaneSnapshot(
            scores=None if self._scores is None else self._scores.copy(),
            dirty=frozenset(self._dirty),
            geometry=self._geometry,
        )

    def adopt_snapshot(self, snapshot: PlaneSnapshot) -> None:
        """Replace this plane's cached cells with a snapshot's.

        A geometry mismatch (or an empty snapshot) leaves the plane cold:
        the next :meth:`ensure` refills through this plane's engine.
        """
        if (
            snapshot.scores is None
            or snapshot.geometry != self._engine.score_geometry()
            or snapshot.scores.shape != (self.n_intervals, self.n_events)
        ):
            self.invalidate()
            return
        self._scores = snapshot.scores.copy()
        self._dirty = set(snapshot.dirty)
        self._geometry = snapshot.geometry

    def fork(self, engine: ScoreEngine | None = None) -> ScorePlane:
        """An independent plane adopting this plane's cells in O(cells).

        ``engine`` defaults to :meth:`ScoreEngine.clone` of this plane's
        engine; the serving pool instead injects a clone of a template
        engine built over a frozen snapshot, isolating the fork from live
        mutations.  Either way the injected engine must mirror the same
        schedule as the parent's (enforced below), since the cached cells
        — including the ``-inf`` columns of scheduled events — describe
        exactly that schedule.

        The fork's accounting starts at zero, so ``fork().cells_filled``
        staying 0 across warm solves is the CI-checkable proof that
        replicas are O(cells) copies, never re-sweeps.  Solves through
        the fork are bit-identical to solves through the parent
        (differential-tested in ``tests/serve/test_fork.py``): the cells
        are the same floats and both engines refresh rows with identical
        accumulation geometry.
        """
        self._maybe_reset()
        if engine is None:
            engine = self._engine.clone()
        if self._auto_reset and len(engine.schedule):
            engine.reset()
        elif engine.schedule.as_mapping() != self._engine.schedule.as_mapping():
            raise ValueError(
                "fork engine mirrors a different schedule than the plane's "
                "own engine; the cached cells would not describe its state"
            )
        clone = ScorePlane(engine, auto_reset=self._auto_reset)
        if (
            self._scores is not None
            and clone._geometry == self._geometry
            and self._scores.shape == (clone.n_intervals, clone.n_events)
        ):
            clone._scores = self._scores.copy()
            clone._dirty = set(self._dirty)
        return clone

    # -- invalidation hooks ---------------------------------------------
    def mark_dirty(self, interval: int) -> None:
        """Declare one interval's scheduled/competing mass changed."""
        self._dirty.add(interval)

    def on_assign(self, event: int, interval: int) -> None:
        """Mirror a committed assignment: consume the event's column."""
        if self._scores is not None:
            self._scores[:, event] = -np.inf
            self._dirty.add(interval)

    def on_unassign(self, event: int, interval: int) -> None:
        """Mirror a withdrawal: the event is scorable again."""
        if self._scores is not None:
            self._dirty.add(interval)
            self.restore_column(event)

    def restore_column(self, event: int) -> None:
        """Recompute an unscheduled event's scores at every clean row."""
        if self._scores is None:
            return
        clean = [
            interval
            for interval in range(self.n_intervals)
            if interval not in self._dirty
        ]
        if clean:
            self._scores[clean, event] = self._engine.scores_for_event(
                event, clean
            )
            self._cells_refreshed += len(clean)

    # -- structural deltas ----------------------------------------------
    def apply_delta(self, delta: LiveDelta) -> None:
        """Ingest one live-instance mutation: engine first, then cells.

        The plane forwards the delta to its engine (so base planes stay
        self-contained observers of a live instance) and then patches
        exactly the cells the mutation semantically touched:

        * event arrival      -> one appended column, restored on clean rows;
        * event removal      -> one deleted column (the engine renumbers
          its schedule mirror; callers dirty the home row themselves when
          the victim was scheduled, since by delta time it is not);
        * interest drift     -> the event's home row when scheduled, else
          its column;
        * rival announcement -> the contested interval's row.
        """
        self._maybe_reset()
        self._engine.apply_delta(delta)
        geometry = self._engine.score_geometry()
        if geometry != self._geometry:
            # chunk boundaries (or any other accumulation grouping)
            # moved: cached cells would differ at the ulp level from
            # what a fresh fill computes, violating the warm-start
            # contract — drop everything and refill on next read
            self._geometry = geometry
            self.invalidate()
            return
        if self._scores is None:
            return
        if isinstance(delta, EventAdded):
            self._scores = np.column_stack(
                [self._scores, np.full(self.n_intervals, -np.inf)]
            )
            self.restore_column(delta.event)
        elif isinstance(delta, EventRemoved):
            self._scores = np.delete(self._scores, delta.event, axis=1)
        elif isinstance(delta, EventInterestReplaced):
            home = self._engine.schedule.interval_of(delta.event)
            if home is not None:
                self._dirty.add(home)
            else:
                self.restore_column(delta.event)
        elif isinstance(delta, CompetingAdded):
            self._dirty.add(delta.interval)

    # -- internals ------------------------------------------------------
    def _maybe_reset(self) -> None:
        if self._auto_reset and len(self._engine.schedule):
            self._engine.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "empty" if self._scores is None else (
            f"{self._scores.shape[0]}x{self._scores.shape[1]}, "
            f"{len(self._dirty)} dirty"
        )
        return f"ScorePlane({state}, engine={type(self._engine).__name__})"
