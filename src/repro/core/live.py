"""Mutable in-place instance state for O(delta) streaming change ops.

:class:`~repro.core.instance.SESInstance` is deliberately immutable, which
is the right contract for batch solvers — but the streaming subsystem pays
for it dearly: reconstructing an instance per change op costs O(instance)
in validation, interest-matrix copies, competing-mass recomputation and
engine re-assembly.  :class:`LiveInstance` is the mutable counterpart for
the online hot path:

* it mirrors the read surface every engine, schedule and feasibility
  checker consumes (``events``, ``interest``, ``activity``,
  ``competing_by_interval``, ``competing_mass``, ``theta``, the ``n_*``
  counts), so all of them can be *built over a live instance directly* and
  simply observe mutations;
* its four structural mutators — :meth:`add_event`, :meth:`remove_event`,
  :meth:`replace_event_interest`, :meth:`add_competing` — apply a change
  in O(delta) (one column touched, entity lists patched in place) and
  return a :class:`LiveDelta` describing exactly what changed;
* engines ingest that delta through
  :meth:`~repro.core.engine.ScoreEngine.apply_delta`, updating any state
  they cache (dense ``mu`` views, per-interval mass vectors, competing
  entry caches) in place instead of being rebuilt;
* :meth:`freeze` materializes an equivalent immutable
  :class:`SESInstance` — field-for-field identical to what rebuilding from
  scratch would produce — for batch re-solves, oracle queries and
  serialization.  The snapshot is cached until the next mutation, and the
  number of materializations is counted (:attr:`freezes`) so benchmarks
  and tests can assert the O(delta) fast path is actually taken.

Interest storage lives in :class:`LiveInterest`, which preserves the
backend of the source :class:`~repro.core.interest.InterestMatrix`: a
dense matrix becomes a growable Fortran-ordered column buffer (append /
replace are single-column writes), a sparse CSC matrix becomes a list of
per-column ``(rows, values)`` entry pairs (append / replace / remove are
O(nnz of the touched column)).  Either way the accessor protocol engines
consume (:meth:`~LiveInterest.event_column_entries`,
:meth:`~LiveInterest.competing_mass_entries`, ...) answers directly from
live storage.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.errors import InstanceValidationError, UnknownEntityError
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix, merge_entries, slice_entries

try:  # scipy is an optional dependency (the "sparse" extra)
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = [
    "LiveDelta",
    "EventAdded",
    "EventRemoved",
    "EventInterestReplaced",
    "CompetingAdded",
    "LiveInterest",
    "LiveInstance",
]

_EMPTY_ROWS = np.zeros(0, dtype=np.intp)
_EMPTY_VALUES = np.zeros(0)


# ----------------------------------------------------------------------
# deltas: what one structural mutation changed
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class LiveDelta:
    """Base of the structural-change records produced by mutators.

    Every leaf carrying sparse ``(user, value)`` payloads localizes to a
    user-row window via :meth:`restricted` — the primitive the shard
    router (:func:`repro.shard.engine.localize_delta`) uses to route each
    delta to exactly the user blocks it touches.
    """

    def restricted(self, lo: int, hi: int) -> "LiveDelta":
        """This delta with user payloads restricted to rows ``[lo, hi)``.

        Returned rows are local to the window (shifted by ``-lo``).
        Leaves without user payloads return ``self``.
        """
        raise NotImplementedError  # pragma: no cover - leaves override


@dataclass(frozen=True, eq=False)
class EventAdded(LiveDelta):
    """A candidate event was appended; ``rows``/``values`` is its column."""

    event: int
    rows: np.ndarray
    values: np.ndarray

    def restricted(self, lo: int, hi: int) -> "EventAdded":
        rows, values = slice_entries(self.rows, self.values, lo, hi)
        return EventAdded(event=self.event, rows=rows, values=values)


@dataclass(frozen=True, eq=False)
class EventRemoved(LiveDelta):
    """Candidate ``event`` was removed; later events shifted down by one.

    The event must be *unscheduled* at removal time (withdraw it from the
    engine and the feasibility checker first); engines only need to
    renumber their schedule mirrors.
    """

    event: int

    def restricted(self, lo: int, hi: int) -> "EventRemoved":
        return self  # no user payload: every block sees the same removal


@dataclass(frozen=True, eq=False)
class EventInterestReplaced(LiveDelta):
    """Candidate ``event``'s interest column drifted old -> new."""

    event: int
    old_rows: np.ndarray
    old_values: np.ndarray
    rows: np.ndarray
    values: np.ndarray

    def restricted(self, lo: int, hi: int) -> "EventInterestReplaced":
        old_rows, old_values = slice_entries(
            self.old_rows, self.old_values, lo, hi
        )
        rows, values = slice_entries(self.rows, self.values, lo, hi)
        return EventInterestReplaced(
            event=self.event,
            old_rows=old_rows,
            old_values=old_values,
            rows=rows,
            values=values,
        )


@dataclass(frozen=True, eq=False)
class CompetingAdded(LiveDelta):
    """A rival was appended at ``interval``; ``rows``/``values`` is its column."""

    competing: int
    interval: int
    rows: np.ndarray
    values: np.ndarray

    def restricted(self, lo: int, hi: int) -> "CompetingAdded":
        rows, values = slice_entries(self.rows, self.values, lo, hi)
        return CompetingAdded(
            competing=self.competing,
            interval=self.interval,
            rows=rows,
            values=values,
        )


# ----------------------------------------------------------------------
# interest storage
# ----------------------------------------------------------------------
class _DenseColumns:
    """A growable Fortran-ordered column buffer over one dense matrix.

    Appends amortize to O(n_users) via capacity doubling; the active
    window is exposed as a zero-copy view.  Column deletion shifts the
    tail left (a contiguous memmove in Fortran order), matching the
    renumbering semantics of event cancellation.
    """

    __slots__ = ("_buffer", "_n")

    def __init__(self, matrix: np.ndarray) -> None:
        self._n = matrix.shape[1]
        self._buffer = np.array(matrix, dtype=float, order="F", copy=True)

    @property
    def n_columns(self) -> int:
        return self._n

    def view(self) -> np.ndarray:
        """The active ``(n_users, n_columns)`` window (do not mutate)."""
        return self._buffer[:, : self._n]

    def column(self, index: int) -> np.ndarray:
        return self._buffer[:, index].copy()

    def append(self, column: np.ndarray) -> None:
        if self._n == self._buffer.shape[1]:
            capacity = max(4, 2 * self._buffer.shape[1])
            grown = np.empty(
                (self._buffer.shape[0], capacity), dtype=float, order="F"
            )
            grown[:, : self._n] = self._buffer[:, : self._n]
            self._buffer = grown
        self._buffer[:, self._n] = column
        self._n += 1

    def remove(self, index: int) -> None:
        self._buffer[:, index : self._n - 1] = self._buffer[
            :, index + 1 : self._n
        ]
        self._n -= 1

    def put(self, index: int, column: np.ndarray) -> None:
        self._buffer[:, index] = column

    def copy(self) -> "_DenseColumns":
        """Independent buffer with the same active columns (same floats)."""
        clone = _DenseColumns.__new__(_DenseColumns)
        clone._n = self._n
        clone._buffer = self._buffer.copy(order="F")
        return clone


def _entries_of(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nonzero ``(rows, values)`` of a dense column (sorted rows)."""
    rows = np.flatnonzero(column)
    return rows.astype(np.intp, copy=False), column[rows].copy()


class LiveInterest:
    """Mutable, backend-preserving storage of ``mu`` for one live instance.

    Answers the same accessor protocol as
    :class:`~repro.core.interest.InterestMatrix` (column gather, dense
    column expansion, per-interval competing-mass accumulation, element
    access), so engines and the reference Eq. 1–4 functions consume live
    and frozen interest interchangeably.
    """

    def __init__(self, matrix: InterestMatrix) -> None:
        self._backend = matrix.backend
        self._n_users = matrix.n_users
        if self._backend == "dense":
            self._candidate = _DenseColumns(matrix.candidate)
            self._competing = _DenseColumns(matrix.competing)
            self._event_entries = None
            self._competing_entries = None
        else:
            self._candidate = None
            self._competing = None
            self._event_entries = [
                matrix.event_column_entries(e) for e in range(matrix.n_events)
            ]
            self._competing_entries = [
                matrix.competing_column_entries(c)
                for c in range(matrix.n_competing)
            ]

    # -- shape ----------------------------------------------------------
    @property
    def backend(self) -> str:
        return self._backend

    @property
    def n_users(self) -> int:
        return self._n_users

    @property
    def n_events(self) -> int:
        if self._backend == "dense":
            return self._candidate.n_columns
        return len(self._event_entries)

    @property
    def n_competing(self) -> int:
        if self._backend == "dense":
            return self._competing.n_columns
        return len(self._competing_entries)

    # -- validation -----------------------------------------------------
    def _as_column(self, column: Any) -> np.ndarray:
        column = np.asarray(column, dtype=float)
        if column.shape != (self._n_users,):
            raise ValueError(
                f"interest column must have shape ({self._n_users},), "
                f"got {column.shape}"
            )
        if np.isnan(column).any():
            raise ValueError("interest column contains NaN entries")
        if column.size and (column.min() < 0.0 or column.max() > 1.0):
            raise ValueError(
                f"interest column entries must lie in [0, 1]; observed "
                f"range [{column.min()}, {column.max()}]"
            )
        return column

    # -- accessor protocol (what engines consume) -----------------------
    @property
    def candidate(self) -> np.ndarray:
        """Candidate ``mu`` as a dense array (zero-copy view when dense)."""
        if self._backend == "dense":
            return self._candidate.view()
        dense = np.zeros((self._n_users, self.n_events))
        for event, (rows, values) in enumerate(self._event_entries):
            dense[rows, event] = values
        return dense

    @property
    def competing(self) -> np.ndarray:
        """Competing ``mu`` as a dense array (zero-copy view when dense)."""
        if self._backend == "dense":
            return self._competing.view()
        dense = np.zeros((self._n_users, self.n_competing))
        for rival, (rows, values) in enumerate(self._competing_entries):
            dense[rows, rival] = values
        return dense

    def mu_event(self, user: int, event: int) -> float:
        if self._backend == "dense":
            return float(self._candidate.view()[user, event])
        rows, values = self._event_entries[event]
        position = np.searchsorted(rows, user)
        if position < rows.size and rows[position] == user:
            return float(values[position])
        return 0.0

    def mu_competing(self, user: int, competing: int) -> float:
        if self._backend == "dense":
            return float(self._competing.view()[user, competing])
        rows, values = self._competing_entries[competing]
        position = np.searchsorted(rows, user)
        if position < rows.size and rows[position] == user:
            return float(values[position])
        return 0.0

    def event_column(self, event: int) -> np.ndarray:
        if self._backend == "dense":
            return self._candidate.column(event)
        rows, values = self._event_entries[event]
        out = np.zeros(self._n_users)
        out[rows] = values
        return out

    def competing_column(self, competing: int) -> np.ndarray:
        if self._backend == "dense":
            return self._competing.column(competing)
        rows, values = self._competing_entries[competing]
        out = np.zeros(self._n_users)
        out[rows] = values
        return out

    def event_column_entries(self, event: int) -> tuple[np.ndarray, np.ndarray]:
        if self._backend == "dense":
            return _entries_of(self._candidate.view()[:, event])
        return self._event_entries[event]

    def competing_column_entries(
        self, competing: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._backend == "dense":
            return _entries_of(self._competing.view()[:, competing])
        return self._competing_entries[competing]

    def competing_mass_entries(
        self, rivals: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``K_t`` as a sparse vector (see :class:`InterestMatrix`)."""
        if not len(rivals):
            return _EMPTY_ROWS, _EMPTY_VALUES
        parts = [self.competing_column_entries(rival) for rival in rivals]
        rows = np.concatenate([rows for rows, _ in parts])
        values = np.concatenate([values for _, values in parts])
        return merge_entries(rows, values)

    def nnz_candidate(self) -> int:
        """Number of nonzero candidate-interest entries."""
        if self._backend == "dense":
            return int(np.count_nonzero(self._candidate.view()))
        return int(sum(rows.size for rows, _ in self._event_entries))

    # -- mutators (O(delta)) --------------------------------------------
    def append_event(self, column: Any) -> tuple[np.ndarray, np.ndarray]:
        column = self._as_column(column)
        entries = _entries_of(column)
        if self._backend == "dense":
            self._candidate.append(column)
        else:
            self._event_entries.append(entries)
        return entries

    def remove_event(self, event: int) -> None:
        if self._backend == "dense":
            self._candidate.remove(event)
        else:
            del self._event_entries[event]

    def replace_event(
        self, event: int, column: Any
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Swap one candidate column; returns old and new entries."""
        column = self._as_column(column)
        old_rows, old_values = self.event_column_entries(event)
        rows, values = _entries_of(column)
        if self._backend == "dense":
            self._candidate.put(event, column)
        else:
            self._event_entries[event] = (rows, values)
        return old_rows, old_values, rows, values

    def append_competing(self, column: Any) -> tuple[np.ndarray, np.ndarray]:
        column = self._as_column(column)
        entries = _entries_of(column)
        if self._backend == "dense":
            self._competing.append(column)
        else:
            self._competing_entries.append(entries)
        return entries

    # -- freezing -------------------------------------------------------
    def freeze(self) -> InterestMatrix:
        """An immutable :class:`InterestMatrix` equal to the live state."""
        if self._backend == "dense":
            return InterestMatrix.from_arrays(
                self._candidate.view().copy(),
                self._competing.view().copy(),
                backend="dense",
            )
        return InterestMatrix.from_scipy(
            self._to_csc(self._event_entries, self.n_events),
            self._to_csc(self._competing_entries, self.n_competing),
        )

    def _to_csc(
        self, columns: list[tuple[np.ndarray, np.ndarray]], n_columns: int
    ) -> Any:
        indptr = np.zeros(n_columns + 1, dtype=np.intp)
        for index, (rows, _) in enumerate(columns):
            indptr[index + 1] = indptr[index] + rows.size
        if n_columns:
            indices = np.concatenate([rows for rows, _ in columns])
            data = np.concatenate([values for _, values in columns])
        else:
            indices, data = _EMPTY_ROWS, _EMPTY_VALUES
        return _sp.csc_matrix(
            (data, indices, indptr), shape=(self._n_users, n_columns)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LiveInterest(users={self.n_users}, events={self.n_events}, "
            f"competing={self.n_competing}, backend={self._backend!r})"
        )


# ----------------------------------------------------------------------
# the live instance
# ----------------------------------------------------------------------
class LiveInstance:
    """Mutable view over an :class:`SESInstance` for streaming change ops.

    Mirrors the instance read surface engines and checkers consume, so
    they can be constructed over a live instance directly (duck typing —
    every consumer only indexes and iterates).  Structural mutators apply
    a change in O(delta) and return the :class:`LiveDelta` that
    :meth:`~repro.core.engine.ScoreEngine.apply_delta` ingests.

    ``freeze()`` materializes the equivalent immutable snapshot (cached
    until the next mutation); :attr:`freezes` counts materializations so
    the streaming fast path can prove it never fell back to O(instance)
    rebuilds.
    """

    def __init__(self, instance: SESInstance) -> None:
        self._users = instance.users
        self._intervals = instance.intervals
        self._events: list[CandidateEvent] = list(instance.events)
        self._competing: list[CompetingEvent] = list(instance.competing)
        self._interest = LiveInterest(instance.interest)
        self._activity = instance.activity
        self._organizer = instance.organizer
        self._competing_by_interval: list[list[int]] = [
            list(group) for group in instance.competing_by_interval
        ]
        self._competing_mass: np.ndarray | None = None
        # the source instance doubles as the first frozen snapshot
        self._frozen: SESInstance | None = instance
        self._freezes = 0
        self._mutations = 0

    # -- entity access (SESInstance read surface) -----------------------
    @property
    def users(self) -> tuple[User, ...]:
        return self._users

    @property
    def intervals(self) -> tuple[TimeInterval, ...]:
        return self._intervals

    @property
    def events(self) -> list[CandidateEvent]:
        """Live candidate-event list (indexable; do not mutate)."""
        return self._events

    @property
    def competing(self) -> list[CompetingEvent]:
        """Live competing-event list (indexable; do not mutate)."""
        return self._competing

    @property
    def interest(self) -> LiveInterest:
        return self._interest

    @property
    def activity(self) -> ActivityModel:
        return self._activity

    @property
    def organizer(self) -> Organizer:
        return self._organizer

    @property
    def theta(self) -> float:
        return self._organizer.resources

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_intervals(self) -> int:
        return len(self._intervals)

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def n_competing(self) -> int:
        return len(self._competing)

    @property
    def competing_by_interval(self) -> list[list[int]]:
        """``C_t`` as live index lists (do not mutate)."""
        return self._competing_by_interval

    @property
    def competing_mass(self) -> np.ndarray:
        """``K_t[u]`` as a dense ``(n_intervals, n_users)`` array.

        Materialized on first access (only the dense engines touch it)
        and thereafter maintained in place by :meth:`add_competing` —
        accumulation order matches :attr:`SESInstance.competing_mass`
        exactly, so frozen snapshots agree bit for bit.
        """
        if self._competing_mass is None:
            mass = np.zeros((self.n_intervals, self.n_users))
            for interval, rivals in enumerate(self._competing_by_interval):
                for rival in rivals:
                    mass[interval] += self._interest.competing_column(rival)
            self._competing_mass = mass
        return self._competing_mass

    # -- bookkeeping ----------------------------------------------------
    @property
    def freezes(self) -> int:
        """Number of O(instance) snapshot materializations so far."""
        return self._freezes

    @property
    def mutations(self) -> int:
        """Number of structural mutations applied so far."""
        return self._mutations

    def _touch(self) -> None:
        self._frozen = None
        self._mutations += 1

    # -- structural mutators --------------------------------------------
    def add_event(
        self, event: CandidateEvent, interest_column: Any
    ) -> EventAdded:
        """Append a candidate event with its interest column."""
        if event.index != self.n_events:
            raise InstanceValidationError(
                f"{event.display_name} carries index {event.index}; the next "
                f"candidate-event index is {self.n_events}"
            )
        if event.required_resources > self.theta:
            raise InstanceValidationError(
                f"{event.display_name} requires {event.required_resources} "
                f"resources, exceeding organizer capacity {self.theta}; "
                f"it could never be scheduled"
            )
        rows, values = self._interest.append_event(interest_column)
        self._events.append(event)
        self._touch()
        return EventAdded(event=event.index, rows=rows, values=values)

    def remove_event(self, event: int) -> EventRemoved:
        """Delete a candidate event; subsequent events are renumbered."""
        if not 0 <= event < self.n_events:
            raise UnknownEntityError(f"no candidate event {event}")
        self._interest.remove_event(event)
        del self._events[event]
        for index in range(event, len(self._events)):
            self._events[index] = replace(self._events[index], index=index)
        self._touch()
        return EventRemoved(event=event)

    def replace_event_interest(
        self, event: int, interest_column: Any
    ) -> EventInterestReplaced:
        """Swap one candidate event's interest column (taste drift)."""
        if not 0 <= event < self.n_events:
            raise UnknownEntityError(f"no candidate event {event}")
        old_rows, old_values, rows, values = self._interest.replace_event(
            event, interest_column
        )
        self._touch()
        return EventInterestReplaced(
            event=event,
            old_rows=old_rows,
            old_values=old_values,
            rows=rows,
            values=values,
        )

    def add_competing(
        self, rival: CompetingEvent, interest_column: Any
    ) -> CompetingAdded:
        """Append a competing event pinned to its interval."""
        if rival.index != self.n_competing:
            raise InstanceValidationError(
                f"{rival.display_name} carries index {rival.index}; the next "
                f"competing-event index is {self.n_competing}"
            )
        if rival.interval >= self.n_intervals:
            raise InstanceValidationError(
                f"{rival.display_name} references interval {rival.interval}, "
                f"instance has only {self.n_intervals}"
            )
        rows, values = self._interest.append_competing(interest_column)
        self._competing.append(rival)
        self._competing_by_interval[rival.interval].append(rival.index)
        if self._competing_mass is not None:
            # in-place K_t update keeps the dense cache O(delta)-current
            np.add.at(self._competing_mass[rival.interval], rows, values)
        self._touch()
        return CompetingAdded(
            competing=rival.index, interval=rival.interval, rows=rows,
            values=values,
        )

    # -- freezing -------------------------------------------------------
    def freeze(self) -> SESInstance:
        """The equivalent immutable :class:`SESInstance` (cached snapshot).

        Field-for-field identical to rebuilding the instance from scratch
        with the same history; costs O(instance), so hot paths must route
        through deltas instead and only batch re-solves / oracles freeze.
        """
        if self._frozen is None:
            self._freezes += 1
            self._frozen = SESInstance(
                users=self._users,
                intervals=self._intervals,
                events=tuple(self._events),
                competing=tuple(self._competing),
                interest=self._interest.freeze(),
                activity=self._activity,
                organizer=self._organizer,
            )
        return self._frozen

    def describe(self) -> str:
        """One-line human summary, mirroring :meth:`SESInstance.describe`."""
        return (
            f"LiveInstance(users={self.n_users}, events={self.n_events}, "
            f"intervals={self.n_intervals}, competing={self.n_competing}, "
            f"theta={self.theta})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
