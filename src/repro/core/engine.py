"""Score engines: interchangeable evaluators of Eq. 1–4 against a live schedule.

Greedy solvers interrogate the objective thousands of times; this module
provides that oracle behind one interface, :class:`ScoreEngine`, with two
implementations:

* :class:`ReferenceEngine` — delegates to the loop-based reference functions
  in :mod:`repro.core.attendance` / :mod:`~repro.core.objective` /
  :mod:`~repro.core.scoring`.  O(|U| * |E_t|) per query.  The semantic
  oracle: slow, obviously-correct, used to cross-check everything else.

* :class:`VectorizedEngine` — maintains, per interval ``t``, the scheduled
  interest mass ``M_t[u] = sum_{e in E_t(S)} mu[u, e]`` as a numpy vector.
  With the competing mass ``K_t`` precomputed on the instance, Eq. 4
  collapses to::

      score(r, t) = sum_u sigma[u, t] * ( (M + m_r) / (K + M + m_r)
                                          -  M      / (K + M) )

  evaluated for *all* candidate events of one interval in a single
  broadcast (chunked over users to bound peak memory).  This is the form
  derived in DESIGN.md §5; equality with the reference engine to 1e-9 is a
  property test.

Both engines mirror the schedule they evaluate: call :meth:`assign` /
:meth:`unassign` as the solver commits moves.  0/0 is defined as 0
throughout, matching the reference semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.core import attendance, objective, scoring
from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

__all__ = ["ScoreEngine", "ReferenceEngine", "VectorizedEngine", "make_engine"]


class ScoreEngine(ABC):
    """Stateful evaluator of utilities and marginal scores for one instance."""

    def __init__(self, instance: SESInstance) -> None:
        self._instance = instance
        self._schedule = Schedule(instance)

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        return self._instance

    @property
    def schedule(self) -> Schedule:
        """The schedule currently mirrored by the engine (do not mutate)."""
        return self._schedule

    def reset(self) -> None:
        """Forget all assignments; equivalent to rebuilding the engine."""
        self._schedule = Schedule(self._instance)
        self._reset_state()

    def assign(self, event: int, interval: int) -> None:
        """Commit ``alpha_event^interval``; scores now reflect the new state."""
        self._schedule.add(Assignment(event=event, interval=interval))
        self._apply(event, interval, sign=+1)

    def unassign(self, event: int) -> None:
        """Withdraw a committed assignment (used by local search / undo)."""
        removed = self._schedule.remove(event)
        self._apply(removed.event, removed.interval, sign=-1)

    # ------------------------------------------------------------------
    # queries every engine must answer
    # ------------------------------------------------------------------
    @abstractmethod
    def score(self, event: int, interval: int) -> float:
        """Eq. 4: utility gain of adding ``event`` at ``interval`` now."""

    @abstractmethod
    def scores_for_interval(
        self, interval: int, events: Sequence[int]
    ) -> np.ndarray:
        """Vector of Eq. 4 scores for many candidate events at one interval."""

    @abstractmethod
    def omega(self, event: int) -> float:
        """Eq. 2: expected attendance of a *scheduled* event."""

    @abstractmethod
    def interval_utility(self, interval: int) -> float:
        """Summed expected attendance of the events at ``interval``."""

    @abstractmethod
    def total_utility(self) -> float:
        """Eq. 3 for the mirrored schedule."""

    # ------------------------------------------------------------------
    # state hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _reset_state(self) -> None: ...

    @abstractmethod
    def _apply(self, event: int, interval: int, sign: int) -> None: ...


class ReferenceEngine(ScoreEngine):
    """Paper-faithful engine: every query recomputes from the equations."""

    def score(self, event: int, interval: int) -> float:
        return scoring.assignment_score(
            self._instance, self._schedule, Assignment(event=event, interval=interval)
        )

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        return np.array([self.score(event, interval) for event in events])

    def omega(self, event: int) -> float:
        return attendance.expected_attendance(self._instance, self._schedule, event)

    def interval_utility(self, interval: int) -> float:
        return sum(
            attendance.expected_attendance(self._instance, self._schedule, event)
            for event in self._schedule.events_at(interval)
        )

    def total_utility(self) -> float:
        return objective.total_utility(self._instance, self._schedule)

    def _reset_state(self) -> None:
        pass  # the schedule mirror is the only state

    def _apply(self, event: int, interval: int, sign: int) -> None:
        pass  # queries recompute from the schedule every time


class VectorizedEngine(ScoreEngine):
    """Numpy engine maintaining per-interval scheduled-mass vectors.

    Parameters
    ----------
    instance:
        The problem instance.
    chunk_elements:
        Upper bound on the number of matrix elements materialized by one
        broadcast in :meth:`scores_for_interval`; larger inputs are chunked
        along the user axis.  The default (4M doubles = 32 MB per
        temporary) keeps the working set cache-friendly even at full
        Meetup scale.
    """

    def __init__(self, instance: SESInstance, chunk_elements: int = 4_000_000):
        if chunk_elements <= 0:
            raise ValueError(f"chunk_elements must be positive, got {chunk_elements}")
        self._chunk_elements = int(chunk_elements)
        self._mu = instance.interest.candidate
        self._sigma = instance.activity.matrix
        self._scheduled_mass: dict[int, np.ndarray] = {}
        super().__init__(instance)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._scheduled_mass.clear()

    def _apply(self, event: int, interval: int, sign: int) -> None:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            mass = np.zeros(self._instance.n_users)
            self._scheduled_mass[interval] = mass
        if sign > 0:
            mass += self._mu[:, event]
        else:
            mass -= self._mu[:, event]
            if not self._schedule.events_at(interval):
                # exact zero for emptied intervals, killing float residue
                del self._scheduled_mass[interval]

    def _mass(self, interval: int) -> np.ndarray:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            return np.zeros(self._instance.n_users)
        return mass

    # ------------------------------------------------------------------
    def score(self, event: int, interval: int) -> float:
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        scheduled = self._mass(interval)
        competing = self._instance.competing_mass[interval]
        sigma = self._sigma[:, interval]
        column = self._mu[:, event]

        old_denominator = competing + scheduled
        new_denominator = old_denominator + column
        after = np.divide(
            scheduled + column,
            new_denominator,
            out=np.zeros_like(scheduled),
            where=new_denominator > 0.0,
        )
        before = np.divide(
            scheduled,
            old_denominator,
            out=np.zeros_like(scheduled),
            where=old_denominator > 0.0,
        )
        return float(sigma @ (after - before))

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        event_indices = np.asarray(list(events), dtype=np.intp)
        if event_indices.size == 0:
            return np.zeros(0)
        for event in event_indices:
            if self._schedule.contains_event(int(event)):
                raise DuplicateEventError(
                    f"event {int(event)} is already scheduled; "
                    f"Eq. 4 requires r not in E(S)"
                )

        n_users = self._instance.n_users
        scheduled = self._mass(interval)
        competing = self._instance.competing_mass[interval]
        sigma = self._sigma[:, interval]
        old_denominator = competing + scheduled
        before = np.divide(
            scheduled,
            old_denominator,
            out=np.zeros_like(scheduled),
            where=old_denominator > 0.0,
        )
        base = float(sigma @ before)

        # Chunked, allocation-lean evaluation.  Per chunk only two
        # (users x events) temporaries are materialized: the mu column
        # gather (reused in place as the numerator, then as the ratio)
        # and the denominator.  Where the denominator is 0 the numerator
        # is necessarily 0 as well (all masses are non-negative), so the
        # masked divide leaves the correct 0 behind without pre-zeroing.
        scores = np.zeros(event_indices.size)
        chunk_users = max(1, self._chunk_elements // max(1, event_indices.size))
        for start in range(0, n_users, chunk_users):
            stop = min(start + chunk_users, n_users)
            # advanced indexing already yields a fresh array we may mutate
            work = self._mu[start:stop, event_indices]  # mu columns
            denominator = work + old_denominator[start:stop, None]
            np.add(work, scheduled[start:stop, None], out=work)  # numerator
            np.divide(work, denominator, out=work, where=denominator > 0.0)
            scores += sigma[start:stop] @ work
        return scores - base

    def omega(self, event: int) -> float:
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; omega is defined only for "
                f"scheduled events"
            )
        denominator = self._instance.competing_mass[interval] + self._mass(interval)
        column = self._mu[:, event]
        ratio = np.divide(
            column,
            denominator,
            out=np.zeros_like(column, dtype=float),
            where=denominator > 0.0,
        )
        return float(self._sigma[:, interval] @ ratio)

    def interval_utility(self, interval: int) -> float:
        scheduled = self._mass(interval)
        denominator = self._instance.competing_mass[interval] + scheduled
        ratio = np.divide(
            scheduled,
            denominator,
            out=np.zeros_like(scheduled),
            where=denominator > 0.0,
        )
        return float(self._sigma[:, interval] @ ratio)

    def total_utility(self) -> float:
        return sum(
            self.interval_utility(interval) for interval in self._scheduled_mass
        )


_ENGINES = {"reference": ReferenceEngine, "vectorized": VectorizedEngine}


def make_engine(instance: SESInstance, kind: str = "vectorized") -> ScoreEngine:
    """Factory: build a score engine by name (``"vectorized"``/``"reference"``)."""
    try:
        engine_cls = _ENGINES[kind]
    except KeyError:
        raise ValueError(
            f"unknown engine kind {kind!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return engine_cls(instance)
